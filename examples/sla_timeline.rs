//! Operator view: SLA attainment, latency timeline and steady-state
//! detection for one load test.
//!
//! ```sh
//! cargo run --release --example sla_timeline
//! ```

use std::sync::Arc;

use treadmill::cluster::{ClientSpec, ClusterBuilder};
use treadmill::core::timeline::{steady_state_onset, timeline};
use treadmill::core::{InterArrival, OpenLoopSource};
use treadmill::sim::{SimDuration, SimTime};
use treadmill::workloads::Memcached;

fn main() {
    let mut builder = ClusterBuilder::new(Arc::new(Memcached::default()))
        .seed(21)
        .duration(SimDuration::from_millis(400));
    for _ in 0..8 {
        builder = builder.client(
            ClientSpec::default(),
            Box::new(OpenLoopSource::new(
                InterArrival::Exponential {
                    rate_rps: 800_000.0 / 8.0,
                },
                16,
            )),
        );
    }
    let result = builder.run();

    // Latency over time, in 25ms windows.
    let records: Vec<_> = result.all_records().cloned().collect();
    let windows = timeline(&records, SimDuration::from_millis(25));
    println!("window      requests   p50(us)   p99(us)");
    for w in &windows {
        if let Some(summary) = &w.summary {
            println!(
                "{:>6}ms  {:>9}   {:>7.1}   {:>7.1}",
                w.start.as_nanos() / 1_000_000,
                summary.count,
                summary.p50,
                summary.p99
            );
        }
    }
    match steady_state_onset(&windows, 0.10) {
        Some(i) => println!(
            "\nsteady state from window {i} (t = {}ms) — warm-up before that is discarded",
            windows[i].start.as_nanos() / 1_000_000
        ),
        None => println!("\nnever settled — lengthen the run"),
    }

    // SLA attainment at a few deadlines, measurement window only.
    let warmup = SimTime::from_millis(100);
    println!("\ndeadline   attainment");
    for deadline_us in [100u64, 150, 250, 500] {
        let attainment =
            result.sla_attainment(warmup, SimDuration::from_micros(deadline_us));
        println!("{deadline_us:>6}us   {:>8.3}%", attainment * 100.0);
    }
}
