//! A complete Memcached measurement campaign driven by a JSON
//! configuration file — the paper's §III-A "configurable workload" —
//! including the repeated-run procedure that defeats performance
//! hysteresis.
//!
//! ```sh
//! cargo run --release --example memcached_load_test
//! ```

use treadmill::core::{run_until_converged, ExperimentOptions, LoadTestConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The whole test is data: workload mix, sizes, rate, clients.
    let config = LoadTestConfig::from_json(
        r#"{
            "workload": {
                "workload": "memcached",
                "config": {
                    "get_fraction": 0.95,
                    "value_size": { "kind": "pareto", "minimum": 128, "shape": 1.5, "cap": 8192 }
                }
            },
            "target_rps": 600000,
            "clients": 8,
            "connections_per_client": 16,
            "duration_ms": 300,
            "warmup_ms": 80,
            "seed": 7
        }"#,
    )?;
    println!("configuration:\n{}\n", config.to_json());
    let test = config.build()?;

    // One run is not enough: restarts converge to different values
    // (§II-D). Repeat until the mean of per-run p99s converges.
    let outcome = run_until_converged(
        &test,
        ExperimentOptions {
            min_runs: 4,
            max_runs: 12,
            relative_tolerance: 0.05,
            confidence: 0.95,
        },
        0,
    );
    println!("runs performed: {} (converged: {})", outcome.num_runs(), outcome.converged);
    for (i, run) in outcome.runs.iter().enumerate() {
        println!("  run {i}: p99 = {:6.1}us", run.p99);
    }
    println!(
        "\nfinal estimate: p50 {:.1}us, p99 {:.1} ± {:.1}us across restarts",
        outcome.mean_p50, outcome.mean_p99, outcome.stddev_p99
    );
    Ok(())
}
