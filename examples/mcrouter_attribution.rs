//! End-to-end tail-latency attribution for mcrouter: run the 2^4
//! factorial campaign, fit quantile regression at p99, print the
//! significant factors, and recommend a configuration (§IV–V).
//!
//! ```sh
//! cargo run --release --example mcrouter_attribution
//! ```

use std::sync::Arc;

use treadmill::inference::{
    attribute, average_factor_impacts, collect, model_pseudo_r_squared, CollectionPlan,
};
use treadmill::sim::SimDuration;
use treadmill::workloads::Mcrouter;

fn main() {
    let plan = CollectionPlan {
        runs_per_config: 4,
        samples_per_run: 4_000,
        clients: 4,
        duration: SimDuration::from_millis(250),
        warmup: SimDuration::from_millis(60),
        seed: 5,
        ..CollectionPlan::new(Arc::new(Mcrouter::default()), 700_000.0)
    };
    println!(
        "running {} experiments ({} per configuration) ...",
        plan.total_experiments(),
        plan.runs_per_config
    );
    let dataset = collect(&plan);
    let model = attribute(&dataset, 0.99, 200, 5);

    println!("\nsignificant p99 effects (p < 0.05):");
    for coef in &model.coefficients {
        if coef.term != "(Intercept)" && coef.is_significant(0.05) {
            println!(
                "  {:<22} {:+7.1}us  (se {:.1}, p {:.3})",
                coef.term, coef.estimate, coef.std_error, coef.p_value
            );
        }
    }

    println!("\naverage impact of enabling each factor:");
    for impact in average_factor_impacts(&model) {
        println!("  {:<6} {:+7.1}us", impact.factor, impact.average_impact_us);
    }

    println!(
        "\nmodel pseudo-R2 = {:.2}",
        model_pseudo_r_squared(&dataset, &model)
    );
    println!("recommended configuration for p99: {}", model.best_config());
}
