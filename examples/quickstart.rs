//! Quickstart: run a Treadmill load test against the simulated cluster
//! and print what it measured.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use treadmill::core::LoadTest;
use treadmill::workloads::Memcached;

fn main() {
    // 100k RPS (~10% utilisation of the simulated 16-core server),
    // split across 4 Treadmill instances, open-loop Poisson arrivals.
    let test = LoadTest::new(Arc::new(Memcached::default()), 100_000.0)
        .clients(4)
        .seed(42);
    let report = test.run(0);

    println!("== per-instance summaries (what each client measured) ==");
    for (i, summary) in report.per_instance.iter().enumerate() {
        println!(
            "instance {i}: {} samples, p50 {:6.1}us  p99 {:6.1}us",
            summary.count, summary.p50, summary.p99
        );
    }

    println!("\n== aggregated (mean of per-instance metrics) ==");
    let agg = &report.aggregated;
    println!(
        "p50 {:.1}us  p90 {:.1}us  p95 {:.1}us  p99 {:.1}us  p99.9 {:.1}us",
        agg.p50, agg.p90, agg.p95, agg.p99, agg.p999
    );

    println!("\n== tcpdump ground truth (NIC-to-NIC) ==");
    println!(
        "p50 {:.1}us  p99 {:.1}us — the ~30us gap to the user-space view is \
         kernel interrupt handling, exactly as the paper describes",
        report.ground_truth.quantile_us(0.50),
        report.ground_truth.quantile_us(0.99),
    );
}
