//! Arrival-identical A/B comparison via trace replay.
//!
//! Replays the exact same recorded send schedule against two hardware
//! configurations, removing the arrival process as a noise source —
//! every latency difference is the system's doing.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use std::sync::Arc;

use rand::SeedableRng;
use treadmill::cluster::{ClientSpec, ClusterBuilder, HardwareConfig, TraceSource};
use treadmill::sim::{SimDuration, SimTime};
use treadmill::stats::quantile::quantile;
use treadmill::workloads::Memcached;

fn main() {
    // Record a Poisson schedule once (this could equally be a
    // production trace read from disk).
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let mut gaps = Vec::new();
    for _ in 0..120_000 {
        gaps.push(SimDuration::from_nanos_f64(
            treadmill::stats::distribution::sample_exponential(&mut rng, 1e9 / 600_000.0)
                .max(1.0),
        ));
    }
    println!("replaying a {}-request trace against two configurations\n", gaps.len());

    let run = |label: &str, config: usize| {
        let result = ClusterBuilder::new(Arc::new(Memcached::default()))
            .seed(7)
            .hardware(HardwareConfig::from_index(config))
            .client(
                ClientSpec {
                    send_cpu_ns: 300.0,
                    recv_cpu_ns: 300.0,
                    connections: 32,
                    ..Default::default()
                },
                Box::new(TraceSource::new(gaps.clone(), 32, false)),
            )
            .duration(SimDuration::from_millis(400))
            .run();
        let lat = result.user_latencies_us(SimTime::from_millis(50));
        println!(
            "{label:<45} p50 {:6.1}us  p99 {:6.1}us  ({} responses)",
            quantile(&lat, 0.5),
            quantile(&lat, 0.99),
            result.total_responses(),
        );
        result
    };

    let a = run("baseline (all factors low)", 0);
    let b = run("numa interleave (config 1)", 1);
    // Same send schedule on both sides: the comparison is paired.
    assert_eq!(a.total_responses(), b.total_responses());
    println!("\nidentical arrivals on both sides — the difference is pure system effect");
}
