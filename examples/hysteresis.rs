//! Performance hysteresis (§II-D): within one run the p99 estimate
//! converges; across restarts it converges to *different* values, so
//! only repeated experiments give a trustworthy answer.
//!
//! ```sh
//! cargo run --release --example hysteresis
//! ```

use std::sync::Arc;

use treadmill::core::{ConvergenceTracker, LoadTest};
use treadmill::sim::SimDuration;
use treadmill::workloads::Memcached;

fn main() {
    // The interleaved-NUMA configuration has the strongest per-restart
    // placement variation.
    let test = LoadTest::new(Arc::new(Memcached::default()), 750_000.0)
        .hardware(treadmill::cluster::HardwareConfig::from_index(1))
        .clients(4)
        .duration(SimDuration::from_millis(250))
        .warmup(SimDuration::from_millis(60))
        .seed(3);

    let mut tracker = ConvergenceTracker::new(4, 0.04, 0.95);
    println!("run   p99(us)   remote-buffer fraction (the hidden state)");
    for run in 0..10u64 {
        let report = test.run(run);
        tracker.record(report.aggregated.p99);
        println!(
            "{run:>3}   {:7.1}   {:.2}",
            report.aggregated.p99, report.run.run_remote_fraction
        );
        if tracker.converged() {
            println!("-- mean converged after {} runs --", tracker.runs());
            break;
        }
    }
    println!(
        "\nmean p99 = {:.1}us, spread across restarts = {:.1}us ({:.0}% of mean)",
        tracker.mean(),
        tracker.stddev(),
        tracker.stddev() / tracker.mean() * 100.0
    );
}
