//! Demonstrates the paper's §II pitfalls head-to-head on the same
//! server: closed-loop inter-arrivals, single-client queueing bias, and
//! static histogram truncation, against Treadmill's design.
//!
//! ```sh
//! cargo run --release --example pitfall_closed_loop
//! ```

use treadmill::baselines::{cloudsuite, mutilate, run_profile, treadmill_shape, ycsb};
use treadmill::cluster::HardwareConfig;
use treadmill::sim::SimDuration;

fn main() {
    let rps = 950_000.0; // ~85% utilisation: queueing dominates the tail
    println!("load: {rps} RPS\n");
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>12} {:>9}",
        "tester", "achieved", "measured p99", "tcpdump p99", "error", "clipped"
    );
    for profile in [ycsb(), cloudsuite(), mutilate(), treadmill_shape()] {
        let report = run_profile(
            &profile,
            std::sync::Arc::new(treadmill::workloads::Memcached::default()),
            rps,
            HardwareConfig::default(),
            SimDuration::from_millis(250),
            SimDuration::from_millis(60),
            11,
        );
        let truth = report.ground_truth.quantile_us(0.99);
        println!(
            "{:<12} {:>9.0} {:>10.1}us {:>10.1}us {:>+10.1}us {:>9}",
            report.name,
            report.achieved_rps,
            report.measured.p99,
            truth,
            report.measured.p99 - truth,
            report.clipped_samples,
        );
    }
    println!(
        "\nReading the table: YCSB/CloudSuite cannot sustain the load (single\n\
         client); Mutilate sustains less than offered and reports an\n\
         artificially thin tail (closed loop); Treadmill sustains the rate and\n\
         tracks its ground truth with a constant kernel-path offset."
    );
}
