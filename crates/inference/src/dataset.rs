//! Factorial experiment execution: collecting the latency samples that
//! feed quantile regression (§V-A).
//!
//! The paper runs ≥30 independent experiments per configuration (480
//! total for 4 factors), randomly permuting the configuration order,
//! and sub-samples 20k latency samples from each experiment's converged
//! window. We reproduce the same structure; independence between
//! experiments comes from disjoint seed streams, and experiments run in
//! parallel across OS threads.

// tml-lint: allow(DET001, subsample() uses the map for keyed displaced-index lookups only; see justification at the construction site)
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use rand::seq::SliceRandom;
use rand::Rng;
use treadmill_cluster::HardwareConfig;
use treadmill_core::LoadTest;
use treadmill_sim_core::{SeedStream, SimDuration};
use treadmill_stats::regression::Cell;
use treadmill_workloads::Workload;

/// Parameters of a factorial data collection.
#[derive(Debug, Clone)]
pub struct CollectionPlan {
    /// Workload under test.
    pub workload: Arc<dyn Workload>,
    /// Target aggregate throughput.
    pub target_rps: f64,
    /// Independent experiments per configuration (the paper uses 30).
    pub runs_per_config: usize,
    /// Latency samples retained per experiment (the paper uses 20k).
    pub samples_per_run: usize,
    /// Treadmill instances per experiment.
    pub clients: usize,
    /// Sending window per experiment.
    pub duration: SimDuration,
    /// Warm-up discard window.
    pub warmup: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for parallel execution.
    pub threads: usize,
}

impl CollectionPlan {
    /// A plan with paper-like defaults at the given load.
    pub fn new(workload: Arc<dyn Workload>, target_rps: f64) -> Self {
        CollectionPlan {
            workload,
            target_rps,
            runs_per_config: 30,
            samples_per_run: 20_000,
            clients: 8,
            duration: SimDuration::from_millis(500),
            warmup: SimDuration::from_millis(120),
            seed: 0,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }

    /// Total experiments the plan will run.
    pub fn total_experiments(&self) -> usize {
        16 * self.runs_per_config
    }
}

/// The collected factorial dataset: one regression cell per hardware
/// configuration, each holding `runs_per_config` runs of subsampled
/// latency samples.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Cells in [`HardwareConfig::from_index`] order.
    pub cells: Vec<Cell>,
    /// The plan's target throughput (for labelling).
    pub target_rps: f64,
    /// Workload name (for labelling).
    pub workload_name: String,
}

impl Dataset {
    /// Samples and configuration levels flattened for goodness-of-fit:
    /// `(levels, latency)` pairs. Levels are borrowed from the cells —
    /// a full factorial dataset holds millions of samples, and cloning
    /// a 4-element `Vec` per sample used to dominate flattening time.
    pub fn flattened(&self) -> Vec<(&[f64], f64)> {
        let mut out = Vec::with_capacity(self.total_samples());
        for cell in &self.cells {
            for run in cell.runs() {
                for &v in run {
                    out.push((cell.levels.as_slice(), v));
                }
            }
        }
        out
    }

    /// Total samples across cells and runs.
    pub fn total_samples(&self) -> usize {
        self.cells.iter().map(Cell::total_samples).sum()
    }

    /// Indices (`0..16`) of hardware configurations with no collected
    /// cell — the holes a degraded campaign leaves behind. Empty for a
    /// complete full-factorial dataset.
    pub fn missing_cells(&self) -> Vec<usize> {
        (0..16)
            .filter(|&i| {
                let levels = HardwareConfig::from_index(i).levels();
                !self.cells.iter().any(|c| c.levels == levels)
            })
            .collect()
    }
}

/// Runs the full factorial collection.
///
/// Experiment order is randomly permuted (as the paper prescribes to
/// preserve independence) and executed across `plan.threads` workers;
/// results are deterministic for a given `plan.seed` regardless of
/// thread interleaving because every experiment derives its own seed.
///
/// # Panics
///
/// Panics if the plan is degenerate (zero runs or samples).
pub fn collect(plan: &CollectionPlan) -> Dataset {
    assert!(plan.runs_per_config > 0, "need at least one run per config");
    assert!(plan.samples_per_run > 0, "need at least one sample per run");

    // Job list: (config index, repetition), shuffled.
    let mut jobs: Vec<(usize, usize)> = (0..16)
        .flat_map(|c| (0..plan.runs_per_config).map(move |r| (c, r)))
        .collect();
    let mut order_rng = SeedStream::new(plan.seed).stream("experiment-order", 0);
    jobs.shuffle(&mut order_rng);

    // One pre-sized slot per job: each experiment writes its own
    // `OnceLock`, so worker threads never serialize on a shared lock.
    let slots: Vec<OnceLock<Vec<f64>>> =
        (0..16 * plan.runs_per_config).map(|_| OnceLock::new()).collect();
    let next_job = AtomicUsize::new(0);
    let jobs = &jobs;
    let slots_ref = &slots;

    std::thread::scope(|scope| {
        for _ in 0..plan.threads.max(1) {
            scope.spawn(|| loop {
                let idx = next_job.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs.len() {
                    break;
                }
                let (config_idx, rep) = jobs[idx];
                let samples = run_one_experiment(plan, config_idx, rep);
                slots_ref[config_idx * plan.runs_per_config + rep]
                    .set(samples)
                    .expect("each job owns exactly one slot");
            });
        }
    });

    let mut filled = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job slot filled"));
    let cells = (0..16)
        .map(|config_idx| {
            let runs: Vec<Vec<f64>> = filled.by_ref().take(plan.runs_per_config).collect();
            let levels = HardwareConfig::from_index(config_idx).levels();
            Cell::new(levels, runs)
        })
        .collect();
    Dataset {
        cells,
        target_rps: plan.target_rps,
        workload_name: plan.workload.name().to_string(),
    }
}

fn run_one_experiment(plan: &CollectionPlan, config_idx: usize, rep: usize) -> Vec<f64> {
    let hardware = HardwareConfig::from_index(config_idx);
    let test = LoadTest::new(Arc::clone(&plan.workload), plan.target_rps)
        .clients(plan.clients)
        .hardware(hardware)
        .duration(plan.duration)
        .warmup(plan.warmup)
        .seed(SeedStream::new(plan.seed).derive("experiment", config_idx as u64));
    let report = test.run(rep as u64);
    let pooled = report.pooled_latencies();
    subsample(
        &pooled,
        plan.samples_per_run,
        SeedStream::new(plan.seed)
            .child("subsample", config_idx as u64)
            .stream("rep", rep as u64),
    )
}

/// Randomly sub-samples `n` values without replacement (the paper's 20k
/// per experiment); returns everything if fewer are available.
///
/// Sparse partial Fisher–Yates: only the first `n` steps of the shuffle
/// are performed, and displaced indices live in a hash map instead of a
/// materialized `0..len` index vector — O(n) time and memory rather
/// than O(len) for a full shuffle of a multi-million-sample run. The
/// subset is still uniform, but the concrete draw for a given seed
/// differs from the old full-shuffle implementation (an intentional
/// one-time numeric change; determinism per seed is pinned by test).
fn subsample<R: Rng>(values: &[f64], n: usize, mut rng: R) -> Vec<f64> {
    if values.len() <= n {
        return values.to_vec();
    }
    // tml-lint: allow(DET001, every access is a keyed get/insert driven by seeded RNG draws; the map is never iterated so its order cannot reach the output — the golden-seed tests pin the exact draw, and a BTreeMap here would put an O(log n) walk in the O(k) subsampler hot path)
    let mut displaced: HashMap<usize, usize> = HashMap::with_capacity(2 * n);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let j = rng.gen_range(i..values.len());
        let pick = displaced.get(&j).copied().unwrap_or(j);
        let here = displaced.get(&i).copied().unwrap_or(i);
        out.push(values[pick]);
        displaced.insert(j, here);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treadmill_workloads::Memcached;

    fn tiny_plan(seed: u64) -> CollectionPlan {
        CollectionPlan {
            runs_per_config: 2,
            samples_per_run: 500,
            clients: 2,
            duration: SimDuration::from_millis(50),
            warmup: SimDuration::from_millis(15),
            seed,
            threads: 8,
            ..CollectionPlan::new(Arc::new(Memcached::default()), 300_000.0)
        }
    }

    #[test]
    fn collects_all_cells_and_runs() {
        let dataset = collect(&tiny_plan(1));
        assert_eq!(dataset.cells.len(), 16);
        for (i, cell) in dataset.cells.iter().enumerate() {
            assert_eq!(cell.num_runs(), 2, "cell {i}");
            assert_eq!(cell.levels, HardwareConfig::from_index(i).levels());
            assert!(cell.total_samples() > 0);
        }
        assert!(dataset.total_samples() <= 16 * 2 * 500);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut plan_a = tiny_plan(2);
        plan_a.threads = 1;
        let mut plan_b = tiny_plan(2);
        plan_b.threads = 8;
        let a = collect(&plan_a);
        let b = collect(&plan_b);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.runs(), cb.runs());
        }
    }

    #[test]
    fn subsample_caps_size() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let rng = SmallRng::seed_from_u64(1);
        let sampled = subsample(&values, 10, rng);
        assert_eq!(sampled.len(), 10);
        for v in &sampled {
            assert!(values.contains(v));
        }
        let rng = SmallRng::seed_from_u64(1);
        assert_eq!(subsample(&values, 200, rng).len(), 100);
    }

    #[test]
    fn subsample_is_deterministic_per_seed() {
        let values: Vec<f64> = (0..50_000).map(f64::from).collect();
        let a = subsample(&values, 1_000, SmallRng::seed_from_u64(7));
        let b = subsample(&values, 1_000, SmallRng::seed_from_u64(7));
        assert_eq!(a, b, "same seed must reproduce the same subset");
        let c = subsample(&values, 1_000, SmallRng::seed_from_u64(8));
        assert_ne!(a, c, "different seeds must draw different subsets");
    }

    #[test]
    fn subsample_draws_without_replacement() {
        // All inputs distinct, so any repeated output value would mean
        // an index was picked twice — the sparse swap map must prevent
        // that exactly like a materialized Fisher–Yates would.
        let values: Vec<f64> = (0..20_000).map(f64::from).collect();
        let sampled = subsample(&values, 5_000, SmallRng::seed_from_u64(3));
        assert_eq!(sampled.len(), 5_000);
        let mut sorted = sampled.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert_eq!(sorted.len(), 5_000, "an index was sampled twice");
        for &v in &sorted {
            assert!((0.0..20_000.0).contains(&v) && v.fract() == 0.0);
        }
    }

    #[test]
    fn missing_cells_reports_holes() {
        let cells = vec![Cell::new(
            HardwareConfig::from_index(3).levels(),
            vec![vec![1.0, 2.0]],
        )];
        let dataset = Dataset {
            cells,
            target_rps: 1.0,
            workload_name: "partial".into(),
        };
        let missing = dataset.missing_cells();
        assert_eq!(missing.len(), 15);
        assert!(!missing.contains(&3));
    }

    #[test]
    fn flattened_pairs_levels_with_samples() {
        let dataset = collect(&tiny_plan(3));
        let flat = dataset.flattened();
        assert_eq!(flat.len(), dataset.total_samples());
        assert!(flat.iter().all(|(levels, v)| levels.len() == 4 && *v > 0.0));
    }
}
