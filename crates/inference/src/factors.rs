//! The hardware factors under study (Table III).

use treadmill_cluster::HardwareConfig;

/// One factor of the 2-level factorial design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Factor {
    /// Short name used in regression term labels.
    pub name: &'static str,
    /// What the factor controls.
    pub description: &'static str,
    /// The low-level setting (coded 0).
    pub low_label: &'static str,
    /// The high-level setting (coded 1).
    pub high_label: &'static str,
}

/// Table III: the four factors and their levels.
pub fn factor_table() -> [Factor; 4] {
    [
        Factor {
            name: "numa",
            description: "NUMA control policy for connection-buffer allocation",
            low_label: "same-node",
            high_label: "interleave",
        },
        Factor {
            name: "turbo",
            description: "Turbo Boost frequency up-scaling",
            low_label: "off",
            high_label: "on",
        },
        Factor {
            name: "dvfs",
            description: "DVFS governor",
            low_label: "ondemand",
            high_label: "performance",
        },
        Factor {
            name: "nic",
            description: "NIC RSS interrupt-queue affinity",
            low_label: "same-node",
            high_label: "all-nodes",
        },
    ]
}

/// Factor names in design order, matching
/// [`HardwareConfig::levels`].
pub fn factor_names() -> [&'static str; 4] {
    HardwareConfig::factor_names()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_design_order() {
        let table = factor_table();
        let names = factor_names();
        for (factor, name) in table.iter().zip(names.iter()) {
            assert_eq!(factor.name, *name);
        }
    }

    #[test]
    fn levels_match_the_paper() {
        let table = factor_table();
        assert_eq!(table[0].low_label, "same-node");
        assert_eq!(table[0].high_label, "interleave");
        assert_eq!(table[2].low_label, "ondemand");
        assert_eq!(table[2].high_label, "performance");
    }
}
