//! Reduced-order attribution models and model comparison.
//!
//! The paper's Eq. 1 includes *all* interaction orders, and its
//! findings repeatedly stress that interactions carry real effects
//! ("the estimated coefficients of interactions are sometimes larger
//! than individual factors", Finding 5). This module quantifies that
//! claim: it fits truncated models — main effects only, or up to 2-way
//! interactions — with the general IRLS quantile-regression solver over
//! the per-experiment quantile observations, and compares their
//! pseudo-R² against the saturated model's. If interactions matter, the
//! truncated models must explain visibly less.

use treadmill_stats::linalg::Matrix;
use treadmill_stats::regression::fit::pseudo_r_squared;
use treadmill_stats::regression::{
    per_run_quantiles, quantile_regression_irls, FactorialDesign, IrlsOptions,
};

use crate::dataset::Dataset;
use crate::factors::factor_names;

/// A fitted reduced-order model.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    /// Interaction order included (1 = main effects only; 4 = saturated).
    pub max_order: usize,
    /// The quantile fitted.
    pub tau: f64,
    /// Term labels, matching `coefficients`.
    pub terms: Vec<String>,
    /// Fitted coefficients (µs).
    pub coefficients: Vec<f64>,
    /// In-sample pseudo-R² over the per-experiment quantile
    /// observations (Eq. 2).
    pub pseudo_r_squared: f64,
}

impl ReducedModel {
    /// Predicts the τ-quantile for a configuration's levels.
    pub fn predict(&self, levels: &[f64]) -> f64 {
        let design = FactorialDesign::with_interactions(&factor_names(), self.max_order);
        design.predict(&self.coefficients, levels)
    }
}

/// Fits a model truncated at `max_order` interactions.
///
/// # Panics
///
/// Panics if the dataset is not the full 16-cell factorial, `tau` is
/// outside `(0, 1)`, or `max_order` is not in `1..=4`.
pub fn fit_reduced(dataset: &Dataset, tau: f64, max_order: usize) -> ReducedModel {
    assert!((1..=4).contains(&max_order), "interaction order must be 1..=4");
    assert_eq!(dataset.cells.len(), 16, "dataset must cover all 16 cells");
    let design = FactorialDesign::with_interactions(&factor_names(), max_order);

    // Observations: one per experiment — its measured τ-quantile.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut y: Vec<f64> = Vec::new();
    for cell in &dataset.cells {
        for run_quantile in per_run_quantiles(cell, tau) {
            rows.push(cell.levels.clone());
            y.push(run_quantile);
        }
    }
    let mut matrix = Matrix::zeros(rows.len(), design.num_terms());
    for (r, levels) in rows.iter().enumerate() {
        for (c, v) in design.row(levels).into_iter().enumerate() {
            matrix[(r, c)] = v;
        }
    }
    let coefficients = quantile_regression_irls(
        &matrix,
        &y,
        tau,
        &IrlsOptions {
            // The paper's 0.01-σ perturbation trick, for the all-dummy
            // regressors.
            jitter: 0.01,
            ..Default::default()
        },
    )
    .expect("factorial designs are full rank");
    let predictions = matrix.mul_vec(&coefficients);
    let r2 = pseudo_r_squared(tau, &y, &predictions);
    ReducedModel {
        max_order,
        tau,
        terms: design.term_labels(),
        coefficients,
        pseudo_r_squared: r2,
    }
}

/// One row of the model-comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelComparisonRow {
    /// Interaction order.
    pub max_order: usize,
    /// Number of model terms.
    pub terms: usize,
    /// Pseudo-R² at the evaluated quantile.
    pub pseudo_r_squared: f64,
}

/// Fits orders 1..=4 and reports each model's explanatory power — the
/// quantitative version of Finding 5.
pub fn model_comparison(dataset: &Dataset, tau: f64) -> Vec<ModelComparisonRow> {
    (1..=4)
        .map(|order| {
            let model = fit_reduced(dataset, tau, order);
            ModelComparisonRow {
                max_order: order,
                terms: model.terms.len(),
                pseudo_r_squared: model.pseudo_r_squared,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_cluster::HardwareConfig;
    use treadmill_stats::regression::Cell;

    fn dataset_with(f: impl Fn(&[f64]) -> f64, noise: f64) -> Dataset {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(31);
        let cells = (0..16)
            .map(|i| {
                let lv = HardwareConfig::from_index(i).levels();
                let center = f(&lv);
                let runs: Vec<Vec<f64>> = (0..6)
                    .map(|_| {
                        (0..100)
                            .map(|_| center + rng.gen_range(-noise..noise))
                            .collect()
                    })
                    .collect();
                Cell::new(lv, runs)
            })
            .collect();
        Dataset {
            cells,
            target_rps: 1.0,
            workload_name: "synthetic".into(),
        }
    }

    #[test]
    fn additive_world_needs_no_interactions() {
        let dataset = dataset_with(|lv| 100.0 + 20.0 * lv[0] - 5.0 * lv[1], 1.0);
        let comparison = model_comparison(&dataset, 0.5);
        assert_eq!(comparison.len(), 4);
        assert_eq!(comparison[0].terms, 5);
        assert_eq!(comparison[3].terms, 16);
        // Main effects already explain nearly everything.
        assert!(comparison[0].pseudo_r_squared > 0.9);
        let gain = comparison[3].pseudo_r_squared - comparison[0].pseudo_r_squared;
        assert!(gain < 0.05, "interactions should add nothing: gain {gain}");
    }

    #[test]
    fn interacting_world_demands_interactions() {
        // Pure 2-way interaction: the main-effects model must miss it.
        let dataset = dataset_with(|lv| 100.0 + 40.0 * lv[0] * lv[2], 1.0);
        let comparison = model_comparison(&dataset, 0.5);
        let main_only = comparison[0].pseudo_r_squared;
        let with_pairs = comparison[1].pseudo_r_squared;
        assert!(
            with_pairs > main_only + 0.1,
            "2-way terms must add power: {main_only} → {with_pairs}"
        );
        assert!(with_pairs > 0.9);
    }

    #[test]
    fn reduced_predictions_match_structure() {
        let dataset = dataset_with(|lv| 50.0 + 10.0 * lv[3], 0.5);
        let model = fit_reduced(&dataset, 0.5, 1);
        assert_eq!(model.terms.len(), 5);
        let low = model.predict(&[0.0, 0.0, 0.0, 0.0]);
        let high = model.predict(&[0.0, 0.0, 0.0, 1.0]);
        assert!((high - low - 10.0).abs() < 1.5, "effect {}", high - low);
    }

    #[test]
    #[should_panic(expected = "order must be")]
    fn order_bounds_checked() {
        let dataset = dataset_with(|_| 1.0, 0.1);
        fit_reduced(&dataset, 0.5, 5);
    }
}
