//! Tuning validation (Figure 12, §V-E): pick the configuration the
//! attribution recommends, then compare "before" (randomly chosen
//! configurations, as an operator without the analysis would face) vs
//! "after" (the recommended configuration) across many fresh
//! experiments. The paper reports p99 −43% and its standard deviation
//! −93%.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rand::Rng;
use treadmill_cluster::HardwareConfig;
use treadmill_core::LoadTest;
use treadmill_sim_core::{SeedStream, SimDuration};
use treadmill_stats::StreamingStats;
use treadmill_workloads::Workload;

/// Parameters of the before/after validation.
#[derive(Debug, Clone)]
pub struct TuningPlan {
    /// Workload under test.
    pub workload: Arc<dyn Workload>,
    /// Target throughput.
    pub target_rps: f64,
    /// Experiments in each arm (the paper uses 100).
    pub experiments: usize,
    /// Treadmill instances per experiment.
    pub clients: usize,
    /// Sending window per experiment.
    pub duration: SimDuration,
    /// Warm-up window.
    pub warmup: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl TuningPlan {
    /// Paper-like defaults at the given load.
    pub fn new(workload: Arc<dyn Workload>, target_rps: f64) -> Self {
        TuningPlan {
            workload,
            target_rps,
            experiments: 100,
            clients: 8,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            seed: 0,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// One arm's distribution of per-experiment percentile estimates.
#[derive(Debug, Clone)]
pub struct ArmSummary {
    /// Per-experiment p50 estimates (µs).
    pub p50s: Vec<f64>,
    /// Per-experiment p99 estimates (µs).
    pub p99s: Vec<f64>,
}

impl ArmSummary {
    /// Mean and standard deviation of the p99 estimates.
    pub fn p99_stats(&self) -> (f64, f64) {
        let stats: StreamingStats = self.p99s.iter().copied().collect();
        (stats.mean(), stats.sample_stddev())
    }

    /// Mean and standard deviation of the p50 estimates.
    pub fn p50_stats(&self) -> (f64, f64) {
        let stats: StreamingStats = self.p50s.iter().copied().collect();
        (stats.mean(), stats.sample_stddev())
    }
}

/// The before/after comparison.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Random-configuration arm.
    pub before: ArmSummary,
    /// Recommended-configuration arm.
    pub after: ArmSummary,
    /// The configuration that was recommended.
    pub recommended: HardwareConfig,
}

impl TuningOutcome {
    /// Fractional reduction in mean p99 (the paper's 43%).
    pub fn p99_reduction(&self) -> f64 {
        let (before, _) = self.before.p99_stats();
        let (after, _) = self.after.p99_stats();
        1.0 - after / before
    }

    /// Fractional reduction in the p99 standard deviation (the paper's
    /// 93%).
    pub fn p99_stddev_reduction(&self) -> f64 {
        let (_, before) = self.before.p99_stats();
        let (_, after) = self.after.p99_stats();
        1.0 - after / before
    }
}

/// Runs both arms: `experiments` runs with random configurations, and
/// `experiments` runs pinned to `recommended`.
pub fn validate(plan: &TuningPlan, recommended: HardwareConfig) -> TuningOutcome {
    let before = run_arm(plan, None, 0x8EF0);
    let after = run_arm(plan, Some(recommended), 0xAF7E);
    TuningOutcome {
        before,
        after,
        recommended,
    }
}

fn run_arm(plan: &TuningPlan, pinned: Option<HardwareConfig>, salt: u64) -> ArmSummary {
    let seeds = SeedStream::new(plan.seed ^ salt);
    // tml-lint: allow(DET007, slots are pre-sized and index-assigned by experiment id; completion order never reaches the result)
    let results: Mutex<Vec<(f64, f64)>> = Mutex::new(vec![(0.0, 0.0); plan.experiments]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..plan.threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= plan.experiments {
                    break;
                }
                let hardware = pinned.unwrap_or_else(|| {
                    let mut rng = seeds.stream("config-choice", i as u64);
                    HardwareConfig::from_index(rng.gen_range(0..16))
                });
                let test = LoadTest::new(Arc::clone(&plan.workload), plan.target_rps)
                    .clients(plan.clients)
                    .hardware(hardware)
                    .duration(plan.duration)
                    .warmup(plan.warmup)
                    .seed(seeds.derive("tuning-run", i as u64));
                let report = test.run(i as u64);
                results.lock().expect("poisoned")[i] =
                    (report.aggregated.p50, report.aggregated.p99);
            });
        }
    });
    let pairs = results.into_inner().expect("poisoned");
    ArmSummary {
        p50s: pairs.iter().map(|&(p50, _)| p50).collect(),
        p99s: pairs.iter().map(|&(_, p99)| p99).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_workloads::Memcached;

    fn tiny_plan() -> TuningPlan {
        TuningPlan {
            experiments: 8,
            clients: 2,
            duration: SimDuration::from_millis(60),
            warmup: SimDuration::from_millis(20),
            seed: 5,
            threads: 8,
            ..TuningPlan::new(Arc::new(Memcached::default()), 500_000.0)
        }
    }

    #[test]
    fn tuned_arm_beats_random_arm() {
        let plan = tiny_plan();
        // A configuration our simulator physics should favour: local
        // NUMA buffers, turbo on, performance governor.
        let recommended = HardwareConfig::from_index(0b0110);
        let outcome = validate(&plan, recommended);
        assert_eq!(outcome.before.p99s.len(), 8);
        assert_eq!(outcome.after.p99s.len(), 8);
        let reduction = outcome.p99_reduction();
        assert!(
            reduction > 0.0,
            "tuning should reduce mean p99, got {reduction:+.2}"
        );
        let spread_reduction = outcome.p99_stddev_reduction();
        assert!(
            spread_reduction > 0.0,
            "pinning the config should shrink variance, got {spread_reduction:+.2}"
        );
    }

    #[test]
    fn arm_summaries_compute_stats() {
        let arm = ArmSummary {
            p50s: vec![10.0, 12.0],
            p99s: vec![100.0, 120.0],
        };
        let (mean, sd) = arm.p99_stats();
        assert!((mean - 110.0).abs() < 1e-9);
        assert!(sd > 0.0);
        let (mean50, _) = arm.p50_stats();
        assert!((mean50 - 11.0).abs() < 1e-9);
    }
}
