//! Quantile-regression attribution (Table IV, Figures 7 & 9).

use rand::SeedableRng;
use treadmill_cluster::HardwareConfig;
use treadmill_stats::regression::{
    bootstrap_saturated, BootstrapOptions, CoefficientEstimate, FactorialDesign,
};

use crate::dataset::Dataset;
use crate::factors::factor_names;

/// The percentiles the paper reports in Table IV.
pub const TABLE_IV_PERCENTILES: [f64; 3] = [0.50, 0.95, 0.99];

/// A fitted attribution model at one quantile.
#[derive(Debug, Clone)]
pub struct AttributionResult {
    /// The quantile fitted (e.g. 0.99).
    pub tau: f64,
    /// Per-term coefficient estimates with bootstrap SEs and p-values —
    /// the rows of Table IV.
    pub coefficients: Vec<CoefficientEstimate>,
    design: FactorialDesign,
}

impl AttributionResult {
    /// The saturated design used.
    pub fn design(&self) -> &FactorialDesign {
        &self.design
    }

    /// Predicts the τ-quantile latency (µs) for a configuration — the
    /// "add up all the qualified estimated coefficients and the
    /// intercept" recipe of §V-B.
    pub fn predict(&self, config: &HardwareConfig) -> f64 {
        let coef: Vec<f64> = self.coefficients.iter().map(|c| c.estimate).collect();
        self.design.predict(&coef, &config.levels())
    }

    /// The coefficient row for a term label (e.g. `"numa:dvfs"`).
    pub fn term(&self, label: &str) -> Option<&CoefficientEstimate> {
        self.coefficients.iter().find(|c| c.term == label)
    }

    /// Predicted latency for all 16 configurations, in index order
    /// (one group of bars in Figures 7/9).
    pub fn predictions_all_configs(&self) -> Vec<f64> {
        HardwareConfig::all()
            .iter()
            .map(|cfg| self.predict(cfg))
            .collect()
    }

    /// The configuration with the lowest predicted latency (the §V-E
    /// tuning recommendation).
    pub fn best_config(&self) -> HardwareConfig {
        let mut best = HardwareConfig::from_index(0);
        let mut best_value = f64::INFINITY;
        for cfg in HardwareConfig::all() {
            let value = self.predict(&cfg);
            if value < best_value {
                best_value = value;
                best = cfg;
            }
        }
        best
    }
}

/// Fits the saturated quantile-regression model with bootstrap
/// inference at one quantile. Observations are the per-experiment
/// measured τ-quantiles (the paper's Eq. 3).
///
/// # Panics
///
/// Panics if the dataset does not have exactly 16 cells.
pub fn attribute(
    dataset: &Dataset,
    tau: f64,
    bootstrap_replicates: usize,
    seed: u64,
) -> AttributionResult {
    assert_eq!(dataset.cells.len(), 16, "dataset must cover all 16 cells");
    let design = FactorialDesign::full(&factor_names());
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let coefficients = bootstrap_saturated(
        &design,
        &dataset.cells,
        tau,
        BootstrapOptions {
            replicates: bootstrap_replicates,
        },
        &mut rng,
    )
    .expect("saturated factorial design cannot be singular");
    AttributionResult {
        tau,
        coefficients,
        design,
    }
}

/// Fits the model at each of the paper's Table IV percentiles.
pub fn attribution_table(
    dataset: &Dataset,
    bootstrap_replicates: usize,
    seed: u64,
) -> Vec<AttributionResult> {
    TABLE_IV_PERCENTILES
        .iter()
        .map(|&tau| attribute(dataset, tau, bootstrap_replicates, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_stats::regression::Cell;

    /// A synthetic dataset with known structure: latency is
    /// `100 + 50*numa + 20*numa*dvfs - 10*turbo` (+ noise), constant
    /// across quantiles.
    fn synthetic_dataset(run_noise: f64) -> Dataset {
        use rand::Rng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let cells = (0..16)
            .map(|i| {
                let cfg = HardwareConfig::from_index(i);
                let lv = cfg.levels();
                let center = 100.0 + 50.0 * lv[0] + 20.0 * lv[0] * lv[2] - 10.0 * lv[1];
                let runs: Vec<Vec<f64>> = (0..8)
                    .map(|_| {
                        let shift = rng.gen_range(-run_noise..=run_noise);
                        (0..200)
                            .map(|_| center + shift + rng.gen_range(-1.0..1.0))
                            .collect()
                    })
                    .collect();
                Cell::new(lv, runs)
            })
            .collect();
        Dataset {
            cells,
            target_rps: 1.0,
            workload_name: "synthetic".into(),
        }
    }

    #[test]
    fn recovers_known_effects() {
        let dataset = synthetic_dataset(0.5);
        let result = attribute(&dataset, 0.5, 100, 1);
        let numa = result.term("numa").unwrap();
        assert!((numa.estimate - 50.0).abs() < 3.0, "numa {}", numa.estimate);
        assert!(numa.is_significant(0.05));
        let interaction = result.term("numa:dvfs").unwrap();
        assert!(
            (interaction.estimate - 20.0).abs() < 4.0,
            "numa:dvfs {}",
            interaction.estimate
        );
        let turbo = result.term("turbo").unwrap();
        assert!((turbo.estimate + 10.0).abs() < 3.0);
        // Null factor: nic has no effect.
        let nic = result.term("nic").unwrap();
        assert!(nic.estimate.abs() < 3.0, "nic {}", nic.estimate);
    }

    #[test]
    fn predictions_follow_the_recipe() {
        let dataset = synthetic_dataset(0.5);
        let result = attribute(&dataset, 0.5, 20, 2);
        // numa high + dvfs high: 100 + 50 + 20 = 170.
        let cfg = HardwareConfig::from_index(0b0101);
        assert!((result.predict(&cfg) - 170.0).abs() < 4.0);
        assert_eq!(result.predictions_all_configs().len(), 16);
    }

    #[test]
    fn best_config_minimises_prediction() {
        let dataset = synthetic_dataset(0.5);
        let result = attribute(&dataset, 0.5, 20, 3);
        let best = result.best_config();
        // Optimal: numa low (avoid +50), turbo high (-10); dvfs/nic
        // don't matter (but dvfs high only hurts with numa high).
        assert!(!best.numa.is_high());
        assert!(best.turbo.is_high());
    }

    #[test]
    fn table_covers_paper_percentiles() {
        let dataset = synthetic_dataset(0.5);
        let table = attribution_table(&dataset, 10, 4);
        assert_eq!(table.len(), 3);
        assert_eq!(table[0].tau, 0.50);
        assert_eq!(table[2].tau, 0.99);
        for result in &table {
            assert_eq!(result.coefficients.len(), 16);
            assert_eq!(result.coefficients[0].term, "(Intercept)");
        }
    }

    #[test]
    fn noisier_runs_give_larger_standard_errors() {
        let calm = attribute(&synthetic_dataset(0.2), 0.5, 100, 5);
        let noisy = attribute(&synthetic_dataset(20.0), 0.5, 100, 5);
        let se = |r: &AttributionResult| r.term("numa").unwrap().std_error;
        assert!(
            se(&noisy) > se(&calm) * 3.0,
            "noisy {} vs calm {}",
            se(&noisy),
            se(&calm)
        );
    }
}
