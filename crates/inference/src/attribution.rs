//! Quantile-regression attribution (Table IV, Figures 7 & 9).

use rand::{Rng, SeedableRng};
use treadmill_cluster::HardwareConfig;
use treadmill_stats::distribution::two_sided_p_value;
use treadmill_stats::linalg::{Matrix, SolveError};
use treadmill_stats::regression::{
    bootstrap_saturated, per_run_quantiles, quantile_regression_irls, BootstrapOptions,
    Cell, CoefficientEstimate, FactorialDesign, IrlsOptions,
};
use treadmill_stats::StreamingStats;

use crate::dataset::Dataset;
use crate::factors::factor_names;

/// The percentiles the paper reports in Table IV.
pub const TABLE_IV_PERCENTILES: [f64; 3] = [0.50, 0.95, 0.99];

/// A fitted attribution model at one quantile.
#[derive(Debug, Clone)]
pub struct AttributionResult {
    /// The quantile fitted (e.g. 0.99).
    pub tau: f64,
    /// Per-term coefficient estimates with bootstrap SEs and p-values —
    /// the rows of Table IV.
    pub coefficients: Vec<CoefficientEstimate>,
    design: FactorialDesign,
}

impl AttributionResult {
    /// The saturated design used.
    pub fn design(&self) -> &FactorialDesign {
        &self.design
    }

    /// Predicts the τ-quantile latency (µs) for a configuration — the
    /// "add up all the qualified estimated coefficients and the
    /// intercept" recipe of §V-B.
    pub fn predict(&self, config: &HardwareConfig) -> f64 {
        let coef: Vec<f64> = self.coefficients.iter().map(|c| c.estimate).collect();
        self.design.predict(&coef, &config.levels())
    }

    /// The coefficient row for a term label (e.g. `"numa:dvfs"`).
    pub fn term(&self, label: &str) -> Option<&CoefficientEstimate> {
        self.coefficients.iter().find(|c| c.term == label)
    }

    /// Predicted latency for all 16 configurations, in index order
    /// (one group of bars in Figures 7/9).
    pub fn predictions_all_configs(&self) -> Vec<f64> {
        HardwareConfig::all()
            .iter()
            .map(|cfg| self.predict(cfg))
            .collect()
    }

    /// The configuration with the lowest predicted latency (the §V-E
    /// tuning recommendation).
    pub fn best_config(&self) -> HardwareConfig {
        let mut best = HardwareConfig::from_index(0);
        let mut best_value = f64::INFINITY;
        for cfg in HardwareConfig::all() {
            let value = self.predict(&cfg);
            if value < best_value {
                best_value = value;
                best = cfg;
            }
        }
        best
    }
}

/// Fits the saturated quantile-regression model with bootstrap
/// inference at one quantile. Observations are the per-experiment
/// measured τ-quantiles (the paper's Eq. 3).
///
/// # Panics
///
/// Panics if the dataset does not have exactly 16 cells.
pub fn attribute(
    dataset: &Dataset,
    tau: f64,
    bootstrap_replicates: usize,
    seed: u64,
) -> AttributionResult {
    assert_eq!(dataset.cells.len(), 16, "dataset must cover all 16 cells");
    let design = FactorialDesign::full(&factor_names());
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let coefficients = bootstrap_saturated(
        &design,
        &dataset.cells,
        tau,
        BootstrapOptions {
            replicates: bootstrap_replicates,
        },
        &mut rng,
    )
    .expect("saturated factorial design cannot be singular");
    AttributionResult {
        tau,
        coefficients,
        design,
    }
}

/// The result of [`attribute_graceful`]: the fitted model plus a record
/// of any degradation applied to obtain it.
#[derive(Debug, Clone)]
pub struct AttributionOutcome {
    /// The fitted attribution model (saturated when possible, an IRLS
    /// reduced-order fit otherwise).
    pub result: AttributionResult,
    /// True if the exact saturated solver could not be used.
    pub degraded: bool,
    /// Human-readable notes about what degraded and why. Empty when
    /// `degraded` is false.
    pub warnings: Vec<String>,
}

/// Fits the attribution model, degrading gracefully when the dataset is
/// incomplete instead of panicking.
///
/// A complete 16-cell factorial routes to [`attribute`] (the exact
/// saturated solver); a dataset with missing cells — e.g. because a
/// fault-injected campaign abandoned some configurations — falls back
/// to the IRLS quantile-regression solver over the largest interaction
/// order the surviving cells can identify, with bootstrap standard
/// errors from resampling per-run quantiles within each cell. The
/// outcome records the fallback in `warnings`.
///
/// # Panics
///
/// Panics only if the dataset is empty or too degenerate to fit even a
/// main-effects model.
pub fn attribute_graceful(
    dataset: &Dataset,
    tau: f64,
    bootstrap_replicates: usize,
    seed: u64,
) -> AttributionOutcome {
    let missing = dataset.missing_cells();
    if missing.is_empty() && dataset.cells.len() == 16 {
        return AttributionOutcome {
            result: attribute(dataset, tau, bootstrap_replicates, seed),
            degraded: false,
            warnings: Vec::new(),
        };
    }
    assert!(!dataset.cells.is_empty(), "dataset has no cells at all");
    let names = factor_names();
    let available = dataset.cells.len();
    let mut warnings = vec![format!(
        "dataset is missing {} of 16 cells (indices {:?}); falling back from the \
         exact saturated solver to IRLS quantile regression",
        missing.len(),
        missing
    )];

    // Largest interaction order the surviving cells can identify: the
    // design-matrix rank is bounded by the number of distinct cells.
    let mut order = 1;
    for candidate in (1..=4).rev() {
        if FactorialDesign::with_interactions(&names, candidate).num_terms() <= available {
            order = candidate;
            break;
        }
    }
    loop {
        let design = FactorialDesign::with_interactions(&names, order);
        match fit_irls_with_bootstrap(
            &design,
            &dataset.cells,
            tau,
            bootstrap_replicates,
            seed,
        ) {
            Ok(coefficients) => {
                if order < 4 {
                    warnings.push(format!(
                        "interaction terms truncated to order {order} ({} terms); \
                         {available} cells cannot identify all 16 saturated terms",
                        design.num_terms()
                    ));
                }
                return AttributionOutcome {
                    result: AttributionResult {
                        tau,
                        coefficients,
                        design,
                    },
                    degraded: true,
                    warnings,
                };
            }
            Err(err) if order > 1 => {
                warnings.push(format!(
                    "order-{order} IRLS fit was singular ({err:?}); retrying at \
                     order {}",
                    order - 1
                ));
                order -= 1;
            }
            Err(err) => {
                panic!(
                    "cannot fit even a main-effects model on {available} cells: {err:?}"
                );
            }
        }
    }
}

/// IRLS point fit over per-run quantile rows plus a cluster bootstrap
/// (resampling runs within each cell, mirroring [`bootstrap_saturated`])
/// for standard errors.
fn fit_irls_with_bootstrap(
    design: &FactorialDesign,
    cells: &[Cell],
    tau: f64,
    replicates: usize,
    seed: u64,
) -> Result<Vec<CoefficientEstimate>, SolveError> {
    let run_quantiles: Vec<Vec<f64>> =
        cells.iter().map(|cell| per_run_quantiles(cell, tau)).collect();
    let options = IrlsOptions {
        // The paper's 0.01-σ perturbation trick, for the all-dummy
        // regressors.
        jitter: 0.01,
        ..Default::default()
    };

    let fit = |quantiles: &[Vec<f64>]| -> Result<Vec<f64>, SolveError> {
        let rows: usize = quantiles.iter().map(Vec::len).sum();
        let mut matrix = Matrix::zeros(rows, design.num_terms());
        let mut y = Vec::with_capacity(rows);
        let mut r = 0;
        for (cell, cell_quantiles) in cells.iter().zip(quantiles) {
            let row = design.row(&cell.levels);
            for &q in cell_quantiles {
                for (c, v) in row.iter().enumerate() {
                    matrix[(r, c)] = *v;
                }
                y.push(q);
                r += 1;
            }
        }
        quantile_regression_irls(&matrix, &y, tau, &options)
    };

    let point = fit(&run_quantiles)?;

    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut per_coef: Vec<StreamingStats> =
        (0..design.num_terms()).map(|_| StreamingStats::new()).collect();
    let mut resampled = run_quantiles.clone();
    for _ in 0..replicates.max(1) {
        for (dst, src) in resampled.iter_mut().zip(&run_quantiles) {
            for slot in dst.iter_mut() {
                *slot = src[rng.gen_range(0..src.len())];
            }
        }
        let beta = fit(&resampled)?;
        for (stat, value) in per_coef.iter_mut().zip(&beta) {
            stat.record(*value);
        }
    }

    Ok(design
        .term_labels()
        .into_iter()
        .zip(point)
        .zip(per_coef)
        .map(|((term, estimate), stats)| {
            let std_error = stats.sample_stddev();
            let p_value = if std_error > 0.0 {
                two_sided_p_value(estimate / std_error)
            } else if estimate == 0.0 {
                1.0
            } else {
                0.0
            };
            CoefficientEstimate {
                term,
                estimate,
                std_error,
                p_value,
            }
        })
        .collect())
}

/// Fits the model at each of the paper's Table IV percentiles.
pub fn attribution_table(
    dataset: &Dataset,
    bootstrap_replicates: usize,
    seed: u64,
) -> Vec<AttributionResult> {
    TABLE_IV_PERCENTILES
        .iter()
        .map(|&tau| attribute(dataset, tau, bootstrap_replicates, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_stats::regression::Cell;

    /// A synthetic dataset with known structure: latency is
    /// `100 + 50*numa + 20*numa*dvfs - 10*turbo` (+ noise), constant
    /// across quantiles.
    fn synthetic_dataset(run_noise: f64) -> Dataset {
        use rand::Rng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let cells = (0..16)
            .map(|i| {
                let cfg = HardwareConfig::from_index(i);
                let lv = cfg.levels();
                let center = 100.0 + 50.0 * lv[0] + 20.0 * lv[0] * lv[2] - 10.0 * lv[1];
                let runs: Vec<Vec<f64>> = (0..8)
                    .map(|_| {
                        let shift = rng.gen_range(-run_noise..=run_noise);
                        (0..200)
                            .map(|_| center + shift + rng.gen_range(-1.0..1.0))
                            .collect()
                    })
                    .collect();
                Cell::new(lv, runs)
            })
            .collect();
        Dataset {
            cells,
            target_rps: 1.0,
            workload_name: "synthetic".into(),
        }
    }

    #[test]
    fn recovers_known_effects() {
        let dataset = synthetic_dataset(0.5);
        let result = attribute(&dataset, 0.5, 100, 1);
        let numa = result.term("numa").unwrap();
        assert!((numa.estimate - 50.0).abs() < 3.0, "numa {}", numa.estimate);
        assert!(numa.is_significant(0.05));
        let interaction = result.term("numa:dvfs").unwrap();
        assert!(
            (interaction.estimate - 20.0).abs() < 4.0,
            "numa:dvfs {}",
            interaction.estimate
        );
        let turbo = result.term("turbo").unwrap();
        assert!((turbo.estimate + 10.0).abs() < 3.0);
        // Null factor: nic has no effect.
        let nic = result.term("nic").unwrap();
        assert!(nic.estimate.abs() < 3.0, "nic {}", nic.estimate);
    }

    #[test]
    fn predictions_follow_the_recipe() {
        let dataset = synthetic_dataset(0.5);
        let result = attribute(&dataset, 0.5, 20, 2);
        // numa high + dvfs high: 100 + 50 + 20 = 170.
        let cfg = HardwareConfig::from_index(0b0101);
        assert!((result.predict(&cfg) - 170.0).abs() < 4.0);
        assert_eq!(result.predictions_all_configs().len(), 16);
    }

    #[test]
    fn best_config_minimises_prediction() {
        let dataset = synthetic_dataset(0.5);
        let result = attribute(&dataset, 0.5, 20, 3);
        let best = result.best_config();
        // Optimal: numa low (avoid +50), turbo high (-10); dvfs/nic
        // don't matter (but dvfs high only hurts with numa high).
        assert!(!best.numa.is_high());
        assert!(best.turbo.is_high());
    }

    #[test]
    fn table_covers_paper_percentiles() {
        let dataset = synthetic_dataset(0.5);
        let table = attribution_table(&dataset, 10, 4);
        assert_eq!(table.len(), 3);
        assert_eq!(table[0].tau, 0.50);
        assert_eq!(table[2].tau, 0.99);
        for result in &table {
            assert_eq!(result.coefficients.len(), 16);
            assert_eq!(result.coefficients[0].term, "(Intercept)");
        }
    }

    #[test]
    fn graceful_full_dataset_matches_exact() {
        let dataset = synthetic_dataset(0.5);
        let outcome = attribute_graceful(&dataset, 0.5, 20, 2);
        assert!(!outcome.degraded);
        assert!(outcome.warnings.is_empty());
        let exact = attribute(&dataset, 0.5, 20, 2);
        assert_eq!(outcome.result.coefficients, exact.coefficients);
    }

    #[test]
    fn graceful_missing_cell_falls_back_to_irls() {
        let mut dataset = synthetic_dataset(0.5);
        dataset.cells.remove(7);
        let outcome = attribute_graceful(&dataset, 0.5, 60, 3);
        assert!(outcome.degraded);
        assert!(
            outcome.warnings.iter().any(|w| w.contains("IRLS")),
            "warnings must name the fallback: {:?}",
            outcome.warnings
        );
        // 15 cells identify the order-3 model (15 terms).
        assert_eq!(outcome.result.coefficients.len(), 15);
        let numa = outcome.result.term("numa").unwrap();
        assert!((numa.estimate - 50.0).abs() < 5.0, "numa {}", numa.estimate);
        assert!(numa.std_error > 0.0);
        let interaction = outcome.result.term("numa:dvfs").unwrap();
        assert!(
            (interaction.estimate - 20.0).abs() < 6.0,
            "numa:dvfs {}",
            interaction.estimate
        );
        // Predictions cover all 16 configurations and stay finite even
        // for the missing cell.
        let predictions = outcome.result.predictions_all_configs();
        assert_eq!(predictions.len(), 16);
        assert!(predictions.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn graceful_handles_heavily_degraded_datasets() {
        let mut dataset = synthetic_dataset(0.5);
        // Keep the even-parity half fraction (8 cells): a resolution-IV
        // design that identifies main effects (5 terms) but cannot
        // support order-2 (11 terms).
        let mut idx = 0usize;
        dataset.cells.retain(|_| {
            let keep = idx.count_ones().is_multiple_of(2);
            idx += 1;
            keep
        });
        let outcome = attribute_graceful(&dataset, 0.5, 30, 4);
        assert!(outcome.degraded);
        assert_eq!(outcome.result.coefficients.len(), 5);
        assert!(
            outcome.warnings.iter().any(|w| w.contains("order 1")),
            "expected a truncation note: {:?}",
            outcome.warnings
        );
    }

    #[test]
    fn noisier_runs_give_larger_standard_errors() {
        let calm = attribute(&synthetic_dataset(0.2), 0.5, 100, 5);
        let noisy = attribute(&synthetic_dataset(20.0), 0.5, 100, 5);
        let se = |r: &AttributionResult| r.term("numa").unwrap().std_error;
        assert!(
            se(&noisy) > se(&calm) * 3.0,
            "noisy {} vs calm {}",
            se(&noisy),
            se(&calm)
        );
    }
}
