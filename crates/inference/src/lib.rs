//! Tail-latency attribution via quantile regression (paper §IV–§V).
//!
//! The pipeline:
//!
//! 1. [`factors`] — the four hardware factors and their levels
//!    (Table III);
//! 2. [`dataset`] — the 2⁴ full-factorial experiment campaign: ≥30
//!    independent Treadmill runs per configuration, 20k subsampled
//!    latency samples each (§V-A);
//! 3. [`attribution`] — saturated quantile regression with run-level
//!    bootstrap inference at the 50th/95th/99th percentiles (Table IV),
//!    and predicted latencies for all 16 configurations (Figures 7/9);
//! 4. [`impact`] — average per-factor impact (Figures 8/10);
//! 5. [`goodness`] — the paper's pseudo-R² (Figure 11, Eq. 2);
//! 6. [`tuning`] — before/after validation of the recommended
//!    configuration (Figure 12).
//!
//! # Examples
//!
//! ```no_run
//! use std::sync::Arc;
//! use treadmill_inference::{attribute, collect, CollectionPlan};
//! use treadmill_workloads::Memcached;
//!
//! let plan = CollectionPlan::new(Arc::new(Memcached::default()), 700_000.0);
//! let dataset = collect(&plan); // 480 experiments
//! let model = attribute(&dataset, 0.99, 200, 0);
//! println!("best config: {}", model.best_config());
//! ```

#![forbid(unsafe_code)]
// Unit tests unwrap freely and assert exact float equality: bit-exact
// reproducibility is the property under test. Library code is held to
// the workspace lint table (see DESIGN.md, "Static analysis").
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)
)]
#![warn(missing_docs)]

pub mod analytic;
pub mod attribution;
pub mod dataset;
pub mod factors;
pub mod goodness;
pub mod impact;
pub mod reduced;
pub mod screening;
pub mod tuning;

pub use analytic::{
    censoring_prediction, predict, predict_cell, AnalyticError, AnalyticInput,
    CensoringPrediction, TailPrediction,
};
pub use attribution::{
    attribute, attribute_graceful, attribution_table, AttributionOutcome,
    AttributionResult, TABLE_IV_PERCENTILES,
};
pub use dataset::{collect, CollectionPlan, Dataset};
pub use factors::{factor_names, factor_table, Factor};
pub use goodness::{goodness_sweep, model_pseudo_r_squared, GoodnessPoint};
pub use impact::{average_factor_impacts, FactorImpact};
pub use reduced::{fit_reduced, model_comparison, ModelComparisonRow, ReducedModel};
pub use screening::{
    screen_cells, screen_factors, screen_hardware, CellPrediction, FactorEffect,
    ScreenError, ScreenPlan, ScreeningOptions, ScreeningResult,
};
pub use tuning::{validate, ArmSummary, TuningOutcome, TuningPlan};
