//! Analytic fast-path tail estimator — an M/G/k queueing model of the
//! simulated server that maps a [`LoadTestConfig`] cell directly to
//! predicted p50/p95/p99 latency with no events and no RNG.
//!
//! The point is *screening*, not replacement: a 2^k factorial sweep
//! spends one full DES run per cell, which caps how many factors and
//! scenarios are explorable. Flow/queueing-level approximation
//! ("Scalable Tail Latency Estimation for Data Center Networks")
//! estimates tails orders of magnitude faster than event-level
//! simulation and is accurate enough to *rank* configurations — so
//! [`crate::screening::screen_hardware`] uses this estimator to rank
//! all cells of the factor space and flag the ones whose predicted
//! tail effect crosses a threshold, and `core::sweep` spends full DES
//! runs only on the flagged cells. `tests/analytic_oracle.rs` pins the
//! screen-vs-DES agreement (rank correlation, bounded p99 error,
//! screen recall) as a regression oracle.
//!
//! # Model
//!
//! The server is approximated as two queueing stages plus a fixed
//! client/network pipeline:
//!
//! * **Worker stage** — an M/G/k queue over all `k = 16` cores with
//!   two-moment (Allen–Cunneen) waiting time: the M/M/k Erlang-C wait
//!   scaled by `(1 + CV²)/2`. Service demand comes from
//!   [`ServiceMoments`]: the CPU share scales with the solved core
//!   frequency, the memory share is inflated by the NUMA remote
//!   fraction, and half the requests pay the cross-socket handoff fee.
//! * **Interrupt-path correction** — IRQ handling is its own M/D/k'
//!   stage with `k' = 8` when NIC affinity pins every RSS queue to
//!   socket 0 (`nic` Low) and `k' = 16` when queues spread across both
//!   sockets (`nic` High, which instead pays the cross-socket DMA
//!   penalty on half its interrupts). Concentrating interrupt load on
//!   one socket is exactly what makes `nic` a tail factor at high
//!   load.
//! * **DVFS/thermal fixed point** — service times depend on frequency,
//!   frequency depends on the governor's view of utilisation, and
//!   utilisation depends on service times. The solver iterates
//!   frequency → service → utilisation → steady-state package heat →
//!   available turbo headroom → governor target (the same `ondemand`
//!   proportional law and quantisation as the DES) to a damped fixed
//!   point.
//! * **NIC-overflow correction** — with a finite ingress buffer, the
//!   overflow probability is estimated from the geometric backlog tail
//!   of the interrupt stage; dropped (and crash-reset) requests thin
//!   the arrival stream and bound the reliable quantile range exactly
//!   like the type-I censoring correction in `core::omission` (see
//!   [`censoring_prediction`] for the closed form of that correction,
//!   cross-checked property-wise against `correct_with_censored`).
//!
//! Tail quantiles compose the conditional-exponential wait quantile of
//! each stage with the service-time quantile (lognormal noise × slow-
//! path mixture, inverted by bisection on the closed-form CDF). Sums of
//! per-stage quantiles are a comonotone upper bound rather than a true
//! convolution — a consistent bias that preserves ranking, which is
//! what the differential oracle actually pins.
//!
//! Determinism contract: no RNG, no clocks, no panics (the file is
//! pinned at a zero panic budget in `lint-baseline.toml`), and all
//! float comparisons go through `f64::total_cmp` or plain arithmetic —
//! the fixed-point solver cannot NaN-panic.

use std::fmt;

use treadmill_cluster::{
    ClientSpec, FaultSpec, HardwareConfig, Level, NetworkSpec, ServerSpec,
};
use treadmill_core::{ConfigError, LoadTestConfig};
use treadmill_stats::distribution::normal_cdf;
use treadmill_workloads::ServiceMoments;

/// Why the analytic estimator refused an input.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyticError {
    /// The [`LoadTestConfig`] itself does not validate (or its workload
    /// spec does not build).
    Config(String),
    /// A direct [`AnalyticInput`] field is out of range.
    Invalid {
        /// The offending field.
        field: &'static str,
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for AnalyticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyticError::Config(msg) => write!(f, "config error: {msg}"),
            AnalyticError::Invalid { field, message } => {
                write!(f, "invalid analytic input `{field}`: {message}")
            }
        }
    }
}

impl std::error::Error for AnalyticError {}

impl From<ConfigError> for AnalyticError {
    fn from(e: ConfigError) -> Self {
        AnalyticError::Config(e.to_string())
    }
}

/// Everything the estimator needs about one configuration cell.
/// [`predict_cell`] assembles this from a [`LoadTestConfig`]; tests and
/// callers with non-default hardware specs can fill it directly.
#[derive(Debug, Clone)]
pub struct AnalyticInput {
    /// Open-loop arrival rate offered to one server, requests/second.
    pub arrival_rps: f64,
    /// The factorial hardware cell under prediction.
    pub hardware: HardwareConfig,
    /// Workload service-demand and wire-size moments.
    pub moments: ServiceMoments,
    /// Server hardware parameters (must match the DES spec for the
    /// differential oracle to be meaningful).
    pub server: ServerSpec,
    /// Network parameters.
    pub network: NetworkSpec,
    /// Client-side fixed costs.
    pub client: ClientSpec,
    /// Fault injection settings (losses, NIC buffer, stalls, crashes).
    pub faults: FaultSpec,
    /// Measurement window length, µs — bounds the overload backlog
    /// ramp when the cell is unstable.
    pub duration_us: f64,
}

impl AnalyticInput {
    /// An input with default cluster specs for the given rate, cell and
    /// workload moments — the same defaults the DES runner uses.
    pub fn new(arrival_rps: f64, hardware: HardwareConfig, moments: ServiceMoments) -> Self {
        AnalyticInput {
            arrival_rps,
            hardware,
            moments,
            server: ServerSpec::default(),
            network: NetworkSpec::default(),
            client: ClientSpec::default(),
            faults: FaultSpec::default(),
            duration_us: 600_000.0,
        }
    }
}

/// The estimator's output for one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailPrediction {
    /// Predicted median end-to-end latency, µs.
    pub p50_us: f64,
    /// Predicted 95th-percentile latency, µs.
    pub p95_us: f64,
    /// Predicted 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Per-core offered utilisation (worker + interrupt work), at the
    /// solved frequency. May exceed 1 for unstable cells.
    pub utilization: f64,
    /// The DVFS/thermal fixed-point core frequency, GHz.
    pub effective_ghz: f64,
    /// Mean queueing wait across both stages, µs.
    pub mean_wait_us: f64,
    /// Predicted fraction of requests lost to link loss, NIC overflow,
    /// or crash resets.
    pub drop_fraction: f64,
    /// Quantiles at or above this rank are lower bounds, not estimates
    /// (the censoring bound implied by `drop_fraction`).
    pub reliable_below: f64,
    /// Whether every stage is below saturation.
    pub stable: bool,
}

const NS_PER_SEC: f64 = 1e9;
/// Matches `ThermalModel::heating_gain` in the DES.
const THERMAL_HEATING_GAIN: f64 = 0.85;
/// Matches `dvfs::FREQ_STEP_GHZ`.
const FREQ_STEP_GHZ: f64 = 0.1;
/// Erlang-part utilisation clamp: above this the fluid overload ramp
/// takes over (the Erlang wait diverges at 1).
const RHO_CLAMP: f64 = 0.995;

/// Predicts the latency distribution of one `LoadTestConfig` cell at a
/// given hardware configuration, using the same default cluster specs
/// as the DES runner.
///
/// # Errors
///
/// Returns [`AnalyticError::Config`] when the config does not validate
/// or its workload does not build, and [`AnalyticError::Invalid`] for
/// out-of-range analytic inputs (non-finite rate, zero cores).
pub fn predict_cell(
    config: &LoadTestConfig,
    hardware: HardwareConfig,
) -> Result<TailPrediction, AnalyticError> {
    config.validate()?;
    let workload = config
        .workload
        .build()
        .map_err(|e| AnalyticError::Config(e.to_string()))?;
    let mut input = AnalyticInput::new(
        config.target_rps / config.servers.max(1) as f64,
        hardware,
        workload.service_moments(),
    );
    input.faults = config.faults;
    input.duration_us = config.duration_ms.max(1) as f64 * 1_000.0;
    predict(&input)
}

/// Runs the estimator on a fully specified input.
///
/// # Errors
///
/// Returns [`AnalyticError::Invalid`] when the rate or moments are
/// non-finite/non-positive or the server spec has no cores.
pub fn predict(input: &AnalyticInput) -> Result<TailPrediction, AnalyticError> {
    validate_input(input)?;
    let spec = &input.server;
    let k_total = spec.total_cores() as f64;
    let k_irq = irq_cores(spec, input.hardware.nic) as f64;

    // Arrival thinning: uplink loss happens before the server sees the
    // packet; NIC overflow and crash resets are solved below.
    let lambda_in = input.arrival_rps * (1.0 - input.faults.uplink_loss.clamp(0.0, 1.0));

    // Stalls and crash windows eat server capacity: inflate service
    // demand by the stolen fraction instead of shrinking k (same
    // first-order utilisation, simpler algebra).
    let stall_frac =
        (input.faults.stall_rate_hz * input.faults.stall_us / 1e6).clamp(0.0, 0.95);
    let crash_frac =
        (input.faults.crash_rate_hz * input.faults.crash_downtime_us / 1e6).clamp(0.0, 0.95);
    let capacity_scale = ((1.0 - stall_frac) * (1.0 - crash_frac)).max(0.05);

    // DVFS/thermal fixed point at the thinned arrival rate (NIC drops
    // are small by the time they matter; folding them into the fixed
    // point would couple the two corrections for negligible gain).
    let solved = solve_frequency(input, lambda_in, capacity_scale);
    let freq = solved.freq_ghz;
    let s_irq = solved.irq_ns;
    let s_work = solved.work_ns;

    // NIC-overflow correction: geometric backlog tail of the interrupt
    // stage, measured in request-sized packets against the buffer.
    let rho_irq_raw = lambda_in * s_irq / (k_irq * NS_PER_SEC);
    let nic_drop = nic_overflow_fraction(
        input.faults.nic_capacity_bytes,
        input.moments.request_bytes,
        rho_irq_raw,
    );
    let lambda_srv = lambda_in * (1.0 - nic_drop);

    let drop_fraction = 1.0
        - (1.0 - input.faults.uplink_loss.clamp(0.0, 1.0))
            * (1.0 - nic_drop)
            * (1.0 - input.faults.downlink_loss.clamp(0.0, 1.0))
            * (1.0 - crash_frac);

    // Stage loads in erlangs (dimensionless servers-worth of work).
    let a_work = lambda_srv * s_work / NS_PER_SEC;
    let a_irq = lambda_srv * s_irq / NS_PER_SEC;
    let rho_work = a_work / k_total;
    let rho_irq = a_irq / k_irq;
    let utilization = rho_work + a_irq / k_total;
    let stable = utilization < 1.0 && rho_irq < 1.0;

    // Effective service-time variability for the wait formula: the
    // workload's cv² plus the NUMA remote-vs-local bimodality.
    let cv2 = input.moments.cv2.max(0.0) + numa_cv2_boost(input, freq);

    let wait = |q: f64| -> f64 {
        stage_wait_quantile(k_total, a_work, s_work, cv2, q)
            + stage_wait_quantile(k_irq, a_irq, s_irq, 0.1, q)
            + overload_ramp(utilization.max(rho_irq), input.duration_us * 1_000.0, q)
    };
    let mean_wait_ns = stage_mean_wait(k_total, a_work, s_work, cv2)
        + stage_mean_wait(k_irq, a_irq, s_irq, 0.1)
        + overload_ramp(utilization.max(rho_irq), input.duration_us * 1_000.0, 0.5);

    let fixed_ns = fixed_path_ns(input);
    let service = ServiceQuantiles::new(&input.moments, s_work);

    let latency_us = |q: f64| -> f64 {
        (fixed_ns + s_irq + wait(q) + service.quantile_ns(q)) / 1_000.0
    };

    Ok(TailPrediction {
        p50_us: latency_us(0.50),
        p95_us: latency_us(0.95),
        p99_us: latency_us(0.99),
        utilization,
        effective_ghz: freq,
        mean_wait_us: mean_wait_ns / 1_000.0,
        drop_fraction,
        reliable_below: 1.0 - drop_fraction,
        stable,
    })
}

fn validate_input(input: &AnalyticInput) -> Result<(), AnalyticError> {
    if !(input.arrival_rps.is_finite() && input.arrival_rps > 0.0) {
        return Err(AnalyticError::Invalid {
            field: "arrival_rps",
            message: format!("must be finite and positive, got {}", input.arrival_rps),
        });
    }
    if !(input.moments.mean_ns.is_finite() && input.moments.mean_ns > 0.0) {
        return Err(AnalyticError::Invalid {
            field: "moments.mean_ns",
            message: format!("must be finite and positive, got {}", input.moments.mean_ns),
        });
    }
    if !input.moments.cv2.is_finite() || input.moments.cv2 < 0.0 {
        return Err(AnalyticError::Invalid {
            field: "moments.cv2",
            message: format!("must be finite and non-negative, got {}", input.moments.cv2),
        });
    }
    if input.server.total_cores() == 0 {
        return Err(AnalyticError::Invalid {
            field: "server",
            message: "server spec has zero cores".to_string(),
        });
    }
    if !(input.duration_us.is_finite() && input.duration_us > 0.0) {
        return Err(AnalyticError::Invalid {
            field: "duration_us",
            message: format!("must be finite and positive, got {}", input.duration_us),
        });
    }
    Ok(())
}

/// Cores handling interrupts under the NIC affinity policy: `same-node`
/// (Low) pins every RSS queue to socket 0; `all-nodes` (High) spreads
/// queues over all cores.
fn irq_cores(spec: &ServerSpec, nic: Level) -> usize {
    match nic {
        Level::Low => usize::from(spec.cores_per_socket).max(1),
        Level::High => spec.total_cores().max(1),
    }
}

/// Mean interrupt service at frequency `f`: the kernel cost scales with
/// frequency; under `all-nodes` affinity half the interrupts land on
/// the socket without the NIC's PCIe attachment and pay the DMA
/// penalty.
fn irq_service_ns(spec: &ServerSpec, hw: HardwareConfig, freq_ghz: f64) -> f64 {
    let cross_fraction = match hw.nic {
        Level::Low => 0.0,
        Level::High => 0.5,
    };
    spec.irq_ns * spec.base_ghz / freq_ghz + cross_fraction * spec.irq_cross_socket_ns
}

/// NUMA remote fraction for the cell: the mean of the jittered
/// per-run draw in `hysteresis::RunState`.
fn remote_fraction(spec: &ServerSpec, hw: HardwareConfig) -> f64 {
    match hw.numa {
        Level::Low => spec.hysteresis.remote_fraction_same_node,
        Level::High => spec.hysteresis.remote_fraction_interleave,
    }
}

/// Mean worker service at frequency `f`: CPU share frequency-scaled,
/// memory share NUMA-inflated, plus the expected cross-socket handoff
/// fee (worker cores are drawn uniformly over both sockets, so half
/// the requests cross regardless of NIC affinity).
fn work_service_ns(input: &AnalyticInput, freq_ghz: f64) -> f64 {
    let spec = &input.server;
    let m = &input.moments;
    let r = remote_fraction(spec, input.hardware);
    let mem_mult = 1.0 + (spec.numa_remote_penalty - 1.0) * r;
    let cpu = m.mean_ns * m.cpu_fraction * spec.base_ghz / freq_ghz;
    let mem = m.mean_ns * (1.0 - m.cpu_fraction) * mem_mult;
    cpu + mem + 0.5 * spec.handoff_cross_socket_ns
}

/// Extra service-time variance (as a cv² increment) from the
/// remote-vs-local NUMA bimodality: a Bernoulli(r) mixture between the
/// local and penalised memory cost.
fn numa_cv2_boost(input: &AnalyticInput, freq_ghz: f64) -> f64 {
    let spec = &input.server;
    let m = &input.moments;
    let r = remote_fraction(spec, input.hardware);
    let mem = m.mean_ns * (1.0 - m.cpu_fraction);
    let delta = mem * (spec.numa_remote_penalty - 1.0);
    let mean = work_service_ns(input, freq_ghz);
    if mean <= 0.0 {
        return 0.0;
    }
    // Var of a Bernoulli(r) shift of size delta, normalised by the mean.
    r * (1.0 - r) * (delta / mean) * (delta / mean)
}

struct SolvedPoint {
    freq_ghz: f64,
    irq_ns: f64,
    work_ns: f64,
}

/// Damped fixed-point solve of frequency ↔ utilisation ↔ thermal
/// headroom, replicating the DES governor laws:
///
/// * `performance` (dvfs High): target = thermally available max;
/// * `ondemand` (dvfs Low): jump to max at `up_threshold`, proportional
///   `min + (max−min)·util/threshold` below it;
/// * turbo headroom shrinks linearly once steady-state heat
///   (`0.85·util·(f/base)³`) passes the throttle start;
/// * targets quantise to 0.1 GHz steps.
fn solve_frequency(
    input: &AnalyticInput,
    lambda: f64,
    capacity_scale: f64,
) -> SolvedPoint {
    let spec = &input.server;
    let k_total = spec.total_cores() as f64;
    let cold_max = if input.hardware.turbo.is_high() {
        spec.turbo_ghz
    } else {
        spec.base_ghz
    };
    let mut freq = match input.hardware.dvfs {
        Level::High => cold_max,
        Level::Low => spec.base_ghz,
    };
    let mut target = freq;
    for _ in 0..64 {
        let s_irq = irq_service_ns(spec, input.hardware, freq) / capacity_scale;
        let s_work = work_service_ns(input, freq) / capacity_scale;
        let util = (lambda * (s_irq + s_work) / (k_total * NS_PER_SEC)).clamp(0.0, 1.0);
        let heat = THERMAL_HEATING_GAIN
            * util
            * (freq / spec.base_ghz).max(0.0).powi(3);
        let max_avail = available_ghz(spec, input.hardware.turbo.is_high(), heat);
        target = governor_target(
            input.hardware.dvfs,
            util,
            spec.min_ghz,
            max_avail,
            spec.ondemand_up_threshold,
        );
        let next = 0.5 * freq + 0.5 * target;
        let converged = (next - freq).abs() < 1e-9;
        freq = next;
        if converged {
            break;
        }
    }
    // Land on the governor's quantised step rather than the damped
    // average between steps.
    let freq = target.clamp(spec.min_ghz, spec.turbo_ghz.max(spec.base_ghz));
    SolvedPoint {
        freq_ghz: freq,
        irq_ns: irq_service_ns(spec, input.hardware, freq) / capacity_scale,
        work_ns: work_service_ns(input, freq) / capacity_scale,
    }
}

/// Mirror of `ThermalModel::available_ghz` at steady-state heat.
fn available_ghz(spec: &ServerSpec, turbo_enabled: bool, heat: f64) -> f64 {
    if !turbo_enabled {
        return spec.base_ghz;
    }
    if heat <= spec.thermal_throttle_start {
        return spec.turbo_ghz;
    }
    let over = ((heat - spec.thermal_throttle_start)
        / (1.0 - spec.thermal_throttle_start))
        .clamp(0.0, 1.0);
    spec.turbo_ghz - (spec.turbo_ghz - spec.base_ghz) * over
}

/// Mirror of `dvfs::governor_target` (including quantisation), minus
/// the panic path: an inverted range clamps instead of aborting.
fn governor_target(
    governor: Level,
    window_util: f64,
    min_ghz: f64,
    max_available_ghz: f64,
    up_threshold: f64,
) -> f64 {
    let max_available_ghz = max_available_ghz.max(min_ghz);
    let target = match governor {
        Level::High => max_available_ghz,
        Level::Low => {
            let util = window_util.clamp(0.0, 1.0);
            if util >= up_threshold {
                max_available_ghz
            } else {
                min_ghz + (max_available_ghz - min_ghz) * (util / up_threshold)
            }
        }
    };
    let stepped = (target / FREQ_STEP_GHZ).round() * FREQ_STEP_GHZ;
    stepped.clamp(min_ghz, max_available_ghz)
}

/// Erlang-C probability of waiting for an M/M/k queue offered `a`
/// erlangs, via the numerically stable Erlang-B recurrence.
fn erlang_c(k: f64, a: f64) -> f64 {
    if a <= 0.0 {
        return 0.0;
    }
    if a >= k {
        return 1.0;
    }
    // Server counts are small integers (core counts); the cast cannot
    // truncate anything meaningful and saturates safely if it did.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let servers = k.max(1.0) as usize;
    let mut b = 1.0;
    for n in 1..=servers {
        let n = n as f64;
        b = a * b / (n + a * b);
    }
    let c = k * b / (k - a * (1.0 - b));
    c.clamp(0.0, 1.0)
}

/// Mean M/G/k wait (ns) by the Allen–Cunneen two-moment approximation:
/// Erlang-C × (1+CV²)/2 × s/(k − a).
fn stage_mean_wait(k: f64, a: f64, service_ns: f64, cv2: f64) -> f64 {
    let a = a.min(k * RHO_CLAMP);
    let c = erlang_c(k, a);
    c * (1.0 + cv2) / 2.0 * service_ns / (k - a)
}

/// The `q`-quantile (ns) of the stage's waiting time: exponential
/// conditional wait `P(W > t) = C·exp(−(k−a)t/s)`, zero below the
/// no-wait mass, with the variability scaling folded into the mean of
/// the conditional exponential.
fn stage_wait_quantile(k: f64, a: f64, service_ns: f64, cv2: f64, q: f64) -> f64 {
    let a = a.min(k * RHO_CLAMP);
    let c = erlang_c(k, a);
    if c <= 0.0 || q <= 1.0 - c {
        return 0.0;
    }
    let mean_conditional = (1.0 + cv2) / 2.0 * service_ns / (k - a);
    mean_conditional * (c / (1.0 - q)).max(1.0).ln()
}

/// Fluid overload backlog: past saturation the queue grows linearly for
/// the whole window, so a request at relative position `q` of the run
/// waits `(1 − 1/ρ)·q·D`. Zero for stable cells — continuous at ρ = 1.
fn overload_ramp(rho: f64, duration_ns: f64, q: f64) -> f64 {
    if rho <= 1.0 {
        return 0.0;
    }
    (1.0 - 1.0 / rho) * q.clamp(0.0, 1.0) * duration_ns
}

/// Geometric-tail estimate of the NIC ingress overflow fraction: the
/// probability the interrupt-stage backlog exceeds the buffer, measured
/// in mean-request-size packets. Past saturation the fluid excess
/// `1 − 1/ρ` is dropped outright.
fn nic_overflow_fraction(capacity_bytes: f64, request_bytes: f64, rho_irq: f64) -> f64 {
    if capacity_bytes <= 0.0 {
        return 0.0;
    }
    if rho_irq >= 1.0 {
        return (1.0 - 1.0 / rho_irq).clamp(0.0, 1.0);
    }
    if rho_irq <= 0.0 {
        return 0.0;
    }
    let packets = (capacity_bytes / request_bytes.max(1.0)).max(1.0);
    rho_irq.powf(1.0 + packets).clamp(0.0, 1.0)
}

/// Fixed (load-independent) client + network path cost, ns: user-space
/// send/receive CPU, kernel tx/rx, serialisation of both messages, and
/// propagation each way.
fn fixed_path_ns(input: &AnalyticInput) -> f64 {
    let c = &input.client;
    let n = &input.network;
    let tx = input.moments.request_bytes / n.bytes_per_ns;
    let rx = input.moments.response_bytes / n.bytes_per_ns;
    let prop = 2.0 * n.same_rack_propagation.as_micros_f64() * 1_000.0
        + 2.0 * f64::from(c.rack) * n.cross_rack_extra.as_micros_f64() * 1_000.0;
    c.send_cpu_ns
        + c.recv_cpu_ns
        + c.kernel_tx.as_micros_f64() * 1_000.0
        + c.kernel_rx.as_micros_f64() * 1_000.0
        + tx
        + rx
        + prop
}

/// Service-time quantiles: deterministic mean × lognormal(σ_eff) ×
/// slow-path mixture, inverted by bisection on the closed-form CDF.
///
/// σ_eff absorbs *all* fast-path variability (payload spread and
/// multiplicative noise): from the total cv² with the slow mixture
/// factored out, `1 + cv2_fast = (1 + cv²)·E[S]²/E[S²]`, then
/// `σ_eff = √ln(1 + cv2_fast)` — the lognormal with that cv².
struct ServiceQuantiles {
    mean_ns: f64,
    sigma: f64,
    slow_fraction: f64,
    slow_multiplier: f64,
}

impl ServiceQuantiles {
    fn new(moments: &ServiceMoments, work_mean_ns: f64) -> Self {
        let p = moments.slow_fraction.clamp(0.0, 1.0);
        let m = moments.slow_multiplier.max(1.0);
        let e_s = 1.0 + p * (m - 1.0);
        let e_s2 = 1.0 + p * (m * m - 1.0);
        let cv2_fast =
            ((1.0 + moments.cv2.max(0.0)) * e_s * e_s / e_s2 - 1.0).max(0.0);
        // The mixture mean is e_s × the fast-path mean; quantiles are
        // anchored on the fast-path mean so the mixture reproduces the
        // overall work_mean_ns.
        ServiceQuantiles {
            mean_ns: work_mean_ns / e_s,
            sigma: cv2_fast.ln_1p().sqrt(),
            slow_fraction: p,
            slow_multiplier: m,
        }
    }

    /// CDF of the mixture at service time `x` ns.
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if self.sigma <= 0.0 {
            let fast = if x >= self.mean_ns { 1.0 } else { 0.0 };
            let slow = if x >= self.mean_ns * self.slow_multiplier {
                1.0
            } else {
                0.0
            };
            return (1.0 - self.slow_fraction) * fast + self.slow_fraction * slow;
        }
        let z = |scale: f64| {
            ((x / (self.mean_ns * scale)).ln() + self.sigma * self.sigma / 2.0)
                / self.sigma
        };
        (1.0 - self.slow_fraction) * normal_cdf(z(1.0))
            + self.slow_fraction * normal_cdf(z(self.slow_multiplier))
    }

    /// The `q`-quantile in ns, by bisection (the CDF is monotone; 80
    /// halvings of the bracket are far below f64 noise).
    fn quantile_ns(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if self.sigma <= 0.0 {
            return if q < 1.0 - self.slow_fraction {
                self.mean_ns
            } else {
                self.mean_ns * self.slow_multiplier
            };
        }
        let mut lo = self.mean_ns * 1e-3;
        let mut hi =
            self.mean_ns * self.slow_multiplier * (6.0 * self.sigma).exp().max(8.0);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Closed-form prediction of what `core::omission::correct_with_censored`
/// produces for a given set of observed and censored latencies: the
/// corrected sample count (each value `v` backfills `⌈v/I⌉ − 1`
/// coordinated-omission samples) and the reliability bound
/// `1 − censored/(observed + censored)`.
///
/// This is the metamorphic cross-check target for the omission
/// estimator: the iterative subtraction in `correct_with_censored` and
/// this closed form must agree on integer-valued inputs (where float
/// subtraction is exact).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CensoringPrediction {
    /// Total corrected sample count (observed + censored + backfill).
    pub corrected_count: usize,
    /// Quantiles at or above this rank are lower bounds.
    pub reliable_below: f64,
}

/// Computes the closed-form censoring prediction.
///
/// # Errors
///
/// Returns [`AnalyticError::Invalid`] when `interval_us` is not finite
/// and positive.
pub fn censoring_prediction(
    observed_us: &[f64],
    censored_us: &[f64],
    interval_us: f64,
) -> Result<CensoringPrediction, AnalyticError> {
    if !(interval_us.is_finite() && interval_us > 0.0) {
        return Err(AnalyticError::Invalid {
            field: "interval_us",
            message: format!("must be finite and positive, got {interval_us}"),
        });
    }
    let backfills = |v: f64| -> usize {
        if v <= 0.0 {
            return 0;
        }
        let n = (v / interval_us).ceil() - 1.0;
        if n <= 0.0 {
            0
        } else {
            // `n` is a non-negative integer-valued f64 (ceil output);
            // saturation at usize::MAX only matters for absurd inputs.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                n as usize
            }
        }
    };
    let mut count = observed_us.len() + censored_us.len();
    for &v in observed_us.iter().chain(censored_us) {
        count += backfills(v);
    }
    let total = observed_us.len() + censored_us.len();
    let reliable_below = if total == 0 {
        1.0
    } else {
        1.0 - censored_us.len() as f64 / total as f64
    };
    Ok(CensoringPrediction {
        corrected_count: count,
        reliable_below,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_workloads::{Memcached, Workload};

    fn input(rps: f64, cell: usize) -> AnalyticInput {
        AnalyticInput::new(
            rps,
            HardwareConfig::from_index(cell),
            Memcached::default().service_moments(),
        )
    }

    #[test]
    fn erlang_c_limits() {
        assert_eq!(erlang_c(16.0, 0.0), 0.0);
        assert_eq!(erlang_c(16.0, 16.0), 1.0);
        // Single server: C = a.
        assert!((erlang_c(1.0, 0.3) - 0.3).abs() < 1e-12);
        // Monotone in offered load.
        assert!(erlang_c(16.0, 12.0) > erlang_c(16.0, 8.0));
    }

    #[test]
    fn light_load_latency_is_near_fixed_path() {
        let p = predict(&input(20_000.0, 0b1111)).expect("predicts");
        // All-high at 20k rps: essentially no queueing; the fixed
        // client/network path is ~40us and service ~15us.
        assert!(p.stable);
        assert!(p.p50_us > 40.0 && p.p50_us < 80.0, "p50 {}", p.p50_us);
        assert!(p.p99_us < 250.0, "p99 {}", p.p99_us);
        assert!(p.utilization < 0.2);
    }

    #[test]
    fn latency_grows_with_load() {
        let cell = 0b1111;
        let mut last = 0.0;
        for rps in [100_000.0, 400_000.0, 700_000.0, 900_000.0] {
            let p = predict(&input(rps, cell)).expect("predicts");
            assert!(p.p99_us > last, "p99 must grow with rate");
            last = p.p99_us;
        }
    }

    #[test]
    fn fast_clocks_beat_slow_clocks() {
        // turbo+performance (index 6) vs ondemand-no-turbo (index 0),
        // same numa/nic: higher solved frequency, lower tail.
        let slow = predict(&input(700_000.0, 0)).expect("predicts");
        let fast = predict(&input(700_000.0, 0b0110)).expect("predicts");
        assert!(
            slow.p99_us > fast.p99_us,
            "slow-clock cell {} must trail fast-clock cell {}",
            slow.p99_us,
            fast.p99_us
        );
        assert!(slow.effective_ghz < fast.effective_ghz);
    }

    #[test]
    fn numa_dominates_the_tail_at_high_load() {
        // Same contrast the DES screening test pins: numa High (remote
        // interleave) vs Low at 750k rps.
        let mut base = input(750_000.0, 0b1110);
        base.hardware.numa = Level::Low;
        let mut remote = input(750_000.0, 0b1110);
        remote.hardware.numa = Level::High;
        let p_local = predict(&base).expect("predicts");
        let p_remote = predict(&remote).expect("predicts");
        assert!(
            p_remote.p99_us > p_local.p99_us * 1.1,
            "remote NUMA {} vs local {}",
            p_remote.p99_us,
            p_local.p99_us
        );
    }

    #[test]
    fn ondemand_parks_low_at_light_load() {
        // dvfs Low + turbo off at light load: the governor parks well
        // below base (ext07 pins 1.3–1.5 GHz in the DES).
        let p = predict(&input(60_000.0, 0)).expect("predicts");
        assert!(
            p.effective_ghz < 1.7,
            "ondemand at light load parked at {}",
            p.effective_ghz
        );
        let perf = predict(&input(60_000.0, 0b0100)).expect("predicts");
        assert!(perf.effective_ghz >= 2.2 - 1e-9);
    }

    #[test]
    fn unstable_cell_saturates_not_panics() {
        let p = predict(&input(3_000_000.0, 0)).expect("predicts");
        assert!(!p.stable);
        assert!(p.utilization > 1.0);
        assert!(p.p99_us > 10_000.0, "overloaded tail {}", p.p99_us);
        assert!(p.p99_us.is_finite());
    }

    #[test]
    fn nic_overflow_thins_and_bounds_reliability() {
        // A buffer of ~2 request-sized packets at ~0.18 interrupt-path
        // utilisation: geometric tail gives a small but non-zero drop.
        let mut faulted = input(800_000.0, 0);
        faulted.faults.nic_capacity_bytes = 256.0;
        let p = predict(&faulted).expect("predicts");
        assert!(p.drop_fraction > 0.0, "finite buffer must drop");
        assert!(p.reliable_below < 1.0);
        let clean = predict(&input(800_000.0, 0)).expect("predicts");
        assert_eq!(clean.drop_fraction, 0.0);
        assert_eq!(clean.reliable_below, 1.0);
    }

    #[test]
    fn losses_compose_into_drop_fraction() {
        let mut faulted = input(100_000.0, 0b1111);
        faulted.faults.uplink_loss = 0.01;
        faulted.faults.downlink_loss = 0.02;
        let p = predict(&faulted).expect("predicts");
        let expect = 1.0 - 0.99 * 0.98;
        assert!((p.drop_fraction - expect).abs() < 1e-9);
    }

    #[test]
    fn deterministic_bitwise() {
        let a = predict(&input(700_000.0, 5)).expect("predicts");
        let b = predict(&input(700_000.0, 5)).expect("predicts");
        assert_eq!(a.p99_us.to_bits(), b.p99_us.to_bits());
        assert_eq!(a.p50_us.to_bits(), b.p50_us.to_bits());
        assert_eq!(a.effective_ghz.to_bits(), b.effective_ghz.to_bits());
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        let mut bad = input(0.0, 0);
        assert!(matches!(
            predict(&bad),
            Err(AnalyticError::Invalid { field: "arrival_rps", .. })
        ));
        bad = input(1_000.0, 0);
        bad.moments.mean_ns = f64::NAN;
        assert!(predict(&bad).is_err());
        bad = input(1_000.0, 0);
        bad.moments.cv2 = -1.0;
        assert!(predict(&bad).is_err());
        bad = input(1_000.0, 0);
        bad.duration_us = 0.0;
        assert!(predict(&bad).is_err());
    }

    #[test]
    fn predict_cell_wires_config_through() {
        let config = treadmill_core::LoadTestConfig::from_json(
            r#"{ "workload": { "workload": "memcached" }, "target_rps": 500000 }"#,
        )
        .expect("parses");
        let p = predict_cell(&config, HardwareConfig::from_index(3)).expect("predicts");
        assert!(p.p99_us > p.p50_us);
        assert!(p.stable);
    }

    #[test]
    fn service_quantiles_monotone_and_anchored() {
        let m = Memcached::default().service_moments();
        let s = ServiceQuantiles::new(&m, m.mean_ns);
        let p50 = s.quantile_ns(0.5);
        let p99 = s.quantile_ns(0.99);
        assert!(p50 < p99);
        // The median of the heavy-tailed mixture sits below the mean.
        assert!(p50 < m.mean_ns, "median {p50} vs mean {}", m.mean_ns);
        // p99 reflects the noise + slow path: several times the median.
        assert!(p99 > 2.0 * p50, "p99 {p99} p50 {p50}");
    }

    #[test]
    fn censoring_prediction_closed_form() {
        // 95us under a 20us schedule: 4 backfills (75, 55, 35, 15).
        let p = censoring_prediction(&[95.0], &[], 20.0).expect("valid");
        assert_eq!(p.corrected_count, 5);
        assert_eq!(p.reliable_below, 1.0);
        // Exact multiples: 6/2 = 3 → 2 backfills, not 3.
        let p = censoring_prediction(&[6.0], &[], 2.0).expect("valid");
        assert_eq!(p.corrected_count, 3);
        // Censored values backfill identically and set the bound.
        let p = censoring_prediction(&[10.0, 12.0, 11.0], &[5_000.0], 1_000.0)
            .expect("valid");
        assert_eq!(p.corrected_count, 8);
        assert!((p.reliable_below - 0.75).abs() < 1e-12);
        assert!(censoring_prediction(&[1.0], &[], 0.0).is_err());
    }
}
