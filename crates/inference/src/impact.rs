//! Average per-factor impact (Figures 8 & 10).
//!
//! Because the factors interact, the tail variance cannot simply be
//! decomposed per factor; the paper instead reports, for each factor,
//! the *average* latency change of turning it to high level "assuming
//! each of the other factors have equal probability of being low-level
//! and high-level" (§V-B).

use treadmill_cluster::HardwareConfig;

use crate::attribution::AttributionResult;
use crate::factors::factor_names;

/// One bar of Figure 8/10: the average latency change (µs) of raising
/// one factor to its high level.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorImpact {
    /// Factor name.
    pub factor: &'static str,
    /// Average latency change in µs (negative = improvement).
    pub average_impact_us: f64,
}

/// Computes each factor's average impact under the fitted model:
/// the mean over all 8 settings of the other factors of
/// `predict(factor=high) − predict(factor=low)`.
pub fn average_factor_impacts(result: &AttributionResult) -> Vec<FactorImpact> {
    factor_names()
        .iter()
        .enumerate()
        .map(|(fi, name)| {
            let mut total = 0.0;
            let mut count = 0;
            for cfg in HardwareConfig::all() {
                // Enumerate configurations where this factor is low;
                // flip it high and diff.
                let levels = cfg.levels();
                if levels[fi] != 0.0 {
                    continue;
                }
                let high_cfg = HardwareConfig::from_index(cfg.index() | (1 << fi));
                total += result.predict(&high_cfg) - result.predict(&cfg);
                count += 1;
            }
            FactorImpact {
                factor: name,
                average_impact_us: total / f64::from(count),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::attribute;
    use crate::dataset::Dataset;
    use treadmill_stats::regression::Cell;

    fn dataset_with(f: impl Fn(&[f64]) -> f64) -> Dataset {
        let cells = (0..16)
            .map(|i| {
                let lv = HardwareConfig::from_index(i).levels();
                let center = f(&lv);
                let runs = vec![
                    (0..50).map(|k| center + (k as f64 - 25.0) / 50.0).collect(),
                    (0..50).map(|k| center + (k as f64 - 25.0) / 60.0).collect(),
                ];
                Cell::new(lv, runs)
            })
            .collect();
        Dataset {
            cells,
            target_rps: 1.0,
            workload_name: "synthetic".into(),
        }
    }

    #[test]
    fn additive_effect_reported_exactly() {
        let dataset = dataset_with(|lv| 100.0 + 30.0 * lv[0] - 5.0 * lv[3]);
        let result = attribute(&dataset, 0.5, 10, 1);
        let impacts = average_factor_impacts(&result);
        assert_eq!(impacts.len(), 4);
        assert!((impacts[0].average_impact_us - 30.0).abs() < 1.0, "numa");
        assert!(impacts[1].average_impact_us.abs() < 1.0, "turbo null");
        assert!((impacts[3].average_impact_us + 5.0).abs() < 1.0, "nic");
    }

    #[test]
    fn interaction_averages_over_other_factors() {
        // Effect of numa is +40 only when dvfs is high: average = +20.
        let dataset = dataset_with(|lv| 100.0 + 40.0 * lv[0] * lv[2]);
        let result = attribute(&dataset, 0.5, 10, 2);
        let impacts = average_factor_impacts(&result);
        assert!(
            (impacts[0].average_impact_us - 20.0).abs() < 1.0,
            "numa averaged impact {}",
            impacts[0].average_impact_us
        );
        assert!(
            (impacts[2].average_impact_us - 20.0).abs() < 1.0,
            "dvfs averaged impact {}",
            impacts[2].average_impact_us
        );
    }

    #[test]
    fn each_average_uses_eight_pairs() {
        // Structural check: 16 configs → 8 low-configs per factor.
        let dataset = dataset_with(|_| 100.0);
        let result = attribute(&dataset, 0.5, 10, 3);
        let impacts = average_factor_impacts(&result);
        for impact in impacts {
            assert!(impact.average_impact_us.abs() < 1.0);
        }
    }
}
