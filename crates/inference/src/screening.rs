//! Factor screening (§IV-B): "we list all the factors we suspect to
//! have an impact … then we use null hypothesis testing on a large
//! number of samples collected from repeated experiments under random
//! permutations of all the factors, to identify the factors that
//! actually have an impact on the tail latency."
//!
//! The screening procedure is generic over how an experiment runs: it
//! draws random level assignments for every candidate factor, calls the
//! caller's experiment function, and tests each factor's marginal
//! effect with Welch's t-test on the per-run metric split by that
//! factor's level. Because all factors are randomised simultaneously,
//! the other factors act as noise — exactly the paper's setup.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treadmill_stats::compare::welch_t_test;

/// One candidate factor's screening verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningResult {
    /// Factor name.
    pub factor: String,
    /// Mean metric at the low level.
    pub mean_low: f64,
    /// Mean metric at the high level.
    pub mean_high: f64,
    /// Welch p-value of the level split.
    pub p_value: f64,
    /// True if significant at the chosen alpha.
    pub significant: bool,
}

/// Options for [`screen_factors`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreeningOptions {
    /// Number of randomized experiments to run.
    pub experiments: usize,
    /// Significance level.
    pub alpha: f64,
    /// RNG seed for the level permutations.
    pub seed: u64,
}

impl Default for ScreeningOptions {
    fn default() -> Self {
        ScreeningOptions {
            experiments: 64,
            alpha: 0.05,
            seed: 0,
        }
    }
}

/// Screens candidate factors: `run_experiment(levels, index)` executes
/// one experiment with the given boolean level per factor and returns
/// the metric of interest (e.g. that run's p99).
///
/// # Panics
///
/// Panics if there are no factors or fewer than 8 experiments.
pub fn screen_factors(
    factor_names: &[&str],
    options: ScreeningOptions,
    mut run_experiment: impl FnMut(&[bool], usize) -> f64,
) -> Vec<ScreeningResult> {
    assert!(!factor_names.is_empty(), "no factors to screen");
    assert!(options.experiments >= 8, "need at least 8 experiments");
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut assignments: Vec<Vec<bool>> = Vec::with_capacity(options.experiments);
    let mut metrics: Vec<f64> = Vec::with_capacity(options.experiments);
    for i in 0..options.experiments {
        let levels: Vec<bool> = factor_names.iter().map(|_| rng.gen()).collect();
        let metric = run_experiment(&levels, i);
        assignments.push(levels);
        metrics.push(metric);
    }
    factor_names
        .iter()
        .enumerate()
        .map(|(fi, name)| {
            let low: Vec<f64> = metrics
                .iter()
                .zip(&assignments)
                .filter(|(_, levels)| !levels[fi])
                .map(|(&m, _)| m)
                .collect();
            let high: Vec<f64> = metrics
                .iter()
                .zip(&assignments)
                .filter(|(_, levels)| levels[fi])
                .map(|(&m, _)| m)
                .collect();
            if low.len() < 2 || high.len() < 2 {
                // Degenerate randomisation; report as inconclusive.
                return ScreeningResult {
                    factor: name.to_string(),
                    mean_low: f64::NAN,
                    mean_high: f64::NAN,
                    p_value: 1.0,
                    significant: false,
                };
            }
            let cmp = welch_t_test(&low, &high);
            ScreeningResult {
                factor: name.to_string(),
                mean_low: cmp.mean_a,
                mean_high: cmp.mean_b,
                p_value: cmp.p_value,
                significant: cmp.p_value < options.alpha,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_real_factor_ignores_dummy() {
        // Factor 0 shifts the metric by 20; factor 1 does nothing.
        let mut noise_rng = SmallRng::seed_from_u64(42);
        let results = screen_factors(
            &["real", "dummy"],
            ScreeningOptions {
                experiments: 200,
                alpha: 0.01,
                seed: 0,
            },
            |levels, _| {
                let noise: f64 = noise_rng.gen_range(0.0..4.0);
                100.0 + if levels[0] { 20.0 } else { 0.0 } + noise
            },
        );
        assert!(results[0].significant, "real factor: p {}", results[0].p_value);
        assert!((results[0].mean_high - results[0].mean_low - 20.0).abs() < 2.0);
        assert!(!results[1].significant, "dummy factor: p {}", results[1].p_value);
    }

    #[test]
    fn interactions_do_not_hide_main_effects() {
        // Effect only when both factors are high: both should screen in
        // (each has a marginal effect of half the interaction).
        let results = screen_factors(
            &["a", "b"],
            ScreeningOptions {
                experiments: 400,
                ..Default::default()
            },
            |levels, i| {
                let noise = ((i * 40_503) % 50) as f64 / 20.0;
                50.0 + if levels[0] && levels[1] { 30.0 } else { 0.0 } + noise
            },
        );
        assert!(results[0].significant && results[1].significant);
    }

    #[test]
    fn screening_on_the_simulator_flags_numa() {
        use std::sync::Arc;
        use treadmill_cluster::HardwareConfig;
        use treadmill_core::LoadTest;
        use treadmill_sim_core::SimDuration;
        use treadmill_workloads::{Memcached, Workload};

        let workload: Arc<dyn Workload> = Arc::new(Memcached::default());
        let results = screen_factors(
            &["numa", "turbo", "dvfs", "nic"],
            ScreeningOptions {
                experiments: 24,
                alpha: 0.05,
                seed: 7,
            },
            |levels, i| {
                let index = levels
                    .iter()
                    .enumerate()
                    .fold(0usize, |acc, (b, &on)| acc | (usize::from(on) << b));
                LoadTest::new(Arc::clone(&workload), 750_000.0)
                    .clients(4)
                    .hardware(HardwareConfig::from_index(index))
                    .duration(SimDuration::from_millis(120))
                    .warmup(SimDuration::from_millis(30))
                    .seed(1_000 + i as u64)
                    .run(0)
                    .aggregated
                    .p99
            },
        );
        let numa = &results[0];
        assert!(
            numa.significant,
            "numa must screen in at high load: p {}",
            numa.p_value
        );
        assert!(numa.mean_high > numa.mean_low);
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn too_few_experiments_rejected() {
        screen_factors(&["a"], ScreeningOptions {
            experiments: 2,
            ..Default::default()
        }, |_, _| 0.0);
    }
}
