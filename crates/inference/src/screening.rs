//! Factor screening (§IV-B): "we list all the factors we suspect to
//! have an impact … then we use null hypothesis testing on a large
//! number of samples collected from repeated experiments under random
//! permutations of all the factors, to identify the factors that
//! actually have an impact on the tail latency."
//!
//! Two screening modes live here:
//!
//! * [`screen_factors`] — the paper's randomised-permutation screen: it
//!   draws random level assignments for every candidate factor, calls
//!   the caller's experiment function, and tests each factor's marginal
//!   effect with Welch's t-test on the per-run metric split by that
//!   factor's level. Because all factors are randomised simultaneously,
//!   the other factors act as noise — exactly the paper's setup.
//! * [`screen_cells`] / [`screen_hardware`] — the *analytic* screen for
//!   huge sweeps: instead of spending a DES run per sample, it asks the
//!   [`crate::analytic`] estimator for every cell of the 2^k factor
//!   space, ranks cells by predicted p99, and flags the cells whose
//!   predicted tail effect over the best cell exceeds a threshold.
//!   `core::sweep` then spends full DES runs only on the flagged cells.
//!   The screen-vs-DES agreement (rank correlation, bounded error,
//!   recall of significant cells) is pinned by `tests/analytic_oracle.rs`.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treadmill_stats::compare::welch_t_test;

use crate::analytic::{predict_cell, TailPrediction};
use treadmill_cluster::HardwareConfig;
use treadmill_core::LoadTestConfig;

/// Why a screening request was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum ScreenError {
    /// Screening needs at least two factors: with one factor there is
    /// nothing to permute against (and with zero, nothing to rank).
    TooFewFactors {
        /// How many factors were offered.
        count: usize,
    },
    /// Randomised screening needs enough experiments for the t-test.
    TooFewExperiments {
        /// How many experiments were requested.
        experiments: usize,
    },
    /// The factor space is too large to enumerate cell-by-cell.
    TooManyFactors {
        /// How many factors were offered.
        count: usize,
    },
    /// The analytic estimator failed on one cell.
    Prediction {
        /// Index of the failing cell in enumeration order.
        cell: usize,
        /// The estimator's error.
        message: String,
    },
}

impl fmt::Display for ScreenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScreenError::TooFewFactors { count } => {
                write!(f, "screening needs at least 2 factors, got {count}")
            }
            ScreenError::TooFewExperiments { experiments } => {
                write!(f, "screening needs at least 8 experiments, got {experiments}")
            }
            ScreenError::TooManyFactors { count } => {
                write!(f, "cell screening supports at most 16 factors, got {count}")
            }
            ScreenError::Prediction { cell, message } => {
                write!(f, "analytic prediction failed for cell {cell}: {message}")
            }
        }
    }
}

impl std::error::Error for ScreenError {}

/// One candidate factor's screening verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningResult {
    /// Factor name.
    pub factor: String,
    /// Mean metric at the low level.
    pub mean_low: f64,
    /// Mean metric at the high level.
    pub mean_high: f64,
    /// Welch p-value of the level split.
    pub p_value: f64,
    /// True if significant at the chosen alpha.
    pub significant: bool,
}

/// Options for [`screen_factors`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreeningOptions {
    /// Number of randomized experiments to run.
    pub experiments: usize,
    /// Significance level.
    pub alpha: f64,
    /// RNG seed for the level permutations.
    pub seed: u64,
}

impl Default for ScreeningOptions {
    fn default() -> Self {
        ScreeningOptions {
            experiments: 64,
            alpha: 0.05,
            seed: 0,
        }
    }
}

/// Screens candidate factors: `run_experiment(levels, index)` executes
/// one experiment with the given boolean level per factor and returns
/// the metric of interest (e.g. that run's p99).
///
/// # Errors
///
/// Returns [`ScreenError::TooFewFactors`] for fewer than two factors
/// (an empty or single-factor "screen" has nothing to permute) and
/// [`ScreenError::TooFewExperiments`] for fewer than 8 experiments.
pub fn screen_factors(
    factor_names: &[&str],
    options: ScreeningOptions,
    mut run_experiment: impl FnMut(&[bool], usize) -> f64,
) -> Result<Vec<ScreeningResult>, ScreenError> {
    if factor_names.len() < 2 {
        return Err(ScreenError::TooFewFactors {
            count: factor_names.len(),
        });
    }
    if options.experiments < 8 {
        return Err(ScreenError::TooFewExperiments {
            experiments: options.experiments,
        });
    }
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut assignments: Vec<Vec<bool>> = Vec::with_capacity(options.experiments);
    let mut metrics: Vec<f64> = Vec::with_capacity(options.experiments);
    for i in 0..options.experiments {
        let levels: Vec<bool> = factor_names.iter().map(|_| rng.gen()).collect();
        let metric = run_experiment(&levels, i);
        assignments.push(levels);
        metrics.push(metric);
    }
    Ok(factor_names
        .iter()
        .enumerate()
        .map(|(fi, name)| {
            let low: Vec<f64> = metrics
                .iter()
                .zip(&assignments)
                .filter(|(_, levels)| !levels[fi])
                .map(|(&m, _)| m)
                .collect();
            let high: Vec<f64> = metrics
                .iter()
                .zip(&assignments)
                .filter(|(_, levels)| levels[fi])
                .map(|(&m, _)| m)
                .collect();
            if low.len() < 2 || high.len() < 2 {
                // Degenerate randomisation; report as inconclusive.
                return ScreeningResult {
                    factor: name.to_string(),
                    mean_low: f64::NAN,
                    mean_high: f64::NAN,
                    p_value: 1.0,
                    significant: false,
                };
            }
            let cmp = welch_t_test(&low, &high);
            ScreeningResult {
                factor: name.to_string(),
                mean_low: cmp.mean_a,
                mean_high: cmp.mean_b,
                p_value: cmp.p_value,
                significant: cmp.p_value < options.alpha,
            }
        })
        .collect())
}

/// The analytic prediction for one cell of the factor space.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPrediction {
    /// Cell index: bit `b` of the index is factor `b`'s level.
    pub index: usize,
    /// Factor levels, in `factor_names` order.
    pub levels: Vec<bool>,
    /// Predicted median latency, µs.
    pub p50_us: f64,
    /// Predicted 95th-percentile latency, µs.
    pub p95_us: f64,
    /// Predicted 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Predicted per-core utilisation.
    pub utilization: f64,
    /// Whether the analytic model considers the cell stable.
    pub stable: bool,
    /// Relative predicted p99 excess over the best cell,
    /// `(p99 − min_p99)/min_p99`.
    pub tail_effect: f64,
    /// True when `tail_effect` reaches the screen threshold (a
    /// threshold of 0 flags every cell).
    pub flagged: bool,
}

/// A marginal factor effect computed from the analytic cell grid.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorEffect {
    /// Factor name.
    pub factor: String,
    /// Mean predicted p99 over cells with the factor low, µs.
    pub mean_low_p99_us: f64,
    /// Mean predicted p99 over cells with the factor high, µs.
    pub mean_high_p99_us: f64,
}

/// The output of the analytic screen over a 2^k factor space.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenPlan {
    /// Every cell's prediction, in index order.
    pub cells: Vec<CellPrediction>,
    /// Cell indices sorted by predicted p99, worst first (ties broken
    /// by index for determinism).
    pub ranking: Vec<usize>,
    /// Indices of flagged cells, in index order — the cells the DES
    /// stage should simulate.
    pub flagged: Vec<usize>,
    /// The best (smallest) predicted p99 across the space, µs.
    pub baseline_p99_us: f64,
    /// The relative tail-effect threshold the screen applied.
    pub threshold: f64,
    /// Marginal per-factor effects of the predicted p99 grid.
    pub factor_effects: Vec<FactorEffect>,
}

impl ScreenPlan {
    /// Convenience: the flagged cells' predictions, in index order.
    pub fn flagged_cells(&self) -> impl Iterator<Item = &CellPrediction> {
        self.cells.iter().filter(|c| c.flagged)
    }

    /// Converts a hardware-space plan into the contract `core::sweep`'s
    /// screened orchestration consumes ([`run_screened_sweep`] /
    /// `run_factorial_sweep_controlled`).
    ///
    /// [`run_screened_sweep`]: treadmill_core::run_screened_sweep
    pub fn to_sweep_plan(&self) -> treadmill_core::ScreenedSweepPlan {
        treadmill_core::ScreenedSweepPlan {
            threshold: self.threshold,
            cells: self
                .cells
                .iter()
                .map(|c| treadmill_core::ScreenedCell {
                    index: c.index,
                    p50_us: c.p50_us,
                    p95_us: c.p95_us,
                    p99_us: c.p99_us,
                    utilization: c.utilization,
                    tail_effect: c.tail_effect,
                    flagged: c.flagged,
                })
                .collect(),
        }
    }
}

/// Runs the analytic screen over all `2^k` cells of a factor space.
/// `predict(levels, index)` maps a cell to its [`TailPrediction`]; a
/// cell whose predicted p99 exceeds the best cell's by at least
/// `threshold` (relative) is flagged for DES simulation.
///
/// # Errors
///
/// Returns [`ScreenError::TooFewFactors`] / [`ScreenError::TooManyFactors`]
/// for degenerate spaces and [`ScreenError::Prediction`] when the
/// estimator fails on a cell.
pub fn screen_cells<E: fmt::Display>(
    factor_names: &[&str],
    threshold: f64,
    mut predict: impl FnMut(&[bool], usize) -> Result<TailPrediction, E>,
) -> Result<ScreenPlan, ScreenError> {
    if factor_names.len() < 2 {
        return Err(ScreenError::TooFewFactors {
            count: factor_names.len(),
        });
    }
    if factor_names.len() > 16 {
        return Err(ScreenError::TooManyFactors {
            count: factor_names.len(),
        });
    }
    let threshold = threshold.max(0.0);
    let cell_count = 1usize << factor_names.len();
    let mut predictions: Vec<(Vec<bool>, TailPrediction)> = Vec::with_capacity(cell_count);
    for index in 0..cell_count {
        let levels: Vec<bool> = (0..factor_names.len())
            .map(|b| index & (1 << b) != 0)
            .collect();
        let p = predict(&levels, index).map_err(|e| ScreenError::Prediction {
            cell: index,
            message: e.to_string(),
        })?;
        predictions.push((levels, p));
    }
    let baseline_p99_us = predictions
        .iter()
        .map(|(_, p)| p.p99_us)
        .fold(f64::INFINITY, f64::min);
    let cells: Vec<CellPrediction> = predictions
        .into_iter()
        .enumerate()
        .map(|(index, (levels, p))| {
            let tail_effect = if baseline_p99_us > 0.0 {
                (p.p99_us - baseline_p99_us) / baseline_p99_us
            } else {
                0.0
            };
            CellPrediction {
                index,
                levels,
                p50_us: p.p50_us,
                p95_us: p.p95_us,
                p99_us: p.p99_us,
                utilization: p.utilization,
                stable: p.stable,
                tail_effect,
                flagged: tail_effect >= threshold,
            }
        })
        .collect();
    let mut ranking: Vec<usize> = (0..cell_count).collect();
    ranking.sort_by(|&a, &b| {
        cells[b]
            .p99_us
            .total_cmp(&cells[a].p99_us)
            .then(a.cmp(&b))
    });
    let flagged: Vec<usize> = cells.iter().filter(|c| c.flagged).map(|c| c.index).collect();
    let factor_effects = factor_names
        .iter()
        .enumerate()
        .map(|(fi, name)| {
            let mean = |want_high: bool| {
                let picked: Vec<f64> = cells
                    .iter()
                    .filter(|c| c.levels[fi] == want_high)
                    .map(|c| c.p99_us)
                    .collect();
                picked.iter().sum::<f64>() / picked.len().max(1) as f64
            };
            FactorEffect {
                factor: name.to_string(),
                mean_low_p99_us: mean(false),
                mean_high_p99_us: mean(true),
            }
        })
        .collect();
    Ok(ScreenPlan {
        cells,
        ranking,
        flagged,
        baseline_p99_us,
        threshold,
        factor_effects,
    })
}

/// The analytic screen over the paper's 2⁴ hardware factor space for
/// one [`LoadTestConfig`]: every [`HardwareConfig`] cell is predicted
/// with [`predict_cell`], and flagged cells are the ones `core::sweep`
/// should spend DES runs on.
///
/// # Errors
///
/// Returns [`ScreenError::Prediction`] when the config does not
/// validate or the estimator fails.
pub fn screen_hardware(
    config: &LoadTestConfig,
    threshold: f64,
) -> Result<ScreenPlan, ScreenError> {
    screen_cells(&HardwareConfig::factor_names(), threshold, |_, index| {
        predict_cell(config, HardwareConfig::from_index(index))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_real_factor_ignores_dummy() {
        // Factor 0 shifts the metric by 20; factor 1 does nothing.
        let mut noise_rng = SmallRng::seed_from_u64(42);
        let results = screen_factors(
            &["real", "dummy"],
            ScreeningOptions {
                experiments: 200,
                alpha: 0.01,
                seed: 0,
            },
            |levels, _| {
                let noise: f64 = noise_rng.gen_range(0.0..4.0);
                100.0 + if levels[0] { 20.0 } else { 0.0 } + noise
            },
        )
        .expect("screen runs");
        assert!(results[0].significant, "real factor: p {}", results[0].p_value);
        assert!((results[0].mean_high - results[0].mean_low - 20.0).abs() < 2.0);
        assert!(!results[1].significant, "dummy factor: p {}", results[1].p_value);
    }

    #[test]
    fn interactions_do_not_hide_main_effects() {
        // Effect only when both factors are high: both should screen in
        // (each has a marginal effect of half the interaction).
        let results = screen_factors(
            &["a", "b"],
            ScreeningOptions {
                experiments: 400,
                ..Default::default()
            },
            |levels, i| {
                let noise = ((i * 40_503) % 50) as f64 / 20.0;
                50.0 + if levels[0] && levels[1] { 30.0 } else { 0.0 } + noise
            },
        )
        .expect("screen runs");
        assert!(results[0].significant && results[1].significant);
    }

    #[test]
    fn screening_on_the_simulator_flags_numa() {
        use std::sync::Arc;
        use treadmill_core::LoadTest;
        use treadmill_sim_core::SimDuration;
        use treadmill_workloads::{Memcached, Workload};

        let workload: Arc<dyn Workload> = Arc::new(Memcached::default());
        let results = screen_factors(
            &["numa", "turbo", "dvfs", "nic"],
            ScreeningOptions {
                experiments: 24,
                alpha: 0.05,
                seed: 7,
            },
            |levels, i| {
                let index = levels
                    .iter()
                    .enumerate()
                    .fold(0usize, |acc, (b, &on)| acc | (usize::from(on) << b));
                LoadTest::new(Arc::clone(&workload), 750_000.0)
                    .clients(4)
                    .hardware(HardwareConfig::from_index(index))
                    .duration(SimDuration::from_millis(120))
                    .warmup(SimDuration::from_millis(30))
                    .seed(1_000 + i as u64)
                    .run(0)
                    .aggregated
                    .p99
            },
        )
        .expect("screen runs");
        let numa = &results[0];
        assert!(
            numa.significant,
            "numa must screen in at high load: p {}",
            numa.p_value
        );
        assert!(numa.mean_high > numa.mean_low);
    }

    #[test]
    fn zero_and_single_factor_sets_are_typed_errors() {
        let err = screen_factors(&[], ScreeningOptions::default(), |_, _| 0.0)
            .expect_err("empty factor set must be rejected");
        assert_eq!(err, ScreenError::TooFewFactors { count: 0 });
        let err = screen_factors(&["only"], ScreeningOptions::default(), |_, _| 0.0)
            .expect_err("single factor must be rejected");
        assert_eq!(err, ScreenError::TooFewFactors { count: 1 });
        // Same contract for the analytic cell screen.
        let err = screen_cells::<std::convert::Infallible>(&["only"], 0.0, |_, _| {
            unreachable!("predict must not be called")
        })
        .expect_err("single factor must be rejected");
        assert_eq!(err, ScreenError::TooFewFactors { count: 1 });
    }

    #[test]
    fn too_few_experiments_rejected() {
        let err = screen_factors(
            &["a", "b"],
            ScreeningOptions {
                experiments: 2,
                ..Default::default()
            },
            |_, _| 0.0,
        )
        .expect_err("2 experiments must be rejected");
        assert_eq!(err, ScreenError::TooFewExperiments { experiments: 2 });
    }

    #[test]
    fn screen_cells_ranks_and_flags() {
        use crate::analytic::TailPrediction;
        let fake = |p99: f64| TailPrediction {
            p50_us: p99 / 3.0,
            p95_us: p99 / 1.5,
            p99_us: p99,
            utilization: 0.5,
            effective_ghz: 2.2,
            mean_wait_us: 1.0,
            drop_fraction: 0.0,
            reliable_below: 1.0,
            stable: true,
        };
        // p99 = 100 + 50·a + 10·b: cell 3 worst, cell 0 best.
        let plan = screen_cells::<std::convert::Infallible>(&["a", "b"], 0.25, |levels, _| {
            let p99 = 100.0
                + if levels[0] { 50.0 } else { 0.0 }
                + if levels[1] { 10.0 } else { 0.0 };
            Ok(fake(p99))
        })
        .expect("screen runs");
        assert_eq!(plan.ranking, vec![3, 1, 2, 0]);
        assert_eq!(plan.baseline_p99_us, 100.0);
        // Effects ≥ 25%: cells 1 (50%) and 3 (60%); cell 2 is 10%.
        assert_eq!(plan.flagged, vec![1, 3]);
        assert!(plan.cells[2].tail_effect > 0.09 && !plan.cells[2].flagged);
        // Factor a's marginal effect dwarfs b's.
        let a = &plan.factor_effects[0];
        let b = &plan.factor_effects[1];
        assert!(
            (a.mean_high_p99_us - a.mean_low_p99_us)
                > 4.0 * (b.mean_high_p99_us - b.mean_low_p99_us)
        );
    }

    #[test]
    fn threshold_zero_flags_every_cell() {
        let plan = screen_hardware(
            &treadmill_core::LoadTestConfig::from_json(
                r#"{ "workload": { "workload": "memcached" }, "target_rps": 700000 }"#,
            )
            .expect("parses"),
            0.0,
        )
        .expect("screen runs");
        assert_eq!(plan.cells.len(), 16);
        assert_eq!(plan.flagged.len(), 16, "threshold 0 must flag everything");
        assert_eq!(plan.ranking.len(), 16);
        // Determinism: a second run is identical.
        let again = screen_hardware(
            &treadmill_core::LoadTestConfig::from_json(
                r#"{ "workload": { "workload": "memcached" }, "target_rps": 700000 }"#,
            )
            .expect("parses"),
            0.0,
        )
        .expect("screen runs");
        assert_eq!(plan, again);
    }

    #[test]
    fn screen_hardware_orders_known_factors() {
        // At 750k rps the analytic screen must agree with the DES
        // screening test above: numa High raises the predicted tail.
        let config = treadmill_core::LoadTestConfig::from_json(
            r#"{ "workload": { "workload": "memcached" }, "target_rps": 750000 }"#,
        )
        .expect("parses");
        let plan = screen_hardware(&config, 0.05).expect("screen runs");
        let numa = &plan.factor_effects[0];
        assert!(
            numa.mean_high_p99_us > numa.mean_low_p99_us,
            "numa high {} must exceed low {}",
            numa.mean_high_p99_us,
            numa.mean_low_p99_us
        );
        // The screen keeps the worst cell and drops at least one cell.
        assert!(plan.flagged.contains(&plan.ranking[0]));
        assert!(plan.flagged.len() < 16, "a 5% threshold should drop some cells");
    }
}
