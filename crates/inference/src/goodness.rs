//! Goodness-of-fit: the paper's pseudo-R² sweep (Figure 11, Eq. 2).

use crate::attribution::AttributionResult;
use crate::dataset::Dataset;
use treadmill_stats::regression::fit::pseudo_r_squared;

/// Pseudo-R² of a fitted attribution model over its dataset (Eq. 2).
///
/// Following the paper's Eq. 3, each **experiment** contributes one
/// observation: its empirically measured τ-quantile. The model predicts
/// the configuration's τ-quantile; the best constant model predicts the
/// unconditional τ-quantile of the per-experiment estimates. The
/// residuals are therefore hysteresis (between-run) variation, and a
/// high pseudo-R² means the factor model explains most of the observed
/// spread in measured quantiles — the paper reports ≥ 0.90.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn model_pseudo_r_squared(dataset: &Dataset, result: &AttributionResult) -> f64 {
    let mut observed = Vec::new();
    let mut predicted = Vec::new();
    let predictions: Vec<f64> = result.predictions_all_configs();
    for cell in &dataset.cells {
        let idx = config_index_of_levels(&cell.levels);
        for run_quantile in
            treadmill_stats::regression::saturated::per_run_quantiles(cell, result.tau)
        {
            observed.push(run_quantile);
            predicted.push(predictions[idx]);
        }
    }
    assert!(!observed.is_empty(), "empty dataset");
    pseudo_r_squared(result.tau, &observed, &predicted)
}

/// One point of Figure 11.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodnessPoint {
    /// Load label (e.g. "low", "high").
    pub load: String,
    /// Percentile.
    pub tau: f64,
    /// The pseudo-R² value.
    pub pseudo_r_squared: f64,
}

/// Evaluates pseudo-R² for a set of fitted models over their dataset,
/// labelled by load level.
pub fn goodness_sweep(
    load_label: &str,
    dataset: &Dataset,
    results: &[AttributionResult],
) -> Vec<GoodnessPoint> {
    results
        .iter()
        .map(|result| GoodnessPoint {
            load: load_label.to_string(),
            tau: result.tau,
            pseudo_r_squared: model_pseudo_r_squared(dataset, result),
        })
        .collect()
}

/// Sanity helper used by tests and the Figure 11 binary: the index a
/// level vector denotes.
// Design levels are exactly 0.0 or 1.0, so `v as usize` is a bit read.
#[allow(clippy::cast_possible_truncation)]
pub fn config_index_of_levels(levels: &[f64]) -> usize {
    levels
        .iter()
        .enumerate()
        .fold(0usize, |acc, (i, &v)| acc | ((v as usize) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::attribute;
    use treadmill_cluster::HardwareConfig;
    use treadmill_stats::regression::Cell;

    fn dataset_with_effect(effect: f64, noise: f64, runs_per_cell: usize) -> Dataset {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let cells = (0..16)
            .map(|i| {
                let lv = HardwareConfig::from_index(i).levels();
                let center = 100.0 + effect * lv[0] + 0.5 * effect * lv[1] * lv[2];
                let runs: Vec<Vec<f64>> = (0..runs_per_cell)
                    .map(|_| {
                        (0..100)
                            .map(|_| center + rng.gen_range(-noise..=noise))
                            .collect()
                    })
                    .collect();
                Cell::new(lv, runs)
            })
            .collect();
        Dataset {
            cells,
            target_rps: 1.0,
            workload_name: "synthetic".into(),
        }
    }

    #[test]
    fn strong_structure_gives_high_r2() {
        let dataset = dataset_with_effect(50.0, 1.0, 4);
        let result = attribute(&dataset, 0.95, 10, 1);
        let r2 = model_pseudo_r_squared(&dataset, &result);
        assert!(r2 > 0.9, "r2 = {r2}");
    }

    #[test]
    fn pure_noise_gives_near_zero_r2() {
        // A saturated model fitted on noise overfits by ~p/n, so with
        // 30 runs per cell (n = 480 observations, p = 16) the in-sample
        // pseudo-R² must stay small.
        let dataset = dataset_with_effect(0.0, 10.0, 30);
        let result = attribute(&dataset, 0.95, 10, 2);
        let r2 = model_pseudo_r_squared(&dataset, &result);
        assert!(r2.abs() < 0.15, "r2 = {r2}");
    }

    #[test]
    fn sweep_produces_labelled_points() {
        let dataset = dataset_with_effect(30.0, 2.0, 4);
        let results = vec![
            attribute(&dataset, 0.5, 10, 3),
            attribute(&dataset, 0.99, 10, 3),
        ];
        let points = goodness_sweep("high", &dataset, &results);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.load == "high"));
        assert!(points.iter().all(|p| p.pseudo_r_squared > 0.5));
    }

    #[test]
    fn level_index_round_trips() {
        for i in 0..16 {
            let levels = HardwareConfig::from_index(i).levels();
            assert_eq!(config_index_of_levels(&levels), i);
        }
    }
}
