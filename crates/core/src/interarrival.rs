//! Inter-arrival time generation.
//!
//! Treadmill's control loop "is precisely timed to generate requests at
//! an exponentially distributed inter-arrival rate, which is consistent
//! with the measurements obtained from Google production clusters"
//! (§III-A). Alternative processes are provided for sensitivity studies
//! (deterministic pacing underestimates queueing; uniform sits between).

use rand::RngCore;
use serde::{Deserialize, Serialize};
use treadmill_sim_core::SimDuration;
use treadmill_stats::distribution::sample_exponential;

/// An inter-arrival process at a given mean rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "process", rename_all = "lowercase")]
pub enum InterArrival {
    /// Poisson arrivals: exponential gaps (the paper's choice).
    Exponential {
        /// Mean requests per second.
        rate_rps: f64,
    },
    /// Perfectly paced arrivals: constant gaps.
    Deterministic {
        /// Requests per second.
        rate_rps: f64,
    },
    /// Uniform gaps on `[0, 2/rate]` (same mean, lower variance than
    /// exponential).
    Uniform {
        /// Mean requests per second.
        rate_rps: f64,
    },
}

impl InterArrival {
    /// The process's mean rate in requests per second.
    pub fn rate_rps(&self) -> f64 {
        match *self {
            InterArrival::Exponential { rate_rps }
            | InterArrival::Deterministic { rate_rps }
            | InterArrival::Uniform { rate_rps } => rate_rps,
        }
    }

    /// Draws the gap to the next request. Always at least 1 ns.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive.
    pub fn sample_gap(&self, rng: &mut dyn RngCore) -> SimDuration {
        let rate = self.rate_rps();
        assert!(rate > 0.0, "inter-arrival rate must be positive");
        let mean_ns = 1e9 / rate;
        let gap_ns = match self {
            InterArrival::Exponential { .. } => sample_exponential(rng, mean_ns),
            InterArrival::Deterministic { .. } => mean_ns,
            InterArrival::Uniform { .. } => {
                use rand::Rng;
                rng.gen_range(0.0..2.0 * mean_ns)
            }
        };
        SimDuration::from_nanos_f64(gap_ns.max(1.0))
    }

    /// Scales the process to a fraction of its rate — used to split a
    /// target throughput across multiple Treadmill instances (§III-B:
    /// "each instance sends a fraction of the desired throughput").
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn fraction(&self, fraction: f64) -> InterArrival {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction {fraction} outside (0, 1]"
        );
        let scaled = self.rate_rps() * fraction;
        match self {
            InterArrival::Exponential { .. } => InterArrival::Exponential { rate_rps: scaled },
            InterArrival::Deterministic { .. } => {
                InterArrival::Deterministic { rate_rps: scaled }
            }
            InterArrival::Uniform { .. } => InterArrival::Uniform { rate_rps: scaled },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treadmill_stats::StreamingStats;

    fn gaps(process: InterArrival, n: usize) -> StreamingStats {
        let mut rng = SmallRng::seed_from_u64(1);
        (0..n)
            .map(|_| process.sample_gap(&mut rng).as_micros_f64())
            .collect()
    }

    #[test]
    fn exponential_mean_and_cv() {
        let stats = gaps(InterArrival::Exponential { rate_rps: 100_000.0 }, 100_000);
        // Mean gap = 10us; exponential CV = 1.
        assert!((stats.mean() - 10.0).abs() < 0.15, "mean {}", stats.mean());
        let cv = stats.sample_stddev() / stats.mean();
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn deterministic_has_zero_variance() {
        let stats = gaps(InterArrival::Deterministic { rate_rps: 100_000.0 }, 1_000);
        assert!((stats.mean() - 10.0).abs() < 1e-9);
        assert!(stats.sample_stddev() < 1e-9);
    }

    #[test]
    fn uniform_mean_matches_with_lower_cv() {
        let stats = gaps(InterArrival::Uniform { rate_rps: 100_000.0 }, 100_000);
        assert!((stats.mean() - 10.0).abs() < 0.15);
        let cv = stats.sample_stddev() / stats.mean();
        assert!(cv < 0.7, "uniform cv {cv} should be < exponential's 1.0");
    }

    #[test]
    fn fraction_scales_rate() {
        let full = InterArrival::Exponential { rate_rps: 800_000.0 };
        let eighth = full.fraction(1.0 / 8.0);
        assert!((eighth.rate_rps() - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn gap_never_zero() {
        let mut rng = SmallRng::seed_from_u64(2);
        let process = InterArrival::Exponential { rate_rps: 1e9 };
        for _ in 0..10_000 {
            assert!(process.sample_gap(&mut rng).as_nanos() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_fraction_rejected() {
        InterArrival::Exponential { rate_rps: 1.0 }.fraction(0.0);
    }

    #[test]
    fn json_round_trip() {
        let p = InterArrival::Exponential { rate_rps: 12_345.0 };
        let json = serde_json::to_string(&p).unwrap();
        let back: InterArrival = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
