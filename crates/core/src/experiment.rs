//! The repeated-run measurement procedure (§III-B).
//!
//! One run — however many samples it collects — converges to a
//! run-specific value because of performance hysteresis (§II-D). The
//! procedure therefore repeats the whole experiment (server restart,
//! fresh placement state) and aggregates the per-run metrics until
//! their mean converges.

use treadmill_stats::LatencySummary;

use crate::convergence::ConvergenceTracker;
use crate::runner::{LoadTest, LoadTestReport};

/// Controls the repeated-run procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOptions {
    /// Runs to perform before convergence may be declared.
    pub min_runs: usize,
    /// Hard cap on runs.
    pub max_runs: usize,
    /// Relative CI half-width below which the mean is converged.
    pub relative_tolerance: f64,
    /// Confidence level of the CI.
    pub confidence: f64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            min_runs: 5,
            max_runs: 30,
            relative_tolerance: 0.05,
            confidence: 0.95,
        }
    }
}

/// The outcome of a repeated-run experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Each run's aggregated summary, in run order.
    pub runs: Vec<LatencySummary>,
    /// Mean of per-run p99s — the experiment's headline estimate.
    pub mean_p99: f64,
    /// Standard deviation of per-run p99s (the hysteresis spread).
    pub stddev_p99: f64,
    /// Mean of per-run p50s.
    pub mean_p50: f64,
    /// True if the tracker converged before hitting `max_runs`.
    pub converged: bool,
}

impl ExperimentOutcome {
    /// Number of runs performed.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Mean of an arbitrary reported percentile across runs.
    pub fn mean_percentile(&self, p: f64) -> f64 {
        self.runs.iter().map(|s| s.percentile(p)).sum::<f64>() / self.runs.len() as f64
    }
}

/// Runs a [`LoadTest`] repeatedly until its per-run p99 mean converges.
///
/// `base_run_index` offsets the run indices so different experiments on
/// the same `LoadTest` draw disjoint hysteresis states.
pub fn run_until_converged(
    test: &LoadTest,
    options: ExperimentOptions,
    base_run_index: u64,
) -> ExperimentOutcome {
    run_until_converged_with(options, |i| test.run(base_run_index + i).aggregated)
}

/// The generic engine behind [`run_until_converged`]: the closure maps
/// a run index to that run's aggregated summary, so tests and baseline
/// testers can reuse the procedure.
pub fn run_until_converged_with(
    options: ExperimentOptions,
    mut run: impl FnMut(u64) -> LatencySummary,
) -> ExperimentOutcome {
    assert!(options.min_runs >= 2, "need at least two runs");
    assert!(options.max_runs >= options.min_runs, "max below min");
    let mut tracker = ConvergenceTracker::new(
        options.min_runs,
        options.relative_tolerance,
        options.confidence,
    );
    let mut p50s = Vec::new();
    let mut runs = Vec::new();
    let mut converged = false;
    for i in 0..options.max_runs as u64 {
        let summary = run(i);
        tracker.record(summary.p99);
        p50s.push(summary.p50);
        runs.push(summary);
        if tracker.converged() {
            converged = true;
            break;
        }
    }
    ExperimentOutcome {
        mean_p99: tracker.mean(),
        stddev_p99: tracker.stddev(),
        mean_p50: p50s.iter().sum::<f64>() / p50s.len() as f64,
        runs,
        converged,
    }
}

/// Convenience: a single run's report plus its index, for callers that
/// need raw records alongside the procedure (e.g. Figure 4's
/// convergence traces).
pub fn single_run(test: &LoadTest, run_index: u64) -> LoadTestReport {
    test.run(run_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_summary(p50: f64, p99: f64) -> LatencySummary {
        LatencySummary {
            count: 100,
            mean: p50,
            p50,
            p90: p50,
            p95: p50,
            p99,
            p999: p99,
            min: p50,
            max: p99,
        }
    }

    #[test]
    fn converges_on_stable_metric() {
        let outcome = run_until_converged_with(ExperimentOptions::default(), |i| {
            fake_summary(50.0, 100.0 + (i % 2) as f64)
        });
        assert!(outcome.converged);
        assert!(outcome.num_runs() >= 5);
        assert!((outcome.mean_p99 - 100.5).abs() < 1.0);
        assert!((outcome.mean_p50 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn hits_max_runs_on_wild_metric() {
        let options = ExperimentOptions {
            min_runs: 3,
            max_runs: 6,
            relative_tolerance: 0.001,
            confidence: 0.95,
        };
        let outcome = run_until_converged_with(options, |i| {
            fake_summary(50.0, if i % 2 == 0 { 100.0 } else { 300.0 })
        });
        assert!(!outcome.converged);
        assert_eq!(outcome.num_runs(), 6);
        assert!(outcome.stddev_p99 > 50.0);
    }

    #[test]
    fn mean_percentile_lookup() {
        let outcome = run_until_converged_with(ExperimentOptions::default(), |_| {
            fake_summary(10.0, 20.0)
        });
        assert!((outcome.mean_percentile(0.99) - 20.0).abs() < 1e-9);
        assert!((outcome.mean_percentile(0.50) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "max below min")]
    fn invalid_options_rejected() {
        let options = ExperimentOptions {
            min_runs: 5,
            max_runs: 2,
            ..Default::default()
        };
        run_until_converged_with(options, |_| fake_summary(1.0, 2.0));
    }
}
