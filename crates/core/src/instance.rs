//! A Treadmill instance: per-client online latency aggregation.

use treadmill_cluster::ResponseRecord;
use treadmill_sim_core::{SimDuration, SimTime};
use treadmill_stats::{AdaptiveHistogram, HistogramConfig, LatencySummary};

use crate::phases::{current_phase, Phase, PhaseConfig};

/// Configuration for a [`TreadmillInstance`].
#[derive(Debug, Clone)]
pub struct InstanceConfig {
    /// Phase (warm-up) configuration.
    pub phases: PhaseConfig,
    /// Histogram configuration.
    pub histogram: HistogramConfig,
    /// Record one of every `sample_one_in` measurement-phase responses
    /// (§II-B: "due to high request rates, sampling must be used to
    /// control the measurement overhead"). `1` records everything.
    pub sample_one_in: u64,
}

impl Default for InstanceConfig {
    fn default() -> Self {
        InstanceConfig {
            phases: PhaseConfig::default(),
            histogram: HistogramConfig::default(),
            sample_one_in: 1,
        }
    }
}

/// One Treadmill instance's measurement pipeline: discards warm-up
/// samples, calibrates an adaptive histogram, then aggregates latency
/// online, and finally reports per-instance metrics for cross-instance
/// aggregation (§III-B).
///
/// # Examples
///
/// ```
/// use treadmill_core::{InstanceConfig, TreadmillInstance};
///
/// let instance = TreadmillInstance::new(InstanceConfig::default());
/// assert_eq!(instance.samples(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct TreadmillInstance {
    config: InstanceConfig,
    histogram: AdaptiveHistogram,
    discarded: u64,
    skipped: u64,
    seen: u64,
    last_observed: SimTime,
}

impl TreadmillInstance {
    /// Creates an empty instance.
    pub fn new(config: InstanceConfig) -> Self {
        assert!(config.sample_one_in >= 1, "sampling stride must be >= 1");
        TreadmillInstance {
            histogram: AdaptiveHistogram::with_config(config.histogram.clone()),
            config,
            discarded: 0,
            skipped: 0,
            seen: 0,
            last_observed: SimTime::ZERO,
        }
    }

    /// Observes one completed request. Samples generated during warm-up
    /// are discarded; the rest feed the adaptive histogram.
    pub fn observe(&mut self, record: &ResponseRecord) {
        self.last_observed = self.last_observed.max(record.t_delivered);
        if record.t_generated < SimTime::ZERO + self.config.phases.warmup {
            self.discarded += 1;
            return;
        }
        self.seen += 1;
        if self.config.sample_one_in > 1 && !self.seen.is_multiple_of(self.config.sample_one_in) {
            self.skipped += 1;
            return;
        }
        self.histogram.record(record.user_latency_us());
    }

    /// Observes a batch of records.
    pub fn observe_all<'a>(&mut self, records: impl IntoIterator<Item = &'a ResponseRecord>) {
        for record in records {
            self.observe(record);
        }
    }

    /// The phase the instance is currently in.
    pub fn phase(&self) -> Phase {
        current_phase(
            self.last_observed,
            SimTime::ZERO + self.config.phases.warmup,
            &self.histogram,
        )
    }

    /// Measurement samples aggregated so far (excluding warm-up).
    pub fn samples(&self) -> u64 {
        self.histogram.count()
    }

    /// Warm-up samples discarded.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Measurement-phase responses skipped by the sampling stride.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The configured warm-up window.
    pub fn warmup(&self) -> SimDuration {
        self.config.phases.warmup
    }

    /// The underlying histogram (e.g. for CDF plots).
    pub fn histogram(&self) -> &AdaptiveHistogram {
        &self.histogram
    }

    /// This instance's latency summary — the per-client metrics that
    /// the multi-instance procedure aggregates.
    ///
    /// # Panics
    ///
    /// Panics if no measurement samples have been observed.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_cluster::{Request, RequestId};
    use treadmill_workloads::{OpClass, RequestProfile};

    fn record(gen_us: u64, latency_us: u64) -> ResponseRecord {
        let mut req = Request::new(
            RequestId(gen_us),
            0,
            0,
            RequestProfile {
                class: OpClass::Read,
                request_bytes: 64,
                response_bytes: 64,
                cpu_ns: 1.0,
                mem_ns: 1.0,
            },
            SimTime::from_micros(gen_us),
        );
        req.t_delivered = SimTime::from_micros(gen_us + latency_us);
        req.t_client_nic_out = req.t_generated;
        req.t_client_nic_in = req.t_delivered;
        req.t_server_nic_in = req.t_generated;
        req.t_server_nic_out = req.t_delivered;
        ResponseRecord::from_request(&req)
    }

    fn config(warmup_ms: u64, calibration: usize) -> InstanceConfig {
        InstanceConfig {
            phases: PhaseConfig {
                warmup: SimDuration::from_millis(warmup_ms),
            },
            histogram: HistogramConfig {
                calibration_samples: calibration,
                ..Default::default()
            },
            sample_one_in: 1,
        }
    }

    #[test]
    fn warmup_samples_discarded() {
        let mut inst = TreadmillInstance::new(config(1, 10));
        inst.observe(&record(500, 100)); // 0.5ms < 1ms warm-up
        inst.observe(&record(1_500, 100));
        assert_eq!(inst.discarded(), 1);
        assert_eq!(inst.samples(), 1);
    }

    #[test]
    fn phases_reported() {
        let mut inst = TreadmillInstance::new(config(1, 5));
        assert_eq!(inst.phase(), Phase::Warmup);
        inst.observe(&record(1_200, 50));
        assert_eq!(inst.phase(), Phase::Calibration);
        for i in 0..5 {
            inst.observe(&record(1_300 + i, 50 + i));
        }
        assert_eq!(inst.phase(), Phase::Measurement);
    }

    #[test]
    fn summary_reflects_observations() {
        let mut inst = TreadmillInstance::new(config(0, 100));
        for i in 0..1_000 {
            inst.observe(&record(i * 10, 100 + (i % 100)));
        }
        let summary = inst.summary();
        assert_eq!(summary.count, 1_000);
        assert!(summary.p50 >= 100.0 && summary.p50 <= 200.0);
        assert!(summary.p99 >= summary.p50);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_of_empty_instance_panics() {
        TreadmillInstance::new(InstanceConfig::default()).summary();
    }

    #[test]
    fn sampling_stride_thins_measurements_without_bias() {
        let mut full = TreadmillInstance::new(config(0, 50));
        let mut thinned = TreadmillInstance::new(InstanceConfig {
            sample_one_in: 10,
            ..config(0, 50)
        });
        for i in 0..20_000 {
            let rec = record(i * 5, 100 + (i % 200));
            full.observe(&rec);
            thinned.observe(&rec);
        }
        assert_eq!(full.samples(), 20_000);
        assert_eq!(thinned.samples(), 2_000);
        assert_eq!(thinned.skipped(), 18_000);
        // The thinned estimate stays close to the full one.
        let a = full.summary().p99;
        let b = thinned.summary().p99;
        assert!((a - b).abs() < 10.0, "full {a} vs sampled {b}");
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        TreadmillInstance::new(InstanceConfig {
            sample_one_in: 0,
            ..Default::default()
        });
    }
}
