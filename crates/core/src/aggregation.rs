//! Cross-instance statistical aggregation — correct and flawed.
//!
//! The paper's procedure (§III-B): "we first compute the interested
//! metrics from each individual Treadmill instance, and then combine
//! them by applying aggregation functions (e.g., mean, median) on these
//! metrics". The **holistic** alternative — pooling all clients'
//! samples into one distribution and reading quantiles off it — is the
//! §II-B pitfall: a single outlier client (e.g. on another rack)
//! dominates the pooled tail (Figure 2). Both are implemented so the
//! bias can be measured.

use treadmill_cluster::ResponseRecord;
use treadmill_stats::quantile::quantile_of_sorted;
use treadmill_stats::summary::{aggregate_mean, aggregate_median};
use treadmill_stats::LatencySummary;

/// How to combine per-instance metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationMethod {
    /// Mean of each metric across instances (the paper's default).
    #[default]
    Mean,
    /// Median of each metric across instances (robust to one bad
    /// client).
    Median,
}

/// Aggregates per-instance summaries the correct way.
///
/// # Panics
///
/// Panics if `summaries` is empty.
pub fn aggregate(summaries: &[LatencySummary], method: AggregationMethod) -> LatencySummary {
    match method {
        AggregationMethod::Mean => aggregate_mean(summaries),
        AggregationMethod::Median => aggregate_median(summaries),
    }
}

/// The flawed holistic aggregation: pools every client's samples into a
/// single distribution and summarises that.
///
/// # Panics
///
/// Panics if there are no samples.
pub fn holistic_summary(per_client_latencies: &[Vec<f64>]) -> LatencySummary {
    let pooled: Vec<f64> = per_client_latencies.iter().flatten().copied().collect();
    LatencySummary::from_samples(&pooled)
}

/// One row of the Figure 2 decomposition: at a pooled-distribution
/// quantile, which fraction of the samples *above* that quantile each
/// client contributed.
#[derive(Debug, Clone, PartialEq)]
pub struct TailShareRow {
    /// The pooled quantile, e.g. 0.99.
    pub quantile: f64,
    /// The pooled latency at that quantile (µs).
    pub latency_us: f64,
    /// Per-client share of samples above the quantile; sums to ~1.
    pub shares: Vec<f64>,
}

/// Computes the per-client composition of the pooled tail at each given
/// quantile — the measurement behind Figure 2's "Client 1 dominates the
/// high quantiles".
///
/// # Panics
///
/// Panics if there are no clients or no samples.
pub fn tail_composition(
    per_client_latencies: &[Vec<f64>],
    quantiles: &[f64],
) -> Vec<TailShareRow> {
    assert!(!per_client_latencies.is_empty(), "no clients");
    let mut pooled: Vec<f64> = per_client_latencies.iter().flatten().copied().collect();
    assert!(!pooled.is_empty(), "no samples");
    pooled.sort_by(f64::total_cmp);

    let sorted_clients: Vec<Vec<f64>> = per_client_latencies
        .iter()
        .map(|v| {
            let mut s = v.clone();
            s.sort_by(f64::total_cmp);
            s
        })
        .collect();

    quantiles
        .iter()
        .map(|&q| {
            let cut = quantile_of_sorted(&pooled, q);
            let strictly_above = |s: &Vec<f64>| s.len() - s.partition_point(|&v| v <= cut);
            let at_or_above = |s: &Vec<f64>| s.len() - s.partition_point(|&v| v < cut);
            let mut above: Vec<usize> = sorted_clients.iter().map(strictly_above).collect();
            if above.iter().sum::<usize>() == 0 {
                // The cut equals the maximum (heavy ties): fall back to
                // counting the ties so the shares stay meaningful.
                above = sorted_clients.iter().map(at_or_above).collect();
            }
            let total: usize = above.iter().sum();
            let shares = above
                .iter()
                .map(|&a| if total == 0 { 0.0 } else { a as f64 / total as f64 })
                .collect();
            TailShareRow {
                quantile: q,
                latency_us: cut,
                shares,
            }
        })
        .collect()
}

/// Extracts user-space latencies (µs) per client from raw records,
/// dropping those generated before the `warmup` instant. The cutoff is
/// exact simulation time — the same boundary every other measurement
/// view uses — so per-client and pooled sample counts always agree.
pub fn latencies_per_client(
    client_records: &[Vec<ResponseRecord>],
    warmup: treadmill_sim_core::SimTime,
) -> Vec<Vec<f64>> {
    client_records
        .iter()
        .map(|records| {
            records
                .iter()
                .filter(|r| r.t_generated >= warmup)
                .map(ResponseRecord::user_latency_us)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_summaries(values: &[f64]) -> Vec<LatencySummary> {
        values
            .iter()
            .map(|&v| LatencySummary::from_samples(&[v; 10]))
            .collect()
    }

    #[test]
    fn mean_and_median_aggregation() {
        let summaries = constant_summaries(&[100.0, 100.0, 100.0, 500.0]);
        let mean = aggregate(&summaries, AggregationMethod::Mean);
        let median = aggregate(&summaries, AggregationMethod::Median);
        assert_eq!(mean.p99, 200.0);
        assert_eq!(median.p99, 100.0);
    }

    #[test]
    fn holistic_pooling_biased_by_outlier_client() {
        // 3 clients at ~100us, 1 cross-rack client at ~400us.
        let per_client: Vec<Vec<f64>> = vec![
            (0..1000).map(|i| 95.0 + (i % 10) as f64).collect(),
            (0..1000).map(|i| 97.0 + (i % 10) as f64).collect(),
            (0..1000).map(|i| 99.0 + (i % 10) as f64).collect(),
            (0..1000).map(|i| 395.0 + (i % 10) as f64).collect(),
        ];
        let holistic = holistic_summary(&per_client);
        let correct_summaries: Vec<LatencySummary> = per_client
            .iter()
            .map(|v| LatencySummary::from_samples(v))
            .collect();
        let correct = aggregate(&correct_summaries, AggregationMethod::Mean);
        // Holistic p99 lands in the outlier client's range; the correct
        // aggregate reflects the average client's p99.
        assert!(holistic.p99 > 390.0, "holistic p99 {}", holistic.p99);
        assert!(correct.p99 < 190.0, "correct p99 {}", correct.p99);
    }

    #[test]
    fn tail_composition_identifies_dominating_client() {
        let per_client: Vec<Vec<f64>> = vec![
            (0..1000).map(|i| 100.0 + (i % 20) as f64).collect(),
            (0..1000).map(|i| 100.0 + (i % 20) as f64).collect(),
            (0..1000).map(|i| 380.0 + (i % 40) as f64).collect(),
        ];
        let rows = tail_composition(&per_client, &[0.5, 0.9, 0.99]);
        assert_eq!(rows.len(), 3);
        // At the median, client 2 contributes every sample above the cut
        // only if the cut exceeds clients 0/1's range; with 1/3 of mass
        // at 380+, the pooled p50 is inside clients 0/1's range.
        let p99_row = &rows[2];
        assert!(
            p99_row.shares[2] > 0.95,
            "outlier client should own the p99 tail: {:?}",
            p99_row.shares
        );
        let total: f64 = p99_row.shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composition_shares_sum_to_one_at_every_quantile() {
        let per_client: Vec<Vec<f64>> = (0..4)
            .map(|c| (0..500).map(|i| (c * 37 + i % 100) as f64).collect())
            .collect();
        for row in tail_composition(&per_client, &[0.1, 0.5, 0.9, 0.95, 0.99]) {
            let total: f64 = row.shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "q {}: {total}", row.quantile);
        }
    }

    #[test]
    #[should_panic(expected = "no clients")]
    fn empty_composition_rejected() {
        tail_composition(&[], &[0.5]);
    }
}
