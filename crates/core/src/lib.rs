//! Treadmill: a precisely-timed, statistically sound load tester —
//! the primary contribution of the ISCA 2016 paper, reproduced in Rust.
//!
//! The design addresses the four pitfalls the paper identifies in prior
//! load testers:
//!
//! | Pitfall (§II) | This crate's answer |
//! |---|---|
//! | Query inter-arrival generation | [`OpenLoopSource`]: precisely-timed open-loop control with exponential inter-arrivals ([`InterArrival`]); [`ClosedLoopSource`] exists to demonstrate the flaw. |
//! | Statistical aggregation | [`TreadmillInstance`]: warm-up / calibration / measurement phases over an adaptive, re-binnable histogram; per-instance metric extraction then cross-instance aggregation ([`aggregation`]). |
//! | Client-side queueing bias | [`LoadTest`]: multiple lightly-utilised instances split the target throughput (§III-B). |
//! | Performance hysteresis | [`experiment::run_until_converged`]: repeat the whole experiment until the mean of per-run metrics converges ([`ConvergenceTracker`]). |
//!
//! Plus the paper's generality/configurability features: any
//! [`treadmill_workloads::Workload`] plugs in, and a whole test is
//! expressible as JSON via [`LoadTestConfig`].
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use treadmill_core::LoadTest;
//! use treadmill_workloads::Memcached;
//!
//! // 100k RPS against the simulated server, 4 Treadmill instances.
//! let report = LoadTest::new(Arc::new(Memcached::default()), 100_000.0)
//!     .clients(4)
//!     .seed(7)
//!     .run(0);
//! // The per-instance p99s are aggregated, not pooled:
//! println!("p99 = {:.0}us", report.aggregated.p99);
//! assert!(report.aggregated.p99 > report.aggregated.p50);
//! ```

#![forbid(unsafe_code)]
// Unit tests unwrap freely and assert exact float equality: bit-exact
// reproducibility is the property under test. Library code is held to
// the workspace lint table (see DESIGN.md, "Static analysis").
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)
)]
#![warn(missing_docs)]

pub mod aggregation;
mod config;
mod controller;
mod convergence;
pub mod experiment;
mod instance;
mod interarrival;
pub mod omission;
mod phases;
pub mod report;
mod resumable;
mod runner;
pub mod sweep;
pub mod timeline;

pub use aggregation::{
    holistic_summary, latencies_per_client, tail_composition, AggregationMethod,
    TailShareRow,
};
pub use config::{ConfigError, LoadTestConfig, ScreenSpec};
pub use controller::{ClosedLoopSource, OpenLoopSource, RateLimitedClosedLoopSource};
pub use convergence::ConvergenceTracker;
pub use experiment::{run_until_converged, ExperimentOptions, ExperimentOutcome};
pub use instance::{InstanceConfig, TreadmillInstance};
pub use interarrival::InterArrival;
pub use phases::{Phase, PhaseConfig};
pub use report::{health_warnings, render_report};
pub use resumable::{ResumableRun, TailMonitor};
pub use runner::{
    LoadTest, LoadTestReport, RerunPolicy, RobustRunOutcome, RunDegradation,
};
pub use sweep::{
    run_factorial_sweep, run_factorial_sweep_controlled, run_screened_sweep, run_sweep,
    run_sweep_controlled, CellSummary, FactorialCellResult, FactorialOutcome,
    ScreenedCell, ScreenedSweepPlan, SweepControl, SweepError, SweepEvent, SweepOptions,
    SweepOutcome, FACTORIAL_CELLS,
};
