//! Human-readable report rendering for load-test results.
//!
//! Produces the operator-facing text block the CLI prints: per-instance
//! table, cross-instance aggregate, ground-truth comparison and basic
//! health checks (client utilisation, completion ratio) — with the
//! §II pitfalls surfaced as warnings when a run trips them.

use std::fmt::Write as _;

use treadmill_sim_core::SimTime;

use crate::runner::LoadTestReport;

/// Renders a complete text report for one run.
///
/// `target_rps` is used for the completion-ratio health check.
pub fn render_report(report: &LoadTestReport, target_rps: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== per-instance summaries ==");
    for (i, s) in report.per_instance.iter().enumerate() {
        let _ = writeln!(
            out,
            "  instance {i}: {:>8} samples  p50 {:>7.1}us  p95 {:>7.1}us  p99 {:>7.1}us",
            s.count, s.p50, s.p95, s.p99
        );
    }
    let agg = &report.aggregated;
    let _ = writeln!(out, "== aggregate (mean of per-instance metrics) ==");
    let _ = writeln!(
        out,
        "  p50 {:.1}us  p90 {:.1}us  p95 {:.1}us  p99 {:.1}us  p99.9 {:.1}us",
        agg.p50, agg.p90, agg.p95, agg.p99, agg.p999
    );
    if !report.ground_truth.is_empty() {
        let truth50 = report.ground_truth.quantile_us(0.5);
        let truth99 = report.ground_truth.quantile_us(0.99);
        let _ = writeln!(out, "== ground truth (NIC-to-NIC) ==");
        let _ = writeln!(
            out,
            "  p50 {truth50:.1}us  p99 {truth99:.1}us  (user-space offset {:.1}us / {:.1}us)",
            agg.p50 - truth50,
            agg.p99 - truth99
        );
    }
    let _ = writeln!(out, "== health ==");
    let ratio = report.completion_ratio(target_rps);
    let _ = writeln!(out, "  completion ratio: {:.3}", ratio);
    for warning in health_warnings(report, target_rps) {
        let _ = writeln!(out, "  WARNING: {warning}");
    }
    out
}

/// Checks a run for the §II pitfalls an operator can actually detect
/// from the measurements themselves.
pub fn health_warnings(report: &LoadTestReport, target_rps: f64) -> Vec<String> {
    let mut warnings = Vec::new();
    let ratio = report.completion_ratio(target_rps);
    if ratio < 0.95 {
        warnings.push(format!(
            "only {:.0}% of the offered load completed within the run — the tester or \
             server cannot sustain this rate",
            ratio * 100.0
        ));
    }
    for (i, &util) in report.run.client_cpu_utilization.iter().enumerate() {
        if util > 0.5 {
            warnings.push(format!(
                "client {i} CPU at {:.0}% — client-side queueing is biasing the \
                 measurement (§II-C); add client machines",
                util * 100.0
            ));
        }
    }
    // Per-instance p99 spread: one deviant instance signals a topology
    // outlier (§II-B, the cross-rack client of Figure 2).
    if report.per_instance.len() >= 3 {
        let p99s: Vec<f64> = report.per_instance.iter().map(|s| s.p99).collect();
        let mean = p99s.iter().sum::<f64>() / p99s.len() as f64;
        for (i, &p99) in p99s.iter().enumerate() {
            if p99 > mean * 1.5 {
                warnings.push(format!(
                    "instance {i}'s p99 ({p99:.0}us) is >1.5x the instance mean \
                     ({mean:.0}us) — check its placement before aggregating (§II-B)"
                ));
            }
        }
    }
    let warmup = SimTime::ZERO + report.warmup;
    let measured = report
        .run
        .all_records()
        .filter(|r| r.t_generated >= warmup)
        .count();
    if measured < 10_000 {
        warnings.push(format!(
            "only {measured} measurement samples — tail estimates above p99 are \
             unreliable; lengthen the run"
        ));
    }
    let loss = report.loss_fraction();
    if loss > 0.01 {
        warnings.push(format!(
            "{:.1}% of requests were abandoned (timeouts/resets) — reported \
             quantiles in the censored tail are lower bounds; see \
             omission::correct_with_censored",
            loss * 100.0
        ));
    }
    for finding in &report.run.audit_findings {
        warnings.push(format!(
            "invariant auditor: {finding} — treat this run's numbers as corrupt"
        ));
    }
    let faults = &report.run.fault_summary;
    if !faults.is_quiet() {
        warnings.push(format!(
            "fault injection active: {} drops, {} crashes, {} stalls, {} retries, \
             {} hedges — latencies include injected faults",
            faults.total_drops(),
            faults.crashes,
            faults.stalls,
            faults.retries,
            faults.hedges
        ));
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LoadTest;
    use std::sync::Arc;
    use treadmill_cluster::ClientSpec;
    use treadmill_sim_core::SimDuration;
    use treadmill_workloads::Memcached;

    fn healthy_report() -> (LoadTestReport, f64) {
        let rps = 200_000.0;
        let report = LoadTest::new(Arc::new(Memcached::default()), rps)
            .clients(4)
            .duration(SimDuration::from_millis(150))
            .warmup(SimDuration::from_millis(30))
            .seed(3)
            .run(0);
        (report, rps)
    }

    #[test]
    fn healthy_run_renders_without_warnings() {
        let (report, rps) = healthy_report();
        let text = render_report(&report, rps);
        assert!(text.contains("per-instance summaries"));
        assert!(text.contains("ground truth"));
        assert!(!text.contains("WARNING"), "unexpected warnings:\n{text}");
        assert!(health_warnings(&report, rps).is_empty());
    }

    #[test]
    fn overloaded_client_is_flagged() {
        let rps = 400_000.0;
        // One heavy client: per-op 4us × 2 ops × 400k = 3.2x a core.
        let report = LoadTest::new(Arc::new(Memcached::default()), rps)
            .clients(1)
            .client_spec(ClientSpec {
                send_cpu_ns: 4_000.0,
                recv_cpu_ns: 4_000.0,
                ..Default::default()
            })
            .duration(SimDuration::from_millis(120))
            .warmup(SimDuration::from_millis(30))
            .seed(4)
            .run(0);
        let warnings = health_warnings(&report, rps);
        assert!(
            warnings.iter().any(|w| w.contains("client-side queueing")),
            "expected a §II-C warning, got {warnings:?}"
        );
        assert!(
            warnings.iter().any(|w| w.contains("cannot sustain")),
            "expected a completion warning, got {warnings:?}"
        );
    }

    #[test]
    fn faulty_run_is_flagged() {
        use treadmill_cluster::{FaultSpec, RetryPolicy};
        let rps = 150_000.0;
        let report = LoadTest::new(Arc::new(Memcached::default()), rps)
            .clients(4)
            .duration(SimDuration::from_millis(150))
            .warmup(SimDuration::from_millis(30))
            .faults(FaultSpec {
                uplink_loss: 0.05,
                ..Default::default()
            })
            .retry_policy(RetryPolicy {
                timeout_us: 2_000.0,
                max_retries: 1,
                ..Default::default()
            })
            .seed(6)
            .run(0);
        let warnings = health_warnings(&report, rps);
        assert!(
            warnings.iter().any(|w| w.contains("fault injection active")),
            "expected a fault warning, got {warnings:?}"
        );
    }

    #[test]
    fn short_run_is_flagged() {
        let rps = 100_000.0;
        let report = LoadTest::new(Arc::new(Memcached::default()), rps)
            .clients(2)
            .duration(SimDuration::from_millis(40))
            .warmup(SimDuration::from_millis(30))
            .seed(5)
            .run(0);
        let warnings = health_warnings(&report, rps);
        assert!(
            warnings.iter().any(|w| w.contains("measurement samples")),
            "expected a sample-count warning, got {warnings:?}"
        );
    }
}
