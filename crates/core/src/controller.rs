//! Open-loop and closed-loop load controllers (§II-A).
//!
//! [`OpenLoopSource`] is Treadmill's controller: sends fire at
//! precisely scheduled instants drawn from an inter-arrival process,
//! regardless of response status, so the number of outstanding requests
//! is unbounded and the server's queueing behaviour is properly
//! exercised. [`ClosedLoopSource`] is the pitfall: each worker
//! (connection) only sends after its previous response returns, so at
//! most `N` requests are ever outstanding — "each thread represents
//! exactly one potentially outstanding request".

use rand::RngCore;
use treadmill_cluster::{SendOrder, TrafficSource};
use treadmill_sim_core::{SimDuration, SimTime};

use crate::interarrival::InterArrival;

/// Treadmill's precisely-timed open-loop controller.
#[derive(Debug, Clone)]
pub struct OpenLoopSource {
    process: InterArrival,
    connections: u32,
    next_conn: u32,
}

impl OpenLoopSource {
    /// Creates a controller emitting on `connections` connections.
    ///
    /// # Panics
    ///
    /// Panics if `connections` is zero.
    pub fn new(process: InterArrival, connections: u32) -> Self {
        assert!(connections > 0, "need at least one connection");
        OpenLoopSource {
            process,
            connections,
            next_conn: 0,
        }
    }

    /// The configured inter-arrival process.
    pub fn process(&self) -> InterArrival {
        self.process
    }

    fn next_order(&mut self, now: SimTime, rng: &mut dyn RngCore) -> SendOrder {
        let at = now + self.process.sample_gap(rng);
        let conn = self.next_conn;
        self.next_conn = (self.next_conn + 1) % self.connections;
        SendOrder { at, conn }
    }
}

impl TrafficSource for OpenLoopSource {
    fn start(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Vec<SendOrder> {
        vec![self.next_order(now, rng)]
    }

    fn on_sent(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Option<SendOrder> {
        Some(self.next_order(now, rng))
    }

    fn on_response(
        &mut self,
        _conn: u32,
        _now: SimTime,
        _rng: &mut dyn RngCore,
    ) -> Option<SendOrder> {
        None // open loop: responses never gate sends
    }

    fn checkpoint_word(&self) -> u64 {
        u64::from(self.next_conn)
    }

    fn restore_checkpoint_word(&mut self, word: u64) {
        self.next_conn = u32::try_from(word % u64::from(self.connections)).unwrap_or(0);
    }
}

/// The closed-loop controller of prior load testers (YCSB, Faban,
/// Mutilate): one outstanding request per connection, next send fires
/// `think_time` after the response.
#[derive(Debug, Clone)]
pub struct ClosedLoopSource {
    connections: u32,
    think_time: SimDuration,
}

impl ClosedLoopSource {
    /// Creates a closed-loop controller with zero think time.
    ///
    /// # Panics
    ///
    /// Panics if `connections` is zero.
    pub fn new(connections: u32) -> Self {
        Self::with_think_time(connections, SimDuration::ZERO)
    }

    /// Creates a closed-loop controller with the given think time.
    ///
    /// # Panics
    ///
    /// Panics if `connections` is zero.
    pub fn with_think_time(connections: u32, think_time: SimDuration) -> Self {
        assert!(connections > 0, "need at least one connection");
        ClosedLoopSource {
            connections,
            think_time,
        }
    }

    /// Number of worker connections (the outstanding-request cap).
    pub fn connections(&self) -> u32 {
        self.connections
    }
}

impl TrafficSource for ClosedLoopSource {
    fn start(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Vec<SendOrder> {
        // Stagger initial sends over 100us so workers don't slam the
        // server in a single burst, as real thread pools ramp up.
        use rand::Rng;
        (0..self.connections)
            .map(|conn| SendOrder {
                at: now + SimDuration::from_nanos_f64(rng.gen_range(0.0..100_000.0)),
                conn,
            })
            .collect()
    }

    fn on_sent(&mut self, _now: SimTime, _rng: &mut dyn RngCore) -> Option<SendOrder> {
        None // sends are gated by responses
    }

    fn on_response(
        &mut self,
        conn: u32,
        now: SimTime,
        _rng: &mut dyn RngCore,
    ) -> Option<SendOrder> {
        Some(SendOrder {
            at: now + self.think_time,
            conn,
        })
    }
}

/// A rate-targeted closed-loop controller, as Mutilate and YCSB
/// implement QPS targets: sends follow a precomputed schedule, but a
/// connection may only take its next scheduled send after its previous
/// response returns. When responses lag the schedule, the worker sends
/// "late" and the tester silently falls behind — the classic
/// coordinated-omission behaviour that underestimates tail latency at
/// high load.
#[derive(Debug, Clone)]
pub struct RateLimitedClosedLoopSource {
    process: InterArrival,
    connections: u32,
    schedule_head: SimTime,
}

impl RateLimitedClosedLoopSource {
    /// Creates a controller targeting the process's rate across
    /// `connections` workers.
    ///
    /// # Panics
    ///
    /// Panics if `connections` is zero.
    pub fn new(process: InterArrival, connections: u32) -> Self {
        assert!(connections > 0, "need at least one connection");
        RateLimitedClosedLoopSource {
            process,
            connections,
            schedule_head: SimTime::ZERO,
        }
    }

    /// The outstanding-request cap.
    pub fn connections(&self) -> u32 {
        self.connections
    }

    fn take_slot(&mut self, rng: &mut dyn RngCore) -> SimTime {
        let slot = self.schedule_head;
        self.schedule_head += self.process.sample_gap(rng);
        slot
    }
}

impl TrafficSource for RateLimitedClosedLoopSource {
    fn start(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Vec<SendOrder> {
        self.schedule_head = now;
        (0..self.connections)
            .map(|conn| {
                let slot = self.take_slot(rng);
                SendOrder {
                    at: slot.max(now),
                    conn,
                }
            })
            .collect()
    }

    fn on_sent(&mut self, _now: SimTime, _rng: &mut dyn RngCore) -> Option<SendOrder> {
        None
    }

    fn on_response(
        &mut self,
        conn: u32,
        now: SimTime,
        rng: &mut dyn RngCore,
    ) -> Option<SendOrder> {
        let slot = self.take_slot(rng);
        Some(SendOrder {
            // Behind schedule: send immediately (and never catch up).
            at: slot.max(now),
            conn,
        })
    }

    fn checkpoint_word(&self) -> u64 {
        self.schedule_head.as_nanos()
    }

    fn restore_checkpoint_word(&mut self, word: u64) {
        self.schedule_head = SimTime::from_nanos(word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rate_limited_closed_loop_respects_schedule_when_fast() {
        let mut src = RateLimitedClosedLoopSource::new(
            InterArrival::Deterministic { rate_rps: 10_000.0 },
            4,
        );
        let mut rng = SmallRng::seed_from_u64(9);
        let start = src.start(SimTime::ZERO, &mut rng);
        assert_eq!(start.len(), 4);
        // Responses arrive instantly: next sends follow the schedule
        // (100us apart at 10k RPS).
        let next = src
            .on_response(0, SimTime::from_micros(1), &mut rng)
            .unwrap();
        assert_eq!(next.at, SimTime::from_micros(400));
    }

    #[test]
    fn rate_limited_closed_loop_falls_behind_when_slow() {
        let mut src = RateLimitedClosedLoopSource::new(
            InterArrival::Deterministic { rate_rps: 1_000_000.0 },
            1,
        );
        let mut rng = SmallRng::seed_from_u64(10);
        let _ = src.start(SimTime::ZERO, &mut rng);
        // The response arrives way past the 1us schedule: the send goes
        // out now, not at the scheduled instant — coordinated omission.
        let next = src
            .on_response(0, SimTime::from_micros(500), &mut rng)
            .unwrap();
        assert_eq!(next.at, SimTime::from_micros(500));
    }

    #[test]
    fn open_loop_fires_regardless_of_responses() {
        let mut src = OpenLoopSource::new(
            InterArrival::Exponential { rate_rps: 100_000.0 },
            4,
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let start = src.start(SimTime::ZERO, &mut rng);
        assert_eq!(start.len(), 1);
        let next = src.on_sent(start[0].at, &mut rng).unwrap();
        assert!(next.at > start[0].at);
        assert!(src.on_response(0, next.at, &mut rng).is_none());
    }

    #[test]
    fn open_loop_round_robins_connections() {
        let mut src =
            OpenLoopSource::new(InterArrival::Deterministic { rate_rps: 1000.0 }, 3);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut conns = vec![src.start(SimTime::ZERO, &mut rng)[0].conn];
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            let o = src.on_sent(now, &mut rng).unwrap();
            conns.push(o.conn);
            now = o.at;
        }
        assert_eq!(conns, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn open_loop_rate_is_precise() {
        let mut src = OpenLoopSource::new(
            InterArrival::Exponential { rate_rps: 500_000.0 },
            8,
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let mut now = src.start(SimTime::ZERO, &mut rng)[0].at;
        let n = 100_000;
        for _ in 0..n {
            now = src.on_sent(now, &mut rng).unwrap().at;
        }
        let rate = f64::from(n) / now.as_secs_f64();
        assert!((rate / 500_000.0 - 1.0).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn closed_loop_starts_one_per_connection() {
        let mut src = ClosedLoopSource::new(12);
        let mut rng = SmallRng::seed_from_u64(4);
        let start = src.start(SimTime::ZERO, &mut rng);
        assert_eq!(start.len(), 12);
        let conns: std::collections::BTreeSet<u32> =
            start.iter().map(|o| o.conn).collect();
        assert_eq!(conns.len(), 12, "one initial send per connection");
    }

    #[test]
    fn closed_loop_gates_on_responses() {
        let mut src = ClosedLoopSource::new(2);
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = src.start(SimTime::ZERO, &mut rng);
        assert!(src.on_sent(SimTime::from_micros(1), &mut rng).is_none());
        let next = src
            .on_response(1, SimTime::from_micros(50), &mut rng)
            .unwrap();
        assert_eq!(next.conn, 1);
        assert_eq!(next.at, SimTime::from_micros(50));
    }

    #[test]
    fn think_time_delays_resend() {
        let mut src =
            ClosedLoopSource::with_think_time(1, SimDuration::from_micros(100));
        let mut rng = SmallRng::seed_from_u64(6);
        let next = src
            .on_response(0, SimTime::from_micros(10), &mut rng)
            .unwrap();
        assert_eq!(next.at, SimTime::from_micros(110));
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn zero_connections_rejected() {
        ClosedLoopSource::new(0);
    }
}
