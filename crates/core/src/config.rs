//! JSON load-test configuration — the paper's "JSON formatted
//! configuration file … fed into Treadmill" (§III-A), extended to the
//! whole test: workload, rate, clients, and windows.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use treadmill_cluster::{FaultSpec, HardwareConfig, RetryPolicy};
use treadmill_sim_core::SimDuration;
use treadmill_workloads::{SpecError, WorkloadSpec};

use crate::runner::LoadTest;

/// Errors from load-test configuration.
///
/// `Invalid` is *typed*: it names the offending field, so an HTTP
/// front-end can turn it into a structured 400 body instead of
/// string-matching a message.
#[derive(Debug)]
pub enum ConfigError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// A workload-spec problem.
    Workload(SpecError),
    /// Semantically invalid settings.
    Invalid {
        /// The configuration field that failed validation.
        field: &'static str,
        /// Why the value is rejected.
        message: String,
    },
}

impl ConfigError {
    /// A short machine-readable error kind (`json` / `workload` /
    /// `invalid`) for structured error bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            ConfigError::Json(_) => "json",
            ConfigError::Workload(_) => "workload",
            ConfigError::Invalid { .. } => "invalid",
        }
    }

    /// The offending field for `Invalid` errors.
    pub fn field(&self) -> Option<&'static str> {
        match self {
            ConfigError::Invalid { field, .. } => Some(field),
            _ => None,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "invalid load-test JSON: {e}"),
            ConfigError::Workload(e) => write!(f, "workload error: {e}"),
            ConfigError::Invalid { field, message } => {
                write!(f, "invalid load test: {field}: {message}")
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Json(e) => Some(e),
            ConfigError::Workload(e) => Some(e),
            ConfigError::Invalid { .. } => None,
        }
    }
}

impl From<serde_json::Error> for ConfigError {
    fn from(e: serde_json::Error) -> Self {
        ConfigError::Json(e)
    }
}

impl From<SpecError> for ConfigError {
    fn from(e: SpecError) -> Self {
        ConfigError::Workload(e)
    }
}

/// A declarative load-test description.
///
/// # Examples
///
/// ```
/// use treadmill_core::LoadTestConfig;
///
/// let config = LoadTestConfig::from_json(r#"{
///     "workload": { "workload": "memcached" },
///     "target_rps": 100000,
///     "clients": 8,
///     "connections_per_client": 16,
///     "duration_ms": 300,
///     "warmup_ms": 50
/// }"#)?;
/// let test = config.build()?;
/// assert_eq!(test.target_rps(), 100_000.0);
/// # Ok::<(), treadmill_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTestConfig {
    /// The workload specification.
    pub workload: WorkloadSpec,
    /// Target aggregate throughput.
    pub target_rps: f64,
    /// Number of Treadmill instances.
    #[serde(default = "default_clients")]
    pub clients: usize,
    /// Connections per instance.
    #[serde(default = "default_connections")]
    pub connections_per_client: u32,
    /// Sending window, milliseconds.
    #[serde(default = "default_duration_ms")]
    pub duration_ms: u64,
    /// Warm-up window, milliseconds.
    #[serde(default = "default_warmup_ms")]
    pub warmup_ms: u64,
    /// Master seed.
    #[serde(default)]
    pub seed: u64,
    /// Number of simulated servers. Each server forms one shard with
    /// its own replica of the client set; `target_rps` is per-server
    /// offered load. 1 (the default) keeps the classic unsharded path.
    #[serde(default = "default_servers")]
    pub servers: u32,
    /// Worker threads for sharded execution. 0 (the default) defers to
    /// the `TML_THREADS` environment variable, then to 1. Seeded runs
    /// are bit-identical at any thread count.
    #[serde(default)]
    pub threads: u32,
    /// Every `remote_every`-th connection targets a foreign server
    /// when `servers > 1` (0 keeps all traffic shard-local).
    #[serde(default = "default_remote_every")]
    pub remote_every: u32,
    /// Fault-injection configuration (default: no faults).
    #[serde(default)]
    pub faults: FaultSpec,
    /// Client-side timeout / retry / hedging policy (default: off).
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Pins the run to one cell of the 2⁴ hardware factor space
    /// (`HardwareConfig::from_index`). `None` (the default) keeps the
    /// all-low baseline. Factorial sweeps set this per cell.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub hardware: Option<u8>,
    /// Analytic screening for factorial sweeps: when set, the sweep
    /// runs the analytic fast-path estimator over every hardware cell
    /// first and spends DES runs only on cells whose predicted tail
    /// effect reaches `threshold`. `None` (the default) means
    /// full-factorial (or single-cell) behaviour.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub screen: Option<ScreenSpec>,
}

/// Screening knobs for a factorial sweep (see `LoadTestConfig::screen`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ScreenSpec {
    /// Relative predicted-p99 excess over the best cell at which a cell
    /// is flagged for DES simulation. 0 screens every cell in (useful
    /// for validating the screened path against full-factorial).
    pub threshold: f64,
}

impl Default for ScreenSpec {
    fn default() -> Self {
        ScreenSpec { threshold: 0.25 }
    }
}

/// Validation ceilings — generous enough for every benchmark world
/// (the million-connection perf stage runs 100 servers x 8 clients x
/// 1250 connections) while keeping a hostile or typo'd spec from
/// sizing an absurd simulation. These bound the service's 400 path:
/// anything past them is rejected before any allocation happens.
pub const MAX_TARGET_RPS: f64 = 1e9;
/// Upper bound on [`LoadTestConfig::clients`].
pub const MAX_CLIENTS: usize = 4096;
/// Upper bound on [`LoadTestConfig::connections_per_client`].
pub const MAX_CONNECTIONS: u32 = 65_536;
/// Upper bound on [`LoadTestConfig::duration_ms`] (24 hours).
pub const MAX_DURATION_MS: u64 = 86_400_000;
/// Upper bound on [`LoadTestConfig::servers`].
pub const MAX_SERVERS: u32 = 4096;
/// Upper bound on [`LoadTestConfig::threads`].
pub const MAX_THREADS: u32 = 1024;
/// Upper bound on clients x connections x servers.
pub const MAX_TOTAL_CONNECTIONS: u64 = 16_777_216;

fn default_clients() -> usize {
    8
}
fn default_connections() -> u32 {
    16
}
fn default_duration_ms() -> u64 {
    600
}
fn default_warmup_ms() -> u64 {
    100
}
fn default_servers() -> u32 {
    1
}
fn default_remote_every() -> u32 {
    4
}

impl LoadTestConfig {
    /// Parses a configuration from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Json`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, ConfigError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Serialises the configuration to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialisation cannot fail")
    }

    /// Validates every knob without building anything — the single
    /// gate between untrusted input (a JSON file, an HTTP request
    /// body) and the engine. Any configuration that passes here must
    /// build and run without panicking; anything that could drive the
    /// engine into a degenerate state (zero connections, NaN rates,
    /// astronomically sized worlds) is rejected with a typed error
    /// naming the field.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] naming the offending field and
    /// [`ConfigError::Workload`] for workload-spec problems.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn invalid(field: &'static str, message: String) -> ConfigError {
            ConfigError::Invalid { field, message }
        }
        if !self.target_rps.is_finite() || self.target_rps <= 0.0 {
            return Err(invalid(
                "target_rps",
                format!("must be positive and finite, got {}", self.target_rps),
            ));
        }
        if self.target_rps > MAX_TARGET_RPS {
            return Err(invalid(
                "target_rps",
                format!("must be at most {MAX_TARGET_RPS:.0}, got {}", self.target_rps),
            ));
        }
        if self.clients == 0 || self.clients > MAX_CLIENTS {
            return Err(invalid(
                "clients",
                format!("must be in 1..={MAX_CLIENTS}, got {}", self.clients),
            ));
        }
        if self.connections_per_client == 0 || self.connections_per_client > MAX_CONNECTIONS {
            return Err(invalid(
                "connections_per_client",
                format!(
                    "must be in 1..={MAX_CONNECTIONS}, got {}",
                    self.connections_per_client
                ),
            ));
        }
        if self.duration_ms == 0 || self.duration_ms > MAX_DURATION_MS {
            return Err(invalid(
                "duration_ms",
                format!("must be in 1..={MAX_DURATION_MS}, got {}", self.duration_ms),
            ));
        }
        if self.warmup_ms >= self.duration_ms {
            return Err(invalid(
                "warmup_ms",
                format!(
                    "warm-up ({} ms) must be shorter than the run ({} ms)",
                    self.warmup_ms, self.duration_ms
                ),
            ));
        }
        if self.servers == 0 || self.servers > MAX_SERVERS {
            return Err(invalid(
                "servers",
                format!("must be in 1..={MAX_SERVERS}, got {}", self.servers),
            ));
        }
        if self.threads > MAX_THREADS {
            return Err(invalid(
                "threads",
                format!("must be at most {MAX_THREADS}, got {}", self.threads),
            ));
        }
        let total_connections = self.clients as u64
            * u64::from(self.connections_per_client)
            * u64::from(self.servers);
        if total_connections > MAX_TOTAL_CONNECTIONS {
            return Err(invalid(
                "connections_per_client",
                format!(
                    "clients x connections x servers = {total_connections} exceeds the \
                     {MAX_TOTAL_CONNECTIONS}-connection world budget"
                ),
            ));
        }
        if let Some(cell) = self.hardware {
            if cell >= 16 {
                return Err(invalid(
                    "hardware",
                    format!("cell index must be in 0..=15, got {cell}"),
                ));
            }
        }
        if let Some(screen) = &self.screen {
            if !screen.threshold.is_finite() || screen.threshold < 0.0 {
                return Err(invalid(
                    "screen",
                    format!(
                        "threshold must be finite and non-negative, got {}",
                        screen.threshold
                    ),
                ));
            }
        }
        self.faults
            .validate()
            .map_err(|message| invalid("faults", message))?;
        self.retry
            .validate()
            .map_err(|message| invalid("retry", message))?;
        self.workload.build()?;
        Ok(())
    }

    /// Builds the runnable [`LoadTest`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Workload`] for workload problems and
    /// [`ConfigError::Invalid`] for nonsensical settings — everything
    /// [`LoadTestConfig::validate`] checks.
    pub fn build(&self) -> Result<LoadTest, ConfigError> {
        self.validate()?;
        let workload: Arc<dyn treadmill_workloads::Workload> = self.workload.build()?;
        let hardware = self
            .hardware
            .map_or_else(HardwareConfig::all_low, |cell| {
                HardwareConfig::from_index(usize::from(cell))
            });
        Ok(LoadTest::new(workload, self.target_rps)
            .hardware(hardware)
            .clients(self.clients)
            .connections_per_client(self.connections_per_client)
            .duration(SimDuration::from_millis(self.duration_ms))
            .warmup(SimDuration::from_millis(self.warmup_ms))
            .seed(self.seed)
            .servers(self.servers)
            .threads(self.threads)
            .remote_every(self.remote_every)
            .faults(self.faults)
            .retry_policy(self.retry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> &'static str {
        r#"{ "workload": { "workload": "memcached" }, "target_rps": 50000 }"#
    }

    #[test]
    fn defaults_fill_in() {
        let config = LoadTestConfig::from_json(minimal_json()).unwrap();
        assert_eq!(config.clients, 8);
        assert_eq!(config.connections_per_client, 16);
        assert_eq!(config.duration_ms, 600);
        assert_eq!(config.warmup_ms, 100);
        assert!(config.build().is_ok());
    }

    #[test]
    fn sharding_defaults_and_validation() {
        let config = LoadTestConfig::from_json(minimal_json()).unwrap();
        assert_eq!(config.servers, 1);
        assert_eq!(config.threads, 0);
        assert_eq!(config.remote_every, 4);
        let config = LoadTestConfig::from_json(
            r#"{ "workload": { "workload": "memcached" }, "target_rps": 1000, "servers": 0 }"#,
        )
        .unwrap();
        assert_eq!(config.build().unwrap_err().field(), Some("servers"));
    }

    #[test]
    fn json_round_trip() {
        let config = LoadTestConfig::from_json(minimal_json()).unwrap();
        let back = LoadTestConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn invalid_rate_rejected() {
        let config = LoadTestConfig::from_json(
            r#"{ "workload": { "workload": "memcached" }, "target_rps": -5 }"#,
        )
        .unwrap();
        let err = config.build().unwrap_err();
        assert!(matches!(err, ConfigError::Invalid { .. }));
        assert_eq!(err.field(), Some("target_rps"));
        assert_eq!(err.kind(), "invalid");
    }

    #[test]
    fn nan_rate_rejected_by_validate() {
        let mut config = LoadTestConfig::from_json(minimal_json()).unwrap();
        config.target_rps = f64::NAN;
        assert_eq!(config.validate().unwrap_err().field(), Some("target_rps"));
        config.target_rps = f64::INFINITY;
        assert_eq!(config.validate().unwrap_err().field(), Some("target_rps"));
    }

    #[test]
    fn zero_connections_rejected() {
        let mut config = LoadTestConfig::from_json(minimal_json()).unwrap();
        config.connections_per_client = 0;
        assert_eq!(
            config.validate().unwrap_err().field(),
            Some("connections_per_client")
        );
    }

    #[test]
    fn zero_duration_rejected() {
        let mut config = LoadTestConfig::from_json(minimal_json()).unwrap();
        config.duration_ms = 0;
        config.warmup_ms = 0;
        assert_eq!(config.validate().unwrap_err().field(), Some("duration_ms"));
    }

    #[test]
    fn oversized_world_rejected() {
        let mut config = LoadTestConfig::from_json(minimal_json()).unwrap();
        config.clients = 4096;
        config.connections_per_client = 65_536;
        config.servers = 512;
        assert_eq!(
            config.validate().unwrap_err().field(),
            Some("connections_per_client")
        );
    }

    #[test]
    fn fault_knobs_validated_with_field() {
        let mut config = LoadTestConfig::from_json(minimal_json()).unwrap();
        config.faults.uplink_loss = 1.5;
        assert_eq!(config.validate().unwrap_err().field(), Some("faults"));
    }

    #[test]
    fn warmup_longer_than_run_rejected() {
        let config = LoadTestConfig::from_json(
            r#"{
                "workload": { "workload": "memcached" },
                "target_rps": 1000,
                "duration_ms": 50,
                "warmup_ms": 60
            }"#,
        )
        .unwrap();
        let err = config.build().unwrap_err();
        assert!(err.to_string().contains("warm-up"));
    }

    #[test]
    fn unknown_workload_propagates() {
        let config = LoadTestConfig::from_json(
            r#"{ "workload": { "workload": "redis" }, "target_rps": 1000 }"#,
        )
        .unwrap();
        assert!(matches!(config.build(), Err(ConfigError::Workload(_))));
    }

    #[test]
    fn hardware_and_screen_knobs() {
        // Absent knobs serialise away: old configs hash identically.
        let config = LoadTestConfig::from_json(minimal_json()).unwrap();
        assert!(config.hardware.is_none() && config.screen.is_none());
        assert!(!config.to_json().contains("hardware"));
        assert!(!config.to_json().contains("screen"));
        let config = LoadTestConfig::from_json(
            r#"{ "workload": { "workload": "memcached" }, "target_rps": 1000,
                 "hardware": 9, "screen": { "threshold": 0.1 } }"#,
        )
        .unwrap();
        assert_eq!(config.hardware, Some(9));
        assert_eq!(config.screen.unwrap().threshold, 0.1);
        assert!(config.validate().is_ok());
        let back = LoadTestConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn out_of_range_hardware_and_screen_rejected() {
        let mut config = LoadTestConfig::from_json(minimal_json()).unwrap();
        config.hardware = Some(16);
        assert_eq!(config.validate().unwrap_err().field(), Some("hardware"));
        config.hardware = None;
        config.screen = Some(ScreenSpec { threshold: -0.5 });
        assert_eq!(config.validate().unwrap_err().field(), Some("screen"));
        config.screen = Some(ScreenSpec {
            threshold: f64::NAN,
        });
        assert_eq!(config.validate().unwrap_err().field(), Some("screen"));
    }

    #[test]
    fn malformed_json_reported() {
        assert!(matches!(
            LoadTestConfig::from_json("{"),
            Err(ConfigError::Json(_))
        ));
    }
}
