//! JSON load-test configuration — the paper's "JSON formatted
//! configuration file … fed into Treadmill" (§III-A), extended to the
//! whole test: workload, rate, clients, and windows.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use treadmill_cluster::{FaultSpec, RetryPolicy};
use treadmill_sim_core::SimDuration;
use treadmill_workloads::{SpecError, WorkloadSpec};

use crate::runner::LoadTest;

/// Errors from load-test configuration.
#[derive(Debug)]
pub enum ConfigError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// A workload-spec problem.
    Workload(SpecError),
    /// Semantically invalid settings.
    Invalid(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "invalid load-test JSON: {e}"),
            ConfigError::Workload(e) => write!(f, "workload error: {e}"),
            ConfigError::Invalid(msg) => write!(f, "invalid load test: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Json(e) => Some(e),
            ConfigError::Workload(e) => Some(e),
            ConfigError::Invalid(_) => None,
        }
    }
}

impl From<serde_json::Error> for ConfigError {
    fn from(e: serde_json::Error) -> Self {
        ConfigError::Json(e)
    }
}

impl From<SpecError> for ConfigError {
    fn from(e: SpecError) -> Self {
        ConfigError::Workload(e)
    }
}

/// A declarative load-test description.
///
/// # Examples
///
/// ```
/// use treadmill_core::LoadTestConfig;
///
/// let config = LoadTestConfig::from_json(r#"{
///     "workload": { "workload": "memcached" },
///     "target_rps": 100000,
///     "clients": 8,
///     "connections_per_client": 16,
///     "duration_ms": 300,
///     "warmup_ms": 50
/// }"#)?;
/// let test = config.build()?;
/// assert_eq!(test.target_rps(), 100_000.0);
/// # Ok::<(), treadmill_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTestConfig {
    /// The workload specification.
    pub workload: WorkloadSpec,
    /// Target aggregate throughput.
    pub target_rps: f64,
    /// Number of Treadmill instances.
    #[serde(default = "default_clients")]
    pub clients: usize,
    /// Connections per instance.
    #[serde(default = "default_connections")]
    pub connections_per_client: u32,
    /// Sending window, milliseconds.
    #[serde(default = "default_duration_ms")]
    pub duration_ms: u64,
    /// Warm-up window, milliseconds.
    #[serde(default = "default_warmup_ms")]
    pub warmup_ms: u64,
    /// Master seed.
    #[serde(default)]
    pub seed: u64,
    /// Number of simulated servers. Each server forms one shard with
    /// its own replica of the client set; `target_rps` is per-server
    /// offered load. 1 (the default) keeps the classic unsharded path.
    #[serde(default = "default_servers")]
    pub servers: u32,
    /// Worker threads for sharded execution. 0 (the default) defers to
    /// the `TML_THREADS` environment variable, then to 1. Seeded runs
    /// are bit-identical at any thread count.
    #[serde(default)]
    pub threads: u32,
    /// Every `remote_every`-th connection targets a foreign server
    /// when `servers > 1` (0 keeps all traffic shard-local).
    #[serde(default = "default_remote_every")]
    pub remote_every: u32,
    /// Fault-injection configuration (default: no faults).
    #[serde(default)]
    pub faults: FaultSpec,
    /// Client-side timeout / retry / hedging policy (default: off).
    #[serde(default)]
    pub retry: RetryPolicy,
}

fn default_clients() -> usize {
    8
}
fn default_connections() -> u32 {
    16
}
fn default_duration_ms() -> u64 {
    600
}
fn default_warmup_ms() -> u64 {
    100
}
fn default_servers() -> u32 {
    1
}
fn default_remote_every() -> u32 {
    4
}

impl LoadTestConfig {
    /// Parses a configuration from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Json`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, ConfigError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Serialises the configuration to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialisation cannot fail")
    }

    /// Builds the runnable [`LoadTest`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Workload`] for workload problems and
    /// [`ConfigError::Invalid`] for nonsensical settings.
    pub fn build(&self) -> Result<LoadTest, ConfigError> {
        if self.target_rps <= 0.0 {
            return Err(ConfigError::Invalid(format!(
                "target_rps must be positive, got {}",
                self.target_rps
            )));
        }
        if self.clients == 0 {
            return Err(ConfigError::Invalid("clients must be at least 1".into()));
        }
        if self.servers == 0 {
            return Err(ConfigError::Invalid("servers must be at least 1".into()));
        }
        if self.warmup_ms >= self.duration_ms {
            return Err(ConfigError::Invalid(format!(
                "warm-up ({} ms) must be shorter than the run ({} ms)",
                self.warmup_ms, self.duration_ms
            )));
        }
        self.faults
            .validate()
            .map_err(|msg| ConfigError::Invalid(format!("faults: {msg}")))?;
        self.retry
            .validate()
            .map_err(|msg| ConfigError::Invalid(format!("retry: {msg}")))?;
        let workload: Arc<dyn treadmill_workloads::Workload> = self.workload.build()?;
        Ok(LoadTest::new(workload, self.target_rps)
            .clients(self.clients)
            .connections_per_client(self.connections_per_client)
            .duration(SimDuration::from_millis(self.duration_ms))
            .warmup(SimDuration::from_millis(self.warmup_ms))
            .seed(self.seed)
            .servers(self.servers)
            .threads(self.threads)
            .remote_every(self.remote_every)
            .faults(self.faults)
            .retry_policy(self.retry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> &'static str {
        r#"{ "workload": { "workload": "memcached" }, "target_rps": 50000 }"#
    }

    #[test]
    fn defaults_fill_in() {
        let config = LoadTestConfig::from_json(minimal_json()).unwrap();
        assert_eq!(config.clients, 8);
        assert_eq!(config.connections_per_client, 16);
        assert_eq!(config.duration_ms, 600);
        assert_eq!(config.warmup_ms, 100);
        assert!(config.build().is_ok());
    }

    #[test]
    fn sharding_defaults_and_validation() {
        let config = LoadTestConfig::from_json(minimal_json()).unwrap();
        assert_eq!(config.servers, 1);
        assert_eq!(config.threads, 0);
        assert_eq!(config.remote_every, 4);
        let config = LoadTestConfig::from_json(
            r#"{ "workload": { "workload": "memcached" }, "target_rps": 1000, "servers": 0 }"#,
        )
        .unwrap();
        assert!(matches!(config.build(), Err(ConfigError::Invalid(_))));
    }

    #[test]
    fn json_round_trip() {
        let config = LoadTestConfig::from_json(minimal_json()).unwrap();
        let back = LoadTestConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn invalid_rate_rejected() {
        let config = LoadTestConfig::from_json(
            r#"{ "workload": { "workload": "memcached" }, "target_rps": -5 }"#,
        )
        .unwrap();
        assert!(matches!(config.build(), Err(ConfigError::Invalid(_))));
    }

    #[test]
    fn warmup_longer_than_run_rejected() {
        let config = LoadTestConfig::from_json(
            r#"{
                "workload": { "workload": "memcached" },
                "target_rps": 1000,
                "duration_ms": 50,
                "warmup_ms": 60
            }"#,
        )
        .unwrap();
        let err = config.build().unwrap_err();
        assert!(err.to_string().contains("warm-up"));
    }

    #[test]
    fn unknown_workload_propagates() {
        let config = LoadTestConfig::from_json(
            r#"{ "workload": { "workload": "redis" }, "target_rps": 1000 }"#,
        )
        .unwrap();
        assert!(matches!(config.build(), Err(ConfigError::Workload(_))));
    }

    #[test]
    fn malformed_json_reported() {
        assert!(matches!(
            LoadTestConfig::from_json("{"),
            Err(ConfigError::Json(_))
        ));
    }
}
