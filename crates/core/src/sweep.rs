//! Crash-tolerant sweep orchestration.
//!
//! A sweep executes `runs` repeated cells of one load-test
//! configuration (fresh server start per cell, per the repeated-run
//! procedure) and persists everything needed to survive a SIGKILL at
//! any instant:
//!
//! * **manifest journal** — `manifest.jsonl` in the output directory
//!   records one line per state transition (`pending` → `running` →
//!   `done`), each carrying the cell's derived seed and the
//!   configuration hash. Appends are fsynced; a line torn by a crash
//!   mid-write is tolerated and ignored on replay.
//! * **atomic artifacts** — every `.tsv` / `.ckpt` is written to a
//!   `*.tmp` sibling, fsynced, then renamed into place, so a reader
//!   (or a resumed sweep) never observes a half-written file.
//! * **checkpoints** — each running cell snapshots its full state
//!   (engine + streaming estimators, see
//!   [`crate::resumable::ResumableRun`]) every `ckpt_events` events.
//! * **resume** — [`SweepOptions::resume`] replays the journal, skips
//!   cells already `done` (their artifacts are left untouched),
//!   resumes the in-flight cell from its checkpoint, and runs the
//!   rest. Because checkpointed resume is bit-identical, the final
//!   artifacts are byte-for-byte the same as an uninterrupted sweep's.
//!
//! Each cell's quantiles are journaled as exact `f64` bit patterns, so
//! `summary.tsv` rows for skipped cells reproduce without re-running.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use serde::{Deserialize, Serialize};
use treadmill_sim_core::fnv1a64;

use crate::aggregation::tail_composition;
use crate::config::{ConfigError, LoadTestConfig};
use crate::report::health_warnings;
use crate::resumable::ResumableRun;
use crate::runner::LoadTestReport;

/// Progress notifications emitted by [`run_sweep_controlled`] as the
/// sweep advances — the hook a long-running service uses to stream
/// per-cell status to clients without polling artifact files.
#[derive(Debug, Clone)]
pub enum SweepEvent {
    /// A cell was skipped because the journal already marks it done.
    CellSkipped {
        /// Cell index.
        cell: u64,
    },
    /// A cell started executing (fresh or from a checkpoint).
    CellStarted {
        /// Cell index.
        cell: u64,
        /// The cell's derived seed.
        seed: u64,
        /// Events already executed when (re)starting — 0 for a fresh
        /// cell, the checkpoint position for a resumed one.
        resumed_at_events: u64,
    },
    /// A checkpoint of the running cell was sealed to disk.
    Checkpointed {
        /// Cell index.
        cell: u64,
        /// Events executed so far.
        events: u64,
        /// Post-warm-up samples folded into the tail monitor so far.
        samples: u64,
        /// The live streaming p99 estimate (µs).
        p99_us: f64,
    },
    /// A cell finished and its artifacts were written.
    CellDone {
        /// Cell index.
        cell: u64,
        /// Measurement-window samples in the aggregate.
        samples: u64,
        /// The cell's aggregated p99 (µs).
        p99_us: f64,
    },
    /// The sweep stopped early because cancellation was requested. The
    /// in-flight cell's checkpoint is sealed; `--resume` continues it.
    Interrupted {
        /// The cell that was in flight (if any was running).
        cell: Option<u64>,
    },
}

/// Cooperative control handles for [`run_sweep_controlled`].
///
/// `cancel` is polled at every checkpoint boundary and between cells;
/// once observed `true`, the sweep seals the in-flight checkpoint,
/// flushes the journal (appends are fsynced as written), and returns
/// with [`SweepOutcome::interrupted`] set — exactly the state a SIGKILL
/// would leave, minus the lost batch. `progress` receives a
/// [`SweepEvent`] for every state transition.
#[derive(Default)]
pub struct SweepControl<'a> {
    /// Cancellation flag shared with a signal handler or drain path.
    pub cancel: Option<&'a AtomicBool>,
    /// Progress sink.
    pub progress: Option<&'a mut dyn FnMut(SweepEvent)>,
}

impl fmt::Debug for SweepControl<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepControl")
            .field("cancel", &self.cancel.map(|c| c.load(Ordering::Relaxed)))
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl SweepControl<'_> {
    fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
    }

    fn emit(&mut self, event: SweepEvent) {
        if let Some(progress) = self.progress.as_deref_mut() {
            progress(event);
        }
    }
}

/// Knobs for [`run_sweep`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Cells (repeated runs) to execute.
    pub runs: u64,
    /// Events between checkpoints of the running cell. Smaller values
    /// lose less work to a crash but cost more (a snapshot serialises
    /// every completed record so far).
    pub ckpt_events: u64,
    /// Replay the journal and continue a crashed sweep instead of
    /// starting fresh.
    pub resume: bool,
    /// Event-heap ceiling for the per-checkpoint invariant audit.
    pub max_pending: usize,
}

/// The default checkpoint interval, sized so checkpointing costs a few
/// percent of a typical cell (see the `perf_smoke` checkpoint stage).
pub const DEFAULT_CKPT_EVENTS: u64 = 1_000_000;

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            runs: 6,
            ckpt_events: DEFAULT_CKPT_EVENTS,
            resume: false,
            max_pending: 10_000_000,
        }
    }
}

/// One finished cell's headline numbers, decoded from the journal —
/// what [`SweepOutcome::cells`] reports per repeated run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellSummary {
    /// Cell (repeated-run) index.
    pub cell: u64,
    /// The cell's derived seed.
    pub seed: u64,
    /// Measurement-window samples.
    pub samples: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 90th percentile, µs.
    pub p90_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
}

/// What [`run_sweep`] did, for operator-facing summaries.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Cells executed (fresh or resumed) this invocation.
    pub executed: Vec<u64>,
    /// Cells skipped because the journal already marks them done.
    pub skipped: Vec<u64>,
    /// The cell that was resumed from a checkpoint, if any.
    pub resumed_cell: Option<u64>,
    /// Warnings accumulated across cells (audit findings, health
    /// checks, recovery notes).
    pub warnings: Vec<String>,
    /// Path of the sweep summary artifact.
    pub summary_path: PathBuf,
    /// True if the sweep stopped early on a cancellation request. The
    /// journal and the in-flight cell's checkpoint are sealed; running
    /// again with [`SweepOptions::resume`] continues where it stopped.
    pub interrupted: bool,
    /// Every known-done cell's headline numbers (executed this
    /// invocation or replayed from the journal), in cell order.
    pub cells: Vec<CellSummary>,
}

/// Errors from sweep orchestration.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem trouble.
    Io(io::Error),
    /// The configuration does not build.
    Config(ConfigError),
    /// A screened-sweep plan is malformed (wrong cell count, bad
    /// indices) and cannot drive the factorial orchestration.
    Screen {
        /// Why the plan is unusable.
        message: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep I/O error: {e}"),
            SweepError::Config(e) => write!(f, "sweep configuration error: {e}"),
            SweepError::Screen { message } => write!(f, "sweep screen plan error: {message}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io(e) => Some(e),
            SweepError::Config(e) => Some(e),
            SweepError::Screen { .. } => None,
        }
    }
}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> Self {
        SweepError::Io(e)
    }
}

impl From<ConfigError> for SweepError {
    fn from(e: ConfigError) -> Self {
        SweepError::Config(e)
    }
}

/// One journal line: a cell state transition.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestLine {
    cell: u64,
    status: String,
    seed: u64,
    config_hash: String,
    #[serde(default)]
    result: Option<CellResult>,
}

/// A finished cell's headline numbers, journaled as exact bit patterns
/// (`%016x` of [`f64::to_bits`]) so replay is bit-exact.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CellResult {
    samples: u64,
    mean_bits: String,
    p50_bits: String,
    p90_bits: String,
    p95_bits: String,
    p99_bits: String,
    p999_bits: String,
}

impl CellResult {
    fn from_report(report: &LoadTestReport) -> Self {
        let agg = &report.aggregated;
        CellResult {
            samples: agg.count,
            mean_bits: bits(agg.mean),
            p50_bits: bits(agg.p50),
            p90_bits: bits(agg.p90),
            p95_bits: bits(agg.p95),
            p99_bits: bits(agg.p99),
            p999_bits: bits(agg.p999),
        }
    }
}

fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn from_bits(s: &str) -> f64 {
    u64::from_str_radix(s, 16).map_or(f64::NAN, f64::from_bits)
}

/// The journal replayed into per-cell knowledge.
#[derive(Debug, Default)]
struct Manifest {
    done: std::collections::BTreeMap<u64, CellResult>,
    running: std::collections::BTreeSet<u64>,
}

fn read_manifest(path: &Path, config_hash: &str) -> (Manifest, Vec<String>) {
    let mut manifest = Manifest::default();
    let mut warnings = Vec::new();
    let Ok(contents) = fs::read_to_string(path) else {
        return (manifest, warnings);
    };
    for line in contents.lines() {
        if line.trim().is_empty() {
            continue;
        }
        // A SIGKILL can tear the final line mid-write; skip anything
        // that does not parse rather than refusing to resume.
        let Ok(entry) = serde_json::from_str::<ManifestLine>(line) else {
            warnings.push("manifest has a torn/unparseable line (ignored)".to_string());
            continue;
        };
        if entry.config_hash != config_hash {
            warnings.push(format!(
                "manifest line for cell {} was journaled under config hash {} \
                 (current {config_hash}); ignoring it",
                entry.cell, entry.config_hash
            ));
            continue;
        }
        match entry.status.as_str() {
            "done" => {
                if let Some(result) = entry.result {
                    manifest.running.remove(&entry.cell);
                    manifest.done.insert(entry.cell, result);
                }
            }
            "running" => {
                manifest.running.insert(entry.cell);
            }
            _ => {}
        }
    }
    (manifest, warnings)
}

/// Appends one journal line and fsyncs, so the transition survives a
/// crash that happens right after it.
fn append_journal(path: &Path, line: &ManifestLine) -> io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut serialized =
        serde_json::to_string(line).map_err(io::Error::other)?;
    serialized.push('\n');
    file.write_all(serialized.as_bytes())?;
    file.sync_all()
}

/// Writes `contents` to `path` atomically: a `*.tmp` sibling in the
/// same directory, fsync, rename, directory fsync. A crash at any
/// point leaves either the old file or the new one, never a torn mix.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself; without this a crash can forget
        // the directory entry even though the data blocks are safe.
        if let Ok(dir_handle) = File::open(dir) {
            let _ = dir_handle.sync_all();
        }
    }
    Ok(())
}

/// The `# seed=… config_hash=… version=…` provenance line every
/// results artifact starts with.
pub fn provenance_line(seed: u64, config_hash: &str) -> String {
    format!(
        "# seed={seed} config_hash={config_hash} version={}",
        env!("CARGO_PKG_VERSION")
    )
}

fn cell_tsv(cell: u64, seed: u64, config_hash: &str, report: &LoadTestReport) -> String {
    let mut out = String::new();
    out.push_str(&provenance_line(seed, config_hash));
    out.push('\n');
    out.push_str(&format!("# cell={cell}\n"));
    out.push_str("scope\tsamples\tmean_us\tp50_us\tp90_us\tp95_us\tp99_us\tp999_us\n");
    let agg = &report.aggregated;
    out.push_str(&format!(
        "aggregate\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\n",
        agg.count, agg.mean, agg.p50, agg.p90, agg.p95, agg.p99, agg.p999
    ));
    for (i, s) in report.per_instance.iter().enumerate() {
        out.push_str(&format!(
            "instance_{i}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\n",
            s.count, s.mean, s.p50, s.p90, s.p95, s.p99, s.p999
        ));
    }
    out
}

fn summary_tsv(
    master_seed: u64,
    config_hash: &str,
    cells: &std::collections::BTreeMap<u64, (u64, CellResult)>,
) -> String {
    let mut out = String::new();
    out.push_str(&provenance_line(master_seed, config_hash));
    out.push('\n');
    out.push_str("cell\tseed\tsamples\tmean_us\tp50_us\tp90_us\tp95_us\tp99_us\tp999_us\n");
    for (cell, (seed, r)) in cells {
        out.push_str(&format!(
            "{cell}\t{seed}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\n",
            r.samples,
            from_bits(&r.mean_bits),
            from_bits(&r.p50_bits),
            from_bits(&r.p90_bits),
            from_bits(&r.p95_bits),
            from_bits(&r.p99_bits),
            from_bits(&r.p999_bits),
        ));
    }
    out
}

fn ckpt_path(out_dir: &Path, cell: u64) -> PathBuf {
    out_dir.join(format!("cell_{cell}.ckpt"))
}

fn attr_path(out_dir: &Path, cell: u64) -> PathBuf {
    out_dir.join(format!("cell_{cell}.attr.tsv"))
}

/// The quantiles the per-cell attribution artifact decomposes.
const ATTRIBUTION_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// Renders one cell's tail-attribution artifact: for each quantile,
/// which instance the pooled tail samples come from (the paper's
/// Figure 2 decomposition, the "source" in *attributing the source of
/// tail latency*). Pure function of the report, so killed-and-resumed
/// sweeps reproduce it byte-for-byte.
fn attribution_tsv(
    cell: u64,
    seed: u64,
    config_hash: &str,
    per_client: &[Vec<f64>],
) -> String {
    let mut out = String::new();
    out.push_str(&provenance_line(seed, config_hash));
    out.push('\n');
    out.push_str(&format!("# cell={cell}\n"));
    out.push_str("cell\tquantile\tlatency_us");
    for i in 0..per_client.len() {
        out.push_str(&format!("\tshare_instance_{i}"));
    }
    out.push('\n');
    if per_client.iter().all(|v| v.is_empty()) {
        return out;
    }
    for row in tail_composition(per_client, &ATTRIBUTION_QUANTILES) {
        out.push_str(&format!("{cell}\t{:.4}\t{:.6}", row.quantile, row.latency_us));
        for share in &row.shares {
            out.push_str(&format!("\t{share:.6}"));
        }
        out.push('\n');
    }
    out
}

/// Concatenates the per-cell attribution artifacts into one sweep-wide
/// `attribution.tsv`. Skipped (already-done) cells contribute their
/// on-disk rows, so a resumed sweep reconstructs the aggregate without
/// re-running anything.
fn aggregate_attribution(
    out_dir: &Path,
    master_seed: u64,
    config_hash: &str,
    runs: u64,
    warnings: &mut Vec<String>,
) -> String {
    let mut out = String::new();
    out.push_str(&provenance_line(master_seed, config_hash));
    out.push('\n');
    let mut wrote_header = false;
    for cell in 0..runs {
        let Ok(text) = fs::read_to_string(attr_path(out_dir, cell)) else {
            warnings.push(format!(
                "cell {cell}: attribution artifact missing; aggregate omits it"
            ));
            continue;
        };
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let is_header = line.starts_with("cell\t");
            if is_header {
                if wrote_header {
                    continue;
                }
                wrote_header = true;
            }
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Executes (or resumes) a sweep of `opts.runs` cells into `out_dir`.
/// [`run_sweep_controlled`] with no cancellation or progress hooks.
///
/// # Errors
///
/// Returns [`SweepError::Config`] if the configuration does not build
/// and [`SweepError::Io`] on filesystem trouble. A corrupt or missing
/// checkpoint is *not* an error: the affected cell restarts from event
/// zero (with a warning) and the sweep continues.
pub fn run_sweep(
    config: &LoadTestConfig,
    out_dir: &Path,
    opts: &SweepOptions,
) -> Result<SweepOutcome, SweepError> {
    run_sweep_controlled(config, out_dir, opts, &mut SweepControl::default())
}

/// [`run_sweep`] with cooperative cancellation and progress reporting —
/// the entry point `treadmill-serve` and the signal-handling CLI use.
///
/// # Errors
///
/// Same as [`run_sweep`]. Cancellation is *not* an error: the outcome
/// comes back `Ok` with [`SweepOutcome::interrupted`] set.
pub fn run_sweep_controlled(
    config: &LoadTestConfig,
    out_dir: &Path,
    opts: &SweepOptions,
    ctrl: &mut SweepControl<'_>,
) -> Result<SweepOutcome, SweepError> {
    let test = config.build()?;
    let config_hash = format!("{:016x}", fnv1a64(config.to_json().as_bytes()));
    fs::create_dir_all(out_dir)?;
    let manifest_path = out_dir.join("manifest.jsonl");

    let mut outcome = SweepOutcome {
        summary_path: out_dir.join("summary.tsv"),
        ..SweepOutcome::default()
    };

    let manifest = if opts.resume {
        let (manifest, warnings) = read_manifest(&manifest_path, &config_hash);
        outcome.warnings.extend(warnings);
        manifest
    } else {
        // Fresh start: drop any previous journal and checkpoints so a
        // stale `done` line cannot shadow the new configuration.
        if manifest_path.exists() {
            fs::remove_file(&manifest_path)?;
        }
        for cell in 0..opts.runs {
            let _ = fs::remove_file(ckpt_path(out_dir, cell));
        }
        for cell in 0..opts.runs {
            append_journal(
                &manifest_path,
                &ManifestLine {
                    cell,
                    status: "pending".to_string(),
                    seed: test.derive_run_seed(cell),
                    config_hash: config_hash.clone(),
                    result: None,
                },
            )?;
        }
        Manifest::default()
    };

    let mut summary_cells: std::collections::BTreeMap<u64, (u64, CellResult)> = manifest
        .done
        .iter()
        .map(|(&cell, result)| (cell, (test.derive_run_seed(cell), result.clone())))
        .collect();

    // Snapshot scratch buffer, recycled across every checkpoint of
    // every cell — see `ResumableRun::checkpoint_into`.
    let mut ckpt_buf = Vec::new();

    'cells: for cell in 0..opts.runs {
        let seed = test.derive_run_seed(cell);
        if manifest.done.contains_key(&cell) {
            outcome.skipped.push(cell);
            ctrl.emit(SweepEvent::CellSkipped { cell });
            continue;
        }
        if ctrl.cancelled() {
            outcome.interrupted = true;
            ctrl.emit(SweepEvent::Interrupted { cell: None });
            break 'cells;
        }

        let checkpoint_file = ckpt_path(out_dir, cell);
        let mut run = None;
        if opts.resume && manifest.running.contains(&cell) {
            match fs::read(&checkpoint_file) {
                Ok(bytes) => match ResumableRun::resume(test.clone(), cell, &bytes) {
                    Ok(resumed) => {
                        outcome.resumed_cell = Some(cell);
                        outcome.warnings.push(format!(
                            "cell {cell}: resumed from checkpoint at {} events",
                            resumed.events_executed()
                        ));
                        run = Some(resumed);
                    }
                    Err(e) => outcome.warnings.push(format!(
                        "cell {cell}: checkpoint unusable ({e}); restarting from event zero"
                    )),
                },
                Err(_) => outcome.warnings.push(format!(
                    "cell {cell}: was in flight but left no checkpoint; \
                     restarting from event zero"
                )),
            }
        }
        let mut run = match run {
            Some(run) => run,
            None => {
                append_journal(
                    &manifest_path,
                    &ManifestLine {
                        cell,
                        status: "running".to_string(),
                        seed,
                        config_hash: config_hash.clone(),
                        result: None,
                    },
                )?;
                ResumableRun::new(test.clone(), cell)
            }
        };
        ctrl.emit(SweepEvent::CellStarted {
            cell,
            seed,
            resumed_at_events: run.events_executed(),
        });

        // The crash-tolerance loop: execute a batch, persist a
        // checkpoint, audit. A SIGKILL between any two statements loses
        // at most one batch of work; a cancellation request observed
        // here returns with the just-sealed checkpoint as the resume
        // point.
        while run.step(opts.ckpt_events) > 0 {
            if run.is_finished() {
                break;
            }
            run.checkpoint_into(&mut ckpt_buf);
            write_atomic(&checkpoint_file, &ckpt_buf)?;
            for finding in run.audit(opts.max_pending) {
                outcome.warnings.push(format!("cell {cell}: auditor: {finding}"));
            }
            ctrl.emit(SweepEvent::Checkpointed {
                cell,
                events: run.events_executed(),
                samples: run.tail().count(),
                p99_us: run.tail().p99_us(),
            });
            if ctrl.cancelled() {
                outcome.interrupted = true;
                outcome.warnings.push(format!(
                    "cell {cell}: interrupted at {} events; checkpoint sealed — \
                     resume with --resume",
                    run.events_executed()
                ));
                ctrl.emit(SweepEvent::Interrupted { cell: Some(cell) });
                break 'cells;
            }
        }

        let report = run.finish();
        for finding in &report.run.audit_findings {
            outcome
                .warnings
                .push(format!("cell {cell}: auditor: {finding}"));
        }
        for warning in health_warnings(&report, config.target_rps) {
            outcome.warnings.push(format!("cell {cell}: {warning}"));
        }
        let result = CellResult::from_report(&report);
        write_atomic(
            &out_dir.join(format!("cell_{cell}.tsv")),
            cell_tsv(cell, seed, &config_hash, &report).as_bytes(),
        )?;
        write_atomic(
            &attr_path(out_dir, cell),
            attribution_tsv(cell, seed, &config_hash, &test.raw_latencies(&report)).as_bytes(),
        )?;
        append_journal(
            &manifest_path,
            &ManifestLine {
                cell,
                status: "done".to_string(),
                seed,
                config_hash: config_hash.clone(),
                result: Some(result.clone()),
            },
        )?;
        let _ = fs::remove_file(&checkpoint_file);
        let (samples, p99_us) = (result.samples, from_bits(&result.p99_bits));
        summary_cells.insert(cell, (seed, result));
        outcome.executed.push(cell);
        ctrl.emit(SweepEvent::CellDone {
            cell,
            samples,
            p99_us,
        });
    }

    outcome.cells = summary_cells
        .iter()
        .map(|(&cell, (seed, r))| CellSummary {
            cell,
            seed: *seed,
            samples: r.samples,
            mean_us: from_bits(&r.mean_bits),
            p50_us: from_bits(&r.p50_bits),
            p90_us: from_bits(&r.p90_bits),
            p95_us: from_bits(&r.p95_bits),
            p99_us: from_bits(&r.p99_bits),
            p999_us: from_bits(&r.p999_bits),
        })
        .collect();
    write_atomic(
        &outcome.summary_path,
        summary_tsv(config.seed, &config_hash, &summary_cells).as_bytes(),
    )?;
    if !outcome.interrupted {
        // The sweep-wide attribution aggregate is only meaningful (and
        // only byte-stable) once every cell has contributed its rows.
        let attribution = aggregate_attribution(
            out_dir,
            config.seed,
            &config_hash,
            opts.runs,
            &mut outcome.warnings,
        );
        write_atomic(&out_dir.join("attribution.tsv"), attribution.as_bytes())?;
    }
    Ok(outcome)
}

/// The number of hardware cells in the paper's 2⁴ factor space.
pub const FACTORIAL_CELLS: usize = 16;

/// One hardware cell's analytic prediction, as handed to the screened
/// sweep. `treadmill_inference::screen_hardware` computes these; this
/// crate only consumes them (core cannot depend on inference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenedCell {
    /// Hardware cell index (`HardwareConfig::from_index`).
    pub index: usize,
    /// Predicted median latency, µs.
    pub p50_us: f64,
    /// Predicted 95th percentile, µs.
    pub p95_us: f64,
    /// Predicted 99th percentile, µs.
    pub p99_us: f64,
    /// Predicted per-core utilisation.
    pub utilization: f64,
    /// Relative predicted p99 excess over the best cell.
    pub tail_effect: f64,
    /// True when the cell should be DES-simulated.
    pub flagged: bool,
}

/// The analytic screen's verdict over the whole factor space — the
/// contract between the inference crate's estimator and this crate's
/// orchestration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenedSweepPlan {
    /// The relative tail-effect threshold the screen applied.
    pub threshold: f64,
    /// All [`FACTORIAL_CELLS`] predictions, in index order.
    pub cells: Vec<ScreenedCell>,
}

impl ScreenedSweepPlan {
    fn validate(&self) -> Result<(), SweepError> {
        if self.cells.len() != FACTORIAL_CELLS {
            return Err(SweepError::Screen {
                message: format!(
                    "plan has {} cells, expected {FACTORIAL_CELLS}",
                    self.cells.len()
                ),
            });
        }
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.index != i {
                return Err(SweepError::Screen {
                    message: format!("plan cell {i} carries index {}", cell.index),
                });
            }
        }
        Ok(())
    }
}

/// One simulated hardware cell's aggregate in a factorial sweep: the
/// across-run mean of each per-run quantile.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorialCellResult {
    /// Hardware cell index.
    pub index: usize,
    /// The cell's sweep directory (`hw_NN/`) under the factorial root.
    pub dir: PathBuf,
    /// Repeated runs aggregated.
    pub runs: u64,
    /// Total measurement-window samples across runs.
    pub samples: u64,
    /// Across-run mean of per-run mean latency, µs.
    pub mean_us: f64,
    /// Across-run mean of per-run p50, µs.
    pub p50_us: f64,
    /// Across-run mean of per-run p95, µs.
    pub p95_us: f64,
    /// Across-run mean of per-run p99, µs.
    pub p99_us: f64,
    /// Across-run mean of per-run p99.9, µs.
    pub p999_us: f64,
}

/// What a factorial (optionally screened) sweep did.
#[derive(Debug, Clone, Default)]
pub struct FactorialOutcome {
    /// Hardware cells that were DES-simulated, in index order.
    pub simulated: Vec<usize>,
    /// Hardware cells the analytic screen dropped, in index order.
    pub screened_out: Vec<usize>,
    /// Per simulated cell, the across-run aggregate.
    pub cells: Vec<FactorialCellResult>,
    /// Warnings from every inner sweep, prefixed with the cell.
    pub warnings: Vec<String>,
    /// Path of the `factorial.tsv` measurement artifact.
    pub factorial_path: PathBuf,
    /// Path of the `screen.tsv` prediction artifact (screened sweeps
    /// only).
    pub screen_path: Option<PathBuf>,
    /// True if an inner sweep was interrupted; re-run with
    /// [`SweepOptions::resume`] to continue.
    pub interrupted: bool,
}

/// The per-cell configuration a factorial sweep runs: the base config
/// pinned to one hardware cell, with the screen knob stripped and a
/// cell-derived seed. Stripping `screen` makes the per-cell artifacts
/// (and their provenance hashes) independent of *how* the cell was
/// selected — a threshold-0 screened sweep is byte-identical to a
/// full-factorial one.
fn factorial_cell_config(config: &LoadTestConfig, index: usize) -> LoadTestConfig {
    let mut cell = config.clone();
    cell.hardware = Some(u8::try_from(index).unwrap_or(u8::MAX));
    cell.screen = None;
    cell.seed = fnv1a64(format!("{}/factorial/{index}", config.seed).as_bytes());
    cell
}

fn factorial_cell_dir(out_dir: &Path, index: usize) -> PathBuf {
    out_dir.join(format!("hw_{index:02}"))
}

/// The screen-stripped base hash that stamps factorial-level artifacts.
fn factorial_hash(config: &LoadTestConfig) -> String {
    let mut base = config.clone();
    base.screen = None;
    format!("{:016x}", fnv1a64(base.to_json().as_bytes()))
}

fn factorial_tsv(
    master_seed: u64,
    base_hash: &str,
    cells: &[FactorialCellResult],
) -> String {
    let mut out = String::new();
    out.push_str(&provenance_line(master_seed, base_hash));
    out.push('\n');
    out.push_str("cell\tnuma\tturbo\tdvfs\tnic\truns\tsamples\tmean_us\tp50_us\tp95_us\tp99_us\tp999_us\n");
    for c in cells {
        let hw = treadmill_cluster::HardwareConfig::from_index(c.index);
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\n",
            c.index,
            hw.numa,
            hw.turbo,
            hw.dvfs,
            hw.nic,
            c.runs,
            c.samples,
            c.mean_us,
            c.p50_us,
            c.p95_us,
            c.p99_us,
            c.p999_us,
        ));
    }
    out
}

fn screen_tsv(master_seed: u64, base_hash: &str, plan: &ScreenedSweepPlan) -> String {
    let mut out = String::new();
    out.push_str(&provenance_line(master_seed, base_hash));
    out.push('\n');
    out.push_str(&format!("# threshold={:.6}\n", plan.threshold));
    out.push_str(
        "cell\tnuma\tturbo\tdvfs\tnic\tpred_p50_us\tpred_p95_us\tpred_p99_us\tutilization\ttail_effect\tflagged\n",
    );
    for c in &plan.cells {
        let hw = treadmill_cluster::HardwareConfig::from_index(c.index);
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{}\n",
            c.index,
            hw.numa,
            hw.turbo,
            hw.dvfs,
            hw.nic,
            c.p50_us,
            c.p95_us,
            c.p99_us,
            c.utilization,
            c.tail_effect,
            u8::from(c.flagged),
        ));
    }
    out
}

/// Runs the full 2⁴ factorial sweep: every hardware cell gets its own
/// crash-tolerant [`run_sweep`] into `hw_NN/` under `out_dir`, and the
/// across-run aggregates land in `factorial.tsv`.
///
/// # Errors
///
/// Same as [`run_sweep`].
pub fn run_factorial_sweep(
    config: &LoadTestConfig,
    out_dir: &Path,
    opts: &SweepOptions,
) -> Result<FactorialOutcome, SweepError> {
    factorial_sweep_impl(config, out_dir, opts, None, &mut SweepControl::default())
}

/// Runs the two-stage screened sweep: DES runs are spent only on the
/// cells the analytic screen flagged. A threshold-0 plan (every cell
/// flagged) reproduces [`run_factorial_sweep`]'s artifacts
/// byte-for-byte.
///
/// # Errors
///
/// [`SweepError::Screen`] for a malformed plan, otherwise the same as
/// [`run_sweep`].
pub fn run_screened_sweep(
    config: &LoadTestConfig,
    out_dir: &Path,
    opts: &SweepOptions,
    plan: &ScreenedSweepPlan,
) -> Result<FactorialOutcome, SweepError> {
    factorial_sweep_impl(config, out_dir, opts, Some(plan), &mut SweepControl::default())
}

/// [`run_screened_sweep`] with cooperative cancellation and progress —
/// the service entry point. `plan: None` is the full factorial.
///
/// # Errors
///
/// Same as [`run_screened_sweep`].
pub fn run_factorial_sweep_controlled(
    config: &LoadTestConfig,
    out_dir: &Path,
    opts: &SweepOptions,
    plan: Option<&ScreenedSweepPlan>,
    ctrl: &mut SweepControl<'_>,
) -> Result<FactorialOutcome, SweepError> {
    factorial_sweep_impl(config, out_dir, opts, plan, ctrl)
}

fn factorial_sweep_impl(
    config: &LoadTestConfig,
    out_dir: &Path,
    opts: &SweepOptions,
    plan: Option<&ScreenedSweepPlan>,
    ctrl: &mut SweepControl<'_>,
) -> Result<FactorialOutcome, SweepError> {
    config.validate()?;
    if let Some(plan) = plan {
        plan.validate()?;
    }
    fs::create_dir_all(out_dir)?;
    let base_hash = factorial_hash(config);
    let mut outcome = FactorialOutcome {
        factorial_path: out_dir.join("factorial.tsv"),
        ..FactorialOutcome::default()
    };

    if let Some(plan) = plan {
        let screen_path = out_dir.join("screen.tsv");
        write_atomic(
            &screen_path,
            screen_tsv(config.seed, &base_hash, plan).as_bytes(),
        )?;
        outcome.screen_path = Some(screen_path);
        outcome.screened_out = plan
            .cells
            .iter()
            .filter(|c| !c.flagged)
            .map(|c| c.index)
            .collect();
    }

    for index in 0..FACTORIAL_CELLS {
        if let Some(plan) = plan {
            if !plan.cells[index].flagged {
                continue;
            }
        }
        let cell_config = factorial_cell_config(config, index);
        let cell_dir = factorial_cell_dir(out_dir, index);
        let inner = run_sweep_controlled(&cell_config, &cell_dir, opts, ctrl)?;
        for warning in &inner.warnings {
            outcome.warnings.push(format!("hw {index}: {warning}"));
        }
        if inner.interrupted {
            outcome.interrupted = true;
            break;
        }
        let runs = inner.cells.len() as u64;
        let mean_of = |f: &dyn Fn(&CellSummary) -> f64| {
            inner.cells.iter().map(f).sum::<f64>() / runs.max(1) as f64
        };
        outcome.cells.push(FactorialCellResult {
            index,
            dir: cell_dir,
            runs,
            samples: inner.cells.iter().map(|c| c.samples).sum(),
            mean_us: mean_of(&|c| c.mean_us),
            p50_us: mean_of(&|c| c.p50_us),
            p95_us: mean_of(&|c| c.p95_us),
            p99_us: mean_of(&|c| c.p99_us),
            p999_us: mean_of(&|c| c.p999_us),
        });
        outcome.simulated.push(index);
    }

    if !outcome.interrupted {
        write_atomic(
            &outcome.factorial_path,
            factorial_tsv(config.seed, &base_hash, &outcome.cells).as_bytes(),
        )?;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LoadTestConfig {
        LoadTestConfig::from_json(
            r#"{
                "workload": { "workload": "memcached" },
                "target_rps": 120000,
                "clients": 2,
                "duration_ms": 60,
                "warmup_ms": 15,
                "seed": 5
            }"#,
        )
        .expect("valid config")
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tml-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn opts(runs: u64) -> SweepOptions {
        SweepOptions {
            runs,
            ckpt_events: 20_000,
            ..SweepOptions::default()
        }
    }

    #[test]
    fn sweep_writes_all_artifacts() {
        let dir = tempdir("basic");
        let outcome = run_sweep(&small_config(), &dir, &opts(2)).expect("sweep");
        assert_eq!(outcome.executed, vec![0, 1]);
        assert!(outcome.skipped.is_empty());
        assert!(!outcome.interrupted);
        for cell in 0..2 {
            let text =
                fs::read_to_string(dir.join(format!("cell_{cell}.tsv"))).expect("cell artifact");
            assert!(text.starts_with("# seed="), "provenance header: {text}");
            assert!(text.contains("config_hash="));
            assert!(text.contains("aggregate\t"));
            assert!(!dir.join(format!("cell_{cell}.ckpt")).exists());
            let attr = fs::read_to_string(dir.join(format!("cell_{cell}.attr.tsv")))
                .expect("attribution artifact");
            assert!(attr.starts_with("# seed="), "attr provenance: {attr}");
            assert!(attr.contains("share_instance_0"), "{attr}");
        }
        let summary = fs::read_to_string(dir.join("summary.tsv")).expect("summary");
        assert_eq!(summary.lines().count(), 2 + 2, "header lines + one row per cell");
        let attribution = fs::read_to_string(dir.join("attribution.tsv")).expect("attribution");
        // Provenance + one column header + one row per quantile per cell.
        assert_eq!(
            attribution.lines().count(),
            2 + 2 * ATTRIBUTION_QUANTILES.len(),
            "{attribution}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_skips_done_cells_and_reproduces_summary() {
        let golden_dir = tempdir("golden");
        run_sweep(&small_config(), &golden_dir, &opts(3)).expect("golden sweep");

        // Run one cell, then "crash" (stop), then resume for all three.
        let dir = tempdir("resumed");
        run_sweep(&small_config(), &dir, &opts(1)).expect("partial sweep");
        let resumed_opts = SweepOptions {
            resume: true,
            ..opts(3)
        };
        let outcome = run_sweep(&small_config(), &dir, &resumed_opts).expect("resumed sweep");
        assert_eq!(outcome.skipped, vec![0]);
        assert_eq!(outcome.executed, vec![1, 2]);

        for artifact in [
            "cell_0.tsv",
            "cell_1.tsv",
            "cell_2.tsv",
            "cell_0.attr.tsv",
            "summary.tsv",
            "attribution.tsv",
        ] {
            let golden = fs::read(golden_dir.join(artifact)).expect("golden artifact");
            let resumed = fs::read(dir.join(artifact)).expect("resumed artifact");
            assert_eq!(golden, resumed, "{artifact} differs after resume");
        }
        let _ = fs::remove_dir_all(&golden_dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_sweep_seals_checkpoint_and_resumes_bit_identical() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let golden_dir = tempdir("golden-cancel");
        run_sweep(&small_config(), &golden_dir, &opts(2)).expect("golden sweep");

        // Cancel at the first checkpoint of cell 0 — the graceful
        // SIGTERM path: the sweep returns Ok, interrupted, with the
        // checkpoint sealed and the journal still marking cell 0
        // running.
        let dir = tempdir("cancel");
        let cancel = AtomicBool::new(false);
        let mut flip = |event: SweepEvent| {
            if matches!(event, SweepEvent::Checkpointed { .. }) {
                cancel.store(true, Ordering::Relaxed);
            }
        };
        let mut ctrl = SweepControl {
            cancel: Some(&cancel),
            progress: Some(&mut flip),
        };
        let outcome =
            run_sweep_controlled(&small_config(), &dir, &opts(2), &mut ctrl).expect("sweep");
        assert!(outcome.interrupted);
        assert!(outcome.executed.is_empty());
        assert!(dir.join("cell_0.ckpt").exists(), "checkpoint must be sealed");

        // Resume without cancellation: byte-identical to the golden.
        let resumed_opts = SweepOptions {
            resume: true,
            ..opts(2)
        };
        let outcome = run_sweep(&small_config(), &dir, &resumed_opts).expect("resume");
        assert_eq!(outcome.resumed_cell, Some(0));
        assert!(!outcome.interrupted);
        for artifact in ["cell_0.tsv", "cell_1.tsv", "summary.tsv", "attribution.tsv"] {
            let golden = fs::read(golden_dir.join(artifact)).expect("golden artifact");
            let resumed = fs::read(dir.join(artifact)).expect("resumed artifact");
            assert_eq!(golden, resumed, "{artifact} differs after cancel+resume");
        }
        let _ = fs::remove_dir_all(&golden_dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_events_cover_the_cell_lifecycle() {
        let dir = tempdir("events");
        let mut events: Vec<String> = Vec::new();
        let mut sink = |event: SweepEvent| {
            events.push(match event {
                SweepEvent::CellSkipped { cell } => format!("skip {cell}"),
                SweepEvent::CellStarted { cell, .. } => format!("start {cell}"),
                SweepEvent::Checkpointed { cell, .. } => format!("ckpt {cell}"),
                SweepEvent::CellDone { cell, .. } => format!("done {cell}"),
                SweepEvent::Interrupted { .. } => "interrupted".to_string(),
            });
        };
        let mut ctrl = SweepControl {
            cancel: None,
            progress: Some(&mut sink),
        };
        run_sweep_controlled(&small_config(), &dir, &opts(2), &mut ctrl).expect("sweep");
        assert!(events.contains(&"start 0".to_string()), "{events:?}");
        assert!(events.contains(&"done 0".to_string()), "{events:?}");
        assert!(events.contains(&"start 1".to_string()), "{events:?}");
        assert!(events.contains(&"done 1".to_string()), "{events:?}");
        assert!(events.iter().any(|e| e.starts_with("ckpt")), "{events:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_restores_in_flight_cell_from_checkpoint() {
        let golden_dir = tempdir("golden-midcell");
        run_sweep(&small_config(), &golden_dir, &opts(1)).expect("golden sweep");

        // Hand-craft a crashed sweep: journal says cell 0 is running,
        // and a mid-run checkpoint exists.
        let dir = tempdir("midcell");
        let config = small_config();
        let test = config.build().expect("build");
        let hash = format!("{:016x}", fnv1a64(config.to_json().as_bytes()));
        append_journal(
            &dir.join("manifest.jsonl"),
            &ManifestLine {
                cell: 0,
                status: "running".to_string(),
                seed: test.derive_run_seed(0),
                config_hash: hash,
                result: None,
            },
        )
        .expect("journal");
        let mut run = ResumableRun::new(test, 0);
        run.step(30_000);
        write_atomic(&ckpt_path(&dir, 0), &run.checkpoint()).expect("checkpoint");

        let resumed_opts = SweepOptions {
            resume: true,
            ..opts(1)
        };
        let outcome = run_sweep(&config, &dir, &resumed_opts).expect("resumed sweep");
        assert_eq!(outcome.resumed_cell, Some(0));
        for artifact in ["cell_0.tsv", "summary.tsv"] {
            let golden = fs::read(golden_dir.join(artifact)).expect("golden artifact");
            let resumed = fs::read(dir.join(artifact)).expect("resumed artifact");
            assert_eq!(golden, resumed, "{artifact} differs after mid-cell resume");
        }
        let _ = fs::remove_dir_all(&golden_dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_line_is_tolerated() {
        let dir = tempdir("torn");
        run_sweep(&small_config(), &dir, &opts(1)).expect("sweep");
        // Append a torn (truncated) line, as a SIGKILL mid-append would.
        let mut file = OpenOptions::new()
            .append(true)
            .open(dir.join("manifest.jsonl"))
            .expect("open journal");
        file.write_all(b"{\"cell\":1,\"status\":\"run").expect("tear");
        drop(file);

        let resumed_opts = SweepOptions {
            resume: true,
            ..opts(2)
        };
        let outcome = run_sweep(&small_config(), &dir, &resumed_opts).expect("resumed");
        assert_eq!(outcome.skipped, vec![0]);
        assert_eq!(outcome.executed, vec![1]);
        assert!(outcome
            .warnings
            .iter()
            .any(|w| w.contains("torn/unparseable")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_restarts_the_cell() {
        let golden_dir = tempdir("golden-corrupt");
        run_sweep(&small_config(), &golden_dir, &opts(1)).expect("golden sweep");

        let dir = tempdir("corrupt");
        let config = small_config();
        let test = config.build().expect("build");
        let hash = format!("{:016x}", fnv1a64(config.to_json().as_bytes()));
        append_journal(
            &dir.join("manifest.jsonl"),
            &ManifestLine {
                cell: 0,
                status: "running".to_string(),
                seed: test.derive_run_seed(0),
                config_hash: hash,
                result: None,
            },
        )
        .expect("journal");
        fs::write(ckpt_path(&dir, 0), b"not a checkpoint").expect("corrupt ckpt");

        let resumed_opts = SweepOptions {
            resume: true,
            ..opts(1)
        };
        let outcome = run_sweep(&config, &dir, &resumed_opts).expect("resumed");
        assert_eq!(outcome.resumed_cell, None);
        assert!(outcome.warnings.iter().any(|w| w.contains("unusable")));
        assert_eq!(
            fs::read(golden_dir.join("cell_0.tsv")).expect("golden"),
            fs::read(dir.join("cell_0.tsv")).expect("restarted"),
            "restarted cell must still be bit-identical"
        );
        let _ = fs::remove_dir_all(&golden_dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_invalidates_old_journal() {
        let dir = tempdir("confchange");
        run_sweep(&small_config(), &dir, &opts(1)).expect("sweep");
        let mut changed = small_config();
        changed.target_rps = 90_000.0;
        let resumed_opts = SweepOptions {
            resume: true,
            ..opts(1)
        };
        let outcome = run_sweep(&changed, &dir, &resumed_opts).expect("resumed");
        // The old done line is for a different config hash: re-run.
        assert_eq!(outcome.executed, vec![0]);
        assert!(outcome.skipped.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    fn uniform_plan(flagged: &[usize], threshold: f64) -> ScreenedSweepPlan {
        ScreenedSweepPlan {
            threshold,
            cells: (0..FACTORIAL_CELLS)
                .map(|index| ScreenedCell {
                    index,
                    p50_us: 50.0,
                    p95_us: 80.0,
                    p99_us: 100.0 + index as f64,
                    utilization: 0.4,
                    tail_effect: index as f64 / 100.0,
                    flagged: flagged.contains(&index),
                })
                .collect(),
        }
    }

    #[test]
    fn screened_sweep_simulates_only_flagged_cells() {
        let dir = tempdir("screened");
        let plan = uniform_plan(&[3, 11], 0.05);
        let outcome =
            run_screened_sweep(&small_config(), &dir, &opts(1), &plan).expect("sweep");
        assert_eq!(outcome.simulated, vec![3, 11]);
        assert_eq!(outcome.screened_out.len(), 14);
        assert!(!outcome.interrupted);
        assert!(dir.join("hw_03/summary.tsv").exists());
        assert!(dir.join("hw_11/summary.tsv").exists());
        assert!(!dir.join("hw_00").exists(), "unflagged cell must not run");
        let screen = fs::read_to_string(dir.join("screen.tsv")).expect("screen artifact");
        assert!(screen.contains("# threshold=0.050000"), "{screen}");
        assert_eq!(screen.lines().count(), 3 + FACTORIAL_CELLS, "{screen}");
        let factorial =
            fs::read_to_string(dir.join("factorial.tsv")).expect("factorial artifact");
        assert_eq!(factorial.lines().count(), 2 + 2, "one row per simulated cell");
        // Rows are exactly the two flagged cells.
        assert!(factorial.contains("\n3\thigh\thigh\tlow\tlow\t"), "{factorial}");
        assert!(factorial.contains("\n11\thigh\thigh\tlow\thigh\t"), "{factorial}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_plans_are_typed_errors() {
        let dir = tempdir("badplan");
        let mut plan = uniform_plan(&[0], 0.0);
        plan.cells.truncate(4);
        let err = run_screened_sweep(&small_config(), &dir, &opts(1), &plan)
            .expect_err("short plan must be rejected");
        assert!(matches!(err, SweepError::Screen { .. }), "{err}");
        let mut plan = uniform_plan(&[0], 0.0);
        plan.cells[5].index = 9;
        let err = run_screened_sweep(&small_config(), &dir, &opts(1), &plan)
            .expect_err("misindexed plan must be rejected");
        assert!(err.to_string().contains("cell 5"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_outcome_reports_cell_summaries() {
        let dir = tempdir("cellsummaries");
        let outcome = run_sweep(&small_config(), &dir, &opts(2)).expect("sweep");
        assert_eq!(outcome.cells.len(), 2);
        for (i, cell) in outcome.cells.iter().enumerate() {
            assert_eq!(cell.cell, i as u64);
            assert!(cell.samples > 0);
            assert!(cell.p50_us > 0.0 && cell.p99_us >= cell.p95_us);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let dir = tempdir("atomic");
        let path = dir.join("results.tsv");
        write_atomic(&path, b"# seed=1 config_hash=x version=0\ndata\n").expect("write");
        assert!(path.exists());
        assert!(!dir.join("results.tsv.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
