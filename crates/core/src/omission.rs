//! Coordinated-omission correction.
//!
//! A rate-targeted closed-loop tester (§II-A's pitfall, as in Mutilate
//! or YCSB) stops *sampling* whenever the system stalls: the worker
//! that should have issued the next scheduled request is still waiting,
//! so the slow period contributes one huge sample instead of many. The
//! post-hoc correction (popularised by wrk2/HdrHistogram) backfills the
//! missing samples: a measured latency `L` that exceeds the intended
//! inter-send interval `I` also implies requests that *would* have been
//! sent at `I, 2I, …` and waited `L−I, L−2I, …`.
//!
//! This module implements that correction so the reproduction can show
//! (a) how much of the closed-loop bias it recovers and (b) that it is
//! still no substitute for an open-loop tester — it reconstructs
//! queue-wait arithmetic, not the queueing dynamics the unsent requests
//! would have caused.
//!
//! # Timeout-censored observations
//!
//! A robust load tester abandons requests (per-attempt timeouts,
//! connection resets). Dropping those from the distribution biases the
//! tail *down* — the abandoned requests are precisely the slowest ones.
//! [`correct_with_censored`] instead counts each abandoned request as a
//! **right-censored** observation at its censoring value (the elapsed
//! time when the tester gave up).
//!
//! Estimator choice: censoring here is *type-I* — every censored
//! request was observed for a known, deterministic horizon (the retry
//! budget), not a random one. Under type-I censoring the Kaplan–Meier
//! product-limit estimator degenerates to the empirical CDF below the
//! censoring point, so we use the simpler wrk2/HdrHistogram convention
//! directly: insert each censored request *at* its censoring value (a
//! lower bound on its true latency) and flag every quantile at or above
//! rank `1 − censored_fraction` as a lower bound rather than an
//! estimate. Quantiles below that rank are exact: all censored values
//! exceed every uncensored value at those ranks by construction,
//! because a request is only abandoned after outliving its timeout
//! budget. Each censored observation also receives the usual
//! coordinated-omission backfill — it occupied its connection for at
//! least its censored time.

/// Applies coordinated-omission correction to closed-loop latency
/// samples (µs), given the schedule's intended inter-send interval per
/// connection (µs).
///
/// Returns the corrected sample vector (original samples plus
/// backfill). Output order is not meaningful; callers compute
/// quantiles.
///
/// # Panics
///
/// Panics if `interval_us` is not positive.
///
/// # Examples
///
/// ```
/// use treadmill_core::omission::correct_coordinated_omission;
///
/// // One 10us sample and one 100us stall with a 20us schedule: the
/// // stall hides 4 additional virtual requests (80, 60, 40, 20us).
/// let corrected = correct_coordinated_omission(&[10.0, 100.0], 20.0);
/// assert_eq!(corrected.len(), 6);
/// assert!(corrected.contains(&80.0));
/// ```
pub fn correct_coordinated_omission(samples_us: &[f64], interval_us: f64) -> Vec<f64> {
    assert!(interval_us > 0.0, "send interval must be positive");
    let mut corrected = Vec::with_capacity(samples_us.len());
    for &latency in samples_us {
        corrected.push(latency);
        let mut implied = latency - interval_us;
        while implied > 0.0 {
            corrected.push(implied);
            implied -= interval_us;
        }
    }
    corrected
}

/// A latency distribution corrected for coordinated omission with
/// timeout-censored observations retained (see the module comment for
/// the estimator choice).
#[derive(Debug, Clone, PartialEq)]
pub struct CensoredCorrection {
    /// Corrected samples: observed latencies, censored lower bounds,
    /// and the coordinated-omission backfill of both. Unordered.
    pub corrected: Vec<f64>,
    /// Number of censored (abandoned) requests included.
    pub censored: usize,
    /// Quantiles at or above this rank are lower bounds, not
    /// estimates: `1 − censored / (observed + censored)`. 1.0 when
    /// nothing was censored.
    pub reliable_below: f64,
}

impl CensoredCorrection {
    /// The `q`-quantile of the corrected distribution and whether it is
    /// exact (`false` means it is only a lower bound because it falls
    /// in the censored tail).
    pub fn quantile(&self, q: f64) -> (f64, bool) {
        let value = treadmill_stats::quantile::quantile(&self.corrected, q);
        (value, q < self.reliable_below)
    }
}

/// Applies coordinated-omission correction to observed latencies plus
/// right-censored observations from abandoned requests (µs). Censored
/// values are inserted at their censoring point — a lower bound — and
/// backfilled like any other stall; the result records the rank above
/// which quantiles are lower bounds only.
///
/// # Panics
///
/// Panics if `interval_us` is not positive.
///
/// # Examples
///
/// ```
/// use treadmill_core::omission::correct_with_censored;
///
/// let c = correct_with_censored(&[10.0, 12.0, 11.0], &[5_000.0], 1_000.0);
/// assert_eq!(c.censored, 1);
/// // 3 observed + 1 censored + 4 backfill from the 5ms censored stall.
/// assert_eq!(c.corrected.len(), 8);
/// let (p50, exact) = c.quantile(0.5);
/// assert!(exact && p50 < 5_000.0);
/// let (p99, exact) = c.quantile(0.99);
/// assert!(!exact && p99 >= 4_000.0, "tail is a lower bound");
/// ```
pub fn correct_with_censored(
    samples_us: &[f64],
    censored_us: &[f64],
    interval_us: f64,
) -> CensoredCorrection {
    assert!(interval_us > 0.0, "send interval must be positive");
    let mut corrected = correct_coordinated_omission(samples_us, interval_us);
    for &lower_bound in censored_us {
        corrected.push(lower_bound);
        let mut implied = lower_bound - interval_us;
        while implied > 0.0 {
            corrected.push(implied);
            implied -= interval_us;
        }
    }
    let total = samples_us.len() + censored_us.len();
    let reliable_below = if total == 0 {
        1.0
    } else {
        1.0 - censored_us.len() as f64 / total as f64
    };
    CensoredCorrection {
        corrected,
        censored: censored_us.len(),
        reliable_below,
    }
}

/// Summary of a correction: how many samples were added and how the
/// p99 moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrectionReport {
    /// Original sample count.
    pub original_samples: usize,
    /// Samples after backfill.
    pub corrected_samples: usize,
    /// p99 before correction (µs).
    pub p99_before: f64,
    /// p99 after correction (µs).
    pub p99_after: f64,
}

/// Corrects and summarises in one step.
///
/// # Panics
///
/// Panics if `samples_us` is empty or `interval_us` is not positive.
pub fn correction_report(samples_us: &[f64], interval_us: f64) -> CorrectionReport {
    assert!(!samples_us.is_empty(), "no samples to correct");
    let corrected = correct_coordinated_omission(samples_us, interval_us);
    CorrectionReport {
        original_samples: samples_us.len(),
        corrected_samples: corrected.len(),
        p99_before: treadmill_stats::quantile::quantile(samples_us, 0.99),
        p99_after: treadmill_stats::quantile::quantile(&corrected, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_samples_pass_through() {
        let corrected = correct_coordinated_omission(&[5.0, 8.0, 3.0], 10.0);
        assert_eq!(corrected, vec![5.0, 8.0, 3.0]);
    }

    #[test]
    fn stall_backfills_arithmetic_sequence() {
        let corrected = correct_coordinated_omission(&[95.0], 20.0);
        assert_eq!(corrected, vec![95.0, 75.0, 55.0, 35.0, 15.0]);
    }

    #[test]
    fn correction_raises_the_tail() {
        // 99 fast samples and one 1ms stall under a 10us schedule.
        let mut samples = vec![10.0; 99];
        samples.push(1_000.0);
        let report = correction_report(&samples, 10.0);
        assert_eq!(report.original_samples, 100);
        assert!(report.corrected_samples > 190, "{}", report.corrected_samples);
        assert!(
            report.p99_after > report.p99_before * 5.0,
            "before {} after {}",
            report.p99_before,
            report.p99_after
        );
    }

    #[test]
    fn correction_is_monotone_in_interval() {
        let samples = vec![10.0, 500.0, 12.0];
        let tight = correct_coordinated_omission(&samples, 5.0).len();
        let loose = correct_coordinated_omission(&samples, 50.0).len();
        assert!(tight > loose, "tighter schedules imply more omissions");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        correct_coordinated_omission(&[1.0], 0.0);
    }

    #[test]
    fn no_censoring_matches_plain_correction() {
        let samples = [10.0, 95.0, 12.0];
        let c = correct_with_censored(&samples, &[], 20.0);
        assert_eq!(c.corrected, correct_coordinated_omission(&samples, 20.0));
        assert_eq!(c.censored, 0);
        assert_eq!(c.reliable_below, 1.0);
        assert!(c.quantile(0.999).1, "everything exact without censoring");
    }

    #[test]
    fn censored_requests_raise_the_tail() {
        // 99 fast samples; one request abandoned after 2ms. Dropping it
        // would report a ~10us p99; censoring keeps the tail honest.
        let samples = vec![10.0; 99];
        let plain_p99 = treadmill_stats::quantile::quantile(&samples, 0.99);
        let c = correct_with_censored(&samples, &[2_000.0], 100.0);
        let (p99, exact) = c.quantile(0.99);
        assert!(p99 > plain_p99 * 10.0, "censored tail: {p99}");
        assert!(!exact, "p99 falls in the censored mass: lower bound only");
        let (p50, exact) = c.quantile(0.5);
        assert_eq!(p50, 10.0);
        assert!(exact);
    }

    #[test]
    fn censored_mass_sets_the_reliability_rank() {
        let samples = vec![10.0; 90];
        let censored = vec![1_000.0; 10];
        let c = correct_with_censored(&samples, &censored, 10_000.0);
        assert_eq!(c.censored, 10);
        assert!((c.reliable_below - 0.9).abs() < 1e-12);
        assert!(c.quantile(0.89).1);
        assert!(!c.quantile(0.95).1);
    }

    #[test]
    fn censored_values_are_backfilled_like_stalls() {
        let c = correct_with_censored(&[], &[95.0], 20.0);
        let mut got = c.corrected.clone();
        got.sort_by(f64::total_cmp);
        assert_eq!(got, vec![15.0, 35.0, 55.0, 75.0, 95.0]);
    }
}
