//! Coordinated-omission correction.
//!
//! A rate-targeted closed-loop tester (§II-A's pitfall, as in Mutilate
//! or YCSB) stops *sampling* whenever the system stalls: the worker
//! that should have issued the next scheduled request is still waiting,
//! so the slow period contributes one huge sample instead of many. The
//! post-hoc correction (popularised by wrk2/HdrHistogram) backfills the
//! missing samples: a measured latency `L` that exceeds the intended
//! inter-send interval `I` also implies requests that *would* have been
//! sent at `I, 2I, …` and waited `L−I, L−2I, …`.
//!
//! This module implements that correction so the reproduction can show
//! (a) how much of the closed-loop bias it recovers and (b) that it is
//! still no substitute for an open-loop tester — it reconstructs
//! queue-wait arithmetic, not the queueing dynamics the unsent requests
//! would have caused.

/// Applies coordinated-omission correction to closed-loop latency
/// samples (µs), given the schedule's intended inter-send interval per
/// connection (µs).
///
/// Returns the corrected sample vector (original samples plus
/// backfill). Output order is not meaningful; callers compute
/// quantiles.
///
/// # Panics
///
/// Panics if `interval_us` is not positive.
///
/// # Examples
///
/// ```
/// use treadmill_core::omission::correct_coordinated_omission;
///
/// // One 10us sample and one 100us stall with a 20us schedule: the
/// // stall hides 4 additional virtual requests (80, 60, 40, 20us).
/// let corrected = correct_coordinated_omission(&[10.0, 100.0], 20.0);
/// assert_eq!(corrected.len(), 6);
/// assert!(corrected.contains(&80.0));
/// ```
pub fn correct_coordinated_omission(samples_us: &[f64], interval_us: f64) -> Vec<f64> {
    assert!(interval_us > 0.0, "send interval must be positive");
    let mut corrected = Vec::with_capacity(samples_us.len());
    for &latency in samples_us {
        corrected.push(latency);
        let mut implied = latency - interval_us;
        while implied > 0.0 {
            corrected.push(implied);
            implied -= interval_us;
        }
    }
    corrected
}

/// Summary of a correction: how many samples were added and how the
/// p99 moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrectionReport {
    /// Original sample count.
    pub original_samples: usize,
    /// Samples after backfill.
    pub corrected_samples: usize,
    /// p99 before correction (µs).
    pub p99_before: f64,
    /// p99 after correction (µs).
    pub p99_after: f64,
}

/// Corrects and summarises in one step.
///
/// # Panics
///
/// Panics if `samples_us` is empty or `interval_us` is not positive.
pub fn correction_report(samples_us: &[f64], interval_us: f64) -> CorrectionReport {
    assert!(!samples_us.is_empty(), "no samples to correct");
    let corrected = correct_coordinated_omission(samples_us, interval_us);
    CorrectionReport {
        original_samples: samples_us.len(),
        corrected_samples: corrected.len(),
        p99_before: treadmill_stats::quantile::quantile(samples_us, 0.99),
        p99_after: treadmill_stats::quantile::quantile(&corrected, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_samples_pass_through() {
        let corrected = correct_coordinated_omission(&[5.0, 8.0, 3.0], 10.0);
        assert_eq!(corrected, vec![5.0, 8.0, 3.0]);
    }

    #[test]
    fn stall_backfills_arithmetic_sequence() {
        let corrected = correct_coordinated_omission(&[95.0], 20.0);
        assert_eq!(corrected, vec![95.0, 75.0, 55.0, 35.0, 15.0]);
    }

    #[test]
    fn correction_raises_the_tail() {
        // 99 fast samples and one 1ms stall under a 10us schedule.
        let mut samples = vec![10.0; 99];
        samples.push(1_000.0);
        let report = correction_report(&samples, 10.0);
        assert_eq!(report.original_samples, 100);
        assert!(report.corrected_samples > 190, "{}", report.corrected_samples);
        assert!(
            report.p99_after > report.p99_before * 5.0,
            "before {} after {}",
            report.p99_before,
            report.p99_after
        );
    }

    #[test]
    fn correction_is_monotone_in_interval() {
        let samples = vec![10.0, 500.0, 12.0];
        let tight = correct_coordinated_omission(&samples, 5.0).len();
        let loose = correct_coordinated_omission(&samples, 50.0).len();
        assert!(tight > loose, "tighter schedules imply more omissions");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        correct_coordinated_omission(&[1.0], 0.0);
    }
}
