//! Convergence detection for the repeated-run procedure (§III-B,
//! *Performance hysteresis*): "multiple measurements are taken by
//! repeating the same experiment multiple times … until the mean of the
//! collected measurements has already converged".

use treadmill_stats::ci::mean_confidence_interval;
use treadmill_stats::StreamingStats;

/// Tracks a per-run metric (e.g. each run's p99) and decides when its
/// mean has converged.
///
/// # Examples
///
/// ```
/// use treadmill_core::ConvergenceTracker;
///
/// let mut tracker = ConvergenceTracker::new(3, 0.05, 0.95);
/// tracker.record(100.0);
/// tracker.record(101.0);
/// assert!(!tracker.converged(), "below the minimum run count");
/// tracker.record(99.0);
/// tracker.record(100.5);
/// assert!(tracker.converged());
/// ```
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    stats: StreamingStats,
    values: Vec<f64>,
    min_runs: usize,
    relative_tolerance: f64,
    confidence: f64,
}

impl ConvergenceTracker {
    /// Creates a tracker that declares convergence once at least
    /// `min_runs` values are recorded and the `confidence`-level CI of
    /// the mean has relative half-width below `relative_tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if `min_runs < 2`, `relative_tolerance <= 0`, or
    /// `confidence` outside `(0, 1)`.
    pub fn new(min_runs: usize, relative_tolerance: f64, confidence: f64) -> Self {
        assert!(min_runs >= 2, "need at least two runs to estimate spread");
        assert!(relative_tolerance > 0.0, "tolerance must be positive");
        assert!(confidence > 0.0 && confidence < 1.0, "confidence outside (0, 1)");
        ConvergenceTracker {
            stats: StreamingStats::new(),
            values: Vec::new(),
            min_runs,
            relative_tolerance,
            confidence,
        }
    }

    /// Records one run's metric value.
    pub fn record(&mut self, value: f64) {
        self.stats.record(value);
        self.values.push(value);
    }

    /// Number of runs recorded.
    pub fn runs(&self) -> usize {
        self.values.len()
    }

    /// The running mean.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// The sample standard deviation across runs.
    pub fn stddev(&self) -> f64 {
        self.stats.sample_stddev()
    }

    /// All recorded values, in order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// True once the mean estimate has converged.
    pub fn converged(&self) -> bool {
        if self.values.len() < self.min_runs {
            return false;
        }
        if self.stats.mean() == 0.0 {
            return self.stats.sample_stddev() == 0.0;
        }
        let ci = mean_confidence_interval(&self.stats, self.confidence);
        ci.relative_half_width() < self.relative_tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_minimum_runs() {
        let mut t = ConvergenceTracker::new(5, 0.5, 0.95);
        for _ in 0..4 {
            t.record(100.0);
        }
        assert!(!t.converged());
        t.record(100.0);
        assert!(t.converged());
    }

    #[test]
    fn high_variance_delays_convergence() {
        let mut t = ConvergenceTracker::new(2, 0.02, 0.95);
        // Alternating values with ~30% spread: not converged early.
        for i in 0..6 {
            t.record(if i % 2 == 0 { 100.0 } else { 160.0 });
        }
        assert!(!t.converged(), "spread too wide at {} runs", t.runs());
        // With many more runs the CI tightens and it converges.
        for i in 6..600 {
            t.record(if i % 2 == 0 { 100.0 } else { 160.0 });
        }
        assert!(t.converged());
        assert!((t.mean() - 130.0).abs() < 1.0);
    }

    #[test]
    fn identical_values_converge_immediately() {
        let mut t = ConvergenceTracker::new(2, 0.01, 0.95);
        t.record(42.0);
        t.record(42.0);
        assert!(t.converged());
        assert_eq!(t.stddev(), 0.0);
    }

    #[test]
    fn values_retained_in_order() {
        let mut t = ConvergenceTracker::new(2, 0.1, 0.9);
        t.record(1.0);
        t.record(2.0);
        assert_eq!(t.values(), &[1.0, 2.0]);
        assert_eq!(t.runs(), 2);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn min_runs_validated() {
        ConvergenceTracker::new(1, 0.1, 0.95);
    }
}
