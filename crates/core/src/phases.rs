//! Treadmill's three execution phases (§III-A, *Statistical
//! aggregation*): warm-up (samples discarded), calibration (raw samples
//! buffered to choose histogram bounds), measurement (binned
//! collection).

use treadmill_sim_core::{SimDuration, SimTime};
use treadmill_stats::AdaptiveHistogram;

/// Which phase an instance is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Samples are being discarded while the system reaches steady
    /// state.
    Warmup,
    /// Raw samples are buffered to calibrate histogram bin bounds.
    Calibration,
    /// Samples are aggregated into the calibrated histogram.
    Measurement,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Warmup => write!(f, "warm-up"),
            Phase::Calibration => write!(f, "calibration"),
            Phase::Measurement => write!(f, "measurement"),
        }
    }
}

/// Classifies the current phase from the warm-up deadline and the
/// histogram's calibration state.
pub fn current_phase(
    now: SimTime,
    warmup_until: SimTime,
    histogram: &AdaptiveHistogram,
) -> Phase {
    if now < warmup_until {
        Phase::Warmup
    } else if !histogram.is_calibrated() {
        Phase::Calibration
    } else {
        Phase::Measurement
    }
}

/// Phase configuration for an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseConfig {
    /// How long to discard samples at the start of a run.
    pub warmup: SimDuration,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            warmup: SimDuration::from_millis(100),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_stats::HistogramConfig;

    #[test]
    fn phases_progress() {
        let warmup_until = SimTime::from_millis(10);
        let mut hist = AdaptiveHistogram::with_config(HistogramConfig {
            calibration_samples: 3,
            ..Default::default()
        });
        assert_eq!(
            current_phase(SimTime::from_millis(5), warmup_until, &hist),
            Phase::Warmup
        );
        assert_eq!(
            current_phase(SimTime::from_millis(15), warmup_until, &hist),
            Phase::Calibration
        );
        for v in [1.0, 2.0, 3.0] {
            hist.record(v);
        }
        assert_eq!(
            current_phase(SimTime::from_millis(15), warmup_until, &hist),
            Phase::Measurement
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Phase::Warmup.to_string(), "warm-up");
        assert_eq!(Phase::Calibration.to_string(), "calibration");
        assert_eq!(Phase::Measurement.to_string(), "measurement");
    }
}
