//! Stepped, checkpointable execution of one load-test run.
//!
//! [`ResumableRun`] drives the same engine [`LoadTest::run`] would
//! build, but in bounded event batches, with three extras a long
//! unattended run needs:
//!
//! * **checkpointing** — [`ResumableRun::checkpoint`] captures the
//!   engine snapshot ([`treadmill_cluster::checkpoint`]) *plus* the
//!   streaming tail estimators into one sealed envelope;
//!   [`ResumableRun::resume`] restores both, so a run killed at any
//!   event and resumed from its last checkpoint finishes with a
//!   bit-identical [`LoadTestReport`];
//! * **live tail monitoring** — constant-memory streaming estimators
//!   (mean/variance, P² p99, a log-histogram) over the post-warm-up
//!   user latencies, available mid-run without touching the record
//!   vectors;
//! * **auditing** — [`ResumableRun::audit`] runs the cluster invariant
//!   checks against the live engine, e.g. at every checkpoint.

use treadmill_cluster::{checkpoint, merge_results, ClientMachine, ClusterWorld, ShardedCluster};
use treadmill_sim_core::snapshot::{self, SnapshotError, SnapshotReader, SnapshotWriter};
use treadmill_sim_core::{Engine, SimTime};
use treadmill_stats::{
    LogHistogram, LogHistogramState, P2Quantile, P2State, StreamingStats, StreamingState,
};

use crate::runner::{LoadTest, LoadTestReport};

/// Constant-memory estimators over the measurement-window latencies,
/// fed incrementally as records arrive.
#[derive(Debug, Clone)]
pub struct TailMonitor {
    stats: StreamingStats,
    p99: P2Quantile,
    histogram: LogHistogram,
}

/// Histogram coverage: 1 µs – 10 s at 1% buckets matches the adaptive
/// instance histogram's dynamic range.
const HIST_MIN_US: f64 = 1.0;
const HIST_MAX_US: f64 = 10_000_000.0;
const HIST_PRECISION: f64 = 0.01;

impl TailMonitor {
    fn new() -> Self {
        TailMonitor {
            stats: StreamingStats::new(),
            p99: P2Quantile::new(0.99),
            histogram: LogHistogram::new(HIST_MIN_US, HIST_MAX_US, HIST_PRECISION),
        }
    }

    fn observe(&mut self, latency_us: f64) {
        self.stats.record(latency_us);
        self.p99.record(latency_us);
        self.histogram.record(latency_us);
    }

    /// Samples observed so far.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Running mean latency (µs).
    pub fn mean_us(&self) -> f64 {
        self.stats.mean()
    }

    /// The P² running p99 estimate (µs). NaN until the first sample
    /// lands — an early checkpoint (mid-warmup, say) has no tail yet,
    /// and a monitoring read must not abort the sweep.
    pub fn p99_us(&self) -> f64 {
        if self.stats.count() == 0 {
            return f64::NAN;
        }
        self.p99.estimate()
    }

    /// A histogram quantile estimate (µs); NaN before the first sample.
    pub fn quantile_us(&self, p: f64) -> f64 {
        if self.stats.count() == 0 {
            return f64::NAN;
        }
        self.histogram.quantile(p)
    }

    fn write(&self, w: &mut SnapshotWriter) {
        let s = self.stats.state();
        w.put_u64(s.count);
        w.put_f64(s.mean);
        w.put_f64(s.m2);
        w.put_f64(s.min);
        w.put_f64(s.max);

        let p = self.p99.state();
        w.put_f64(p.p);
        for group in [&p.heights, &p.positions, &p.desired, &p.increments] {
            for &v in group {
                w.put_f64(v);
            }
        }
        w.put_usize(p.count);
        w.put_u64(p.initial.len() as u64);
        for &v in &p.initial {
            w.put_f64(v);
        }

        let h = self.histogram.state();
        w.put_f64(h.min);
        w.put_f64(h.log_min);
        w.put_f64(h.log_ratio);
        w.put_u64(h.counts.len() as u64);
        for &c in &h.counts {
            w.put_u64(c);
        }
        w.put_u64(h.underflow);
        w.put_u64(h.overflow);
        w.put_u64(h.total);
        w.put_f64(h.sum);
        w.put_f64(h.max_seen);
    }

    fn read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let stats = StreamingStats::from_state(StreamingState {
            count: r.get_u64()?,
            mean: r.get_f64()?,
            m2: r.get_f64()?,
            min: r.get_f64()?,
            max: r.get_f64()?,
        });

        let p = r.get_f64()?;
        let mut groups = [[0.0f64; 5]; 4];
        for group in &mut groups {
            for v in group.iter_mut() {
                *v = r.get_f64()?;
            }
        }
        let count = r.get_usize()?;
        let n_initial = r.get_u64()?;
        if n_initial > 5 {
            return Err(SnapshotError::Malformed("oversized P2 warm-up buffer"));
        }
        let mut initial = Vec::with_capacity(5);
        for _ in 0..n_initial {
            initial.push(r.get_f64()?);
        }
        let p99 = P2Quantile::from_state(P2State {
            p,
            heights: groups[0],
            positions: groups[1],
            desired: groups[2],
            increments: groups[3],
            count,
            initial,
        });

        let min = r.get_f64()?;
        let log_min = r.get_f64()?;
        let log_ratio = r.get_f64()?;
        let n_counts = r.get_u64()?;
        let n_counts = usize::try_from(n_counts)
            .map_err(|_| SnapshotError::Malformed("histogram size overflows usize"))?;
        let mut counts = Vec::with_capacity(n_counts);
        for _ in 0..n_counts {
            counts.push(r.get_u64()?);
        }
        let histogram = LogHistogram::from_state(LogHistogramState {
            min,
            log_min,
            log_ratio,
            counts,
            underflow: r.get_u64()?,
            overflow: r.get_u64()?,
            total: r.get_u64()?,
            sum: r.get_f64()?,
            max_seen: r.get_f64()?,
        });

        Ok(TailMonitor {
            stats,
            p99,
            histogram,
        })
    }
}

/// The execution substrate behind a [`ResumableRun`]: one legacy
/// engine, or a sharded parallel cluster (`servers > 1`).
// One Body exists per run, so the inline-engine variant's size is not
// worth a heap indirection on the single-server hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Body {
    Single {
        engine: Engine<ClusterWorld>,
        /// Per-client count of records already folded into the monitor.
        consumed: Vec<usize>,
    },
    Sharded {
        cluster: ShardedCluster,
        /// Per-shard, per-client folded-record counts. The monitor is
        /// fed in shard-then-client order, a pure function of simulated
        /// state — thread count never changes the observation stream.
        consumed: Vec<Vec<usize>>,
    },
}

/// One load-test run executing in bounded steps with checkpoint/resume.
#[derive(Debug)]
pub struct ResumableRun {
    test: LoadTest,
    run_seed: u64,
    body: Body,
    monitor: TailMonitor,
}

/// Folds each client's not-yet-seen records into the monitor.
fn fold_records(
    monitor: &mut TailMonitor,
    warmup: SimTime,
    consumed: &mut [usize],
    clients: &[ClientMachine],
) {
    for (consumed, client) in consumed.iter_mut().zip(clients) {
        for record in &client.records[*consumed..] {
            if record.t_generated >= warmup {
                monitor.observe(record.user_latency_us());
            }
        }
        *consumed = client.records.len();
    }
}

fn write_consumed(w: &mut SnapshotWriter, consumed: &[usize]) {
    w.put_u64(consumed.len() as u64);
    for &n in consumed {
        w.put_usize(n);
    }
}

fn read_consumed(r: &mut SnapshotReader<'_>) -> Result<Vec<usize>, SnapshotError> {
    let n = r.get_u64()?;
    let n = usize::try_from(n).map_err(|_| SnapshotError::Malformed("length overflows usize"))?;
    let mut consumed = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        consumed.push(r.get_usize()?);
    }
    Ok(consumed)
}

impl ResumableRun {
    /// Starts run number `run_index` of `test` from event zero. A test
    /// with `servers > 1` steps the sharded parallel executor; the
    /// checkpoint format, monitor, and report are the same either way.
    pub fn new(test: LoadTest, run_index: u64) -> Self {
        let run_seed = test.derive_run_seed(run_index);
        let body = if test.is_sharded() {
            let cluster = test.build_sharded(run_seed);
            let consumed = (0..cluster.n_shards())
                .map(|i| vec![0; cluster.engine(i).world().clients.len()])
                .collect();
            Body::Sharded { cluster, consumed }
        } else {
            let engine = test.build_cluster(run_seed);
            let consumed = vec![0; engine.world().clients.len()];
            Body::Single { engine, consumed }
        };
        ResumableRun {
            test,
            run_seed,
            body,
            monitor: TailMonitor::new(),
        }
    }

    /// Executes up to `max_events` events and folds newly completed
    /// records into the tail monitor. Returns the number executed;
    /// `0` means the run has drained. A sharded run stops at the first
    /// synchronization-round boundary past the budget, so it may
    /// slightly overshoot `max_events`.
    pub fn step(&mut self, max_events: u64) -> u64 {
        let executed = match &mut self.body {
            Body::Single { engine, .. } => engine.run_events(max_events),
            Body::Sharded { cluster, .. } => cluster.run(max_events),
        };
        self.drain_new_records();
        executed
    }

    fn drain_new_records(&mut self) {
        let warmup = SimTime::ZERO + self.test.warmup_window();
        match &mut self.body {
            Body::Single { engine, consumed } => {
                fold_records(&mut self.monitor, warmup, consumed, &engine.world().clients);
            }
            Body::Sharded { cluster, consumed } => {
                for (i, consumed) in consumed.iter_mut().enumerate() {
                    let engine = cluster.engine(i);
                    fold_records(&mut self.monitor, warmup, consumed, &engine.world().clients);
                }
            }
        }
    }

    /// True once every event has drained.
    pub fn is_finished(&self) -> bool {
        match &self.body {
            Body::Single { engine, .. } => engine.pending_events() == 0,
            Body::Sharded { cluster, .. } => cluster.is_finished(),
        }
    }

    /// Events executed so far.
    pub fn events_executed(&self) -> u64 {
        match &self.body {
            Body::Single { engine, .. } => engine.events_executed(),
            Body::Sharded { cluster, .. } => cluster.events_executed(),
        }
    }

    /// The live tail monitor.
    pub fn tail(&self) -> &TailMonitor {
        &self.monitor
    }

    /// Runs the cluster invariant auditor against the live engine(s).
    /// See [`treadmill_cluster::audit_invariants`]; a sharded run uses
    /// [`treadmill_cluster::audit_sharded`], which adds the cross-shard
    /// message-conservation check.
    pub fn audit(&self, max_pending: usize) -> Vec<String> {
        match &self.body {
            Body::Single { engine, .. } => treadmill_cluster::audit_invariants(engine, max_pending),
            Body::Sharded { cluster, .. } => treadmill_cluster::audit_sharded(cluster, max_pending),
        }
    }

    /// Captures the full run state — engine snapshot plus streaming
    /// estimators — as one sealed, checksummed envelope. The engine
    /// payload is embedded directly (not double-sealed), so the whole
    /// checkpoint costs one serialisation pass and one checksum.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.checkpoint_into(&mut buf);
        buf
    }

    /// [`ResumableRun::checkpoint`], but recycling `buf`'s allocation.
    /// A loop that checkpoints every few million events should pass the
    /// same buffer each time: reusing the multi-megabyte backing store
    /// avoids a fresh allocation — and its page-fault cost — per
    /// checkpoint, which is most of the snapshot wall time.
    pub fn checkpoint_into(&self, buf: &mut Vec<u8>) {
        let scratch = std::mem::take(buf);
        let hint = match &self.body {
            Body::Single { engine, .. } => checkpoint::payload_size_hint(engine),
            Body::Sharded { cluster, .. } => (0..cluster.n_shards())
                .map(|i| checkpoint::payload_size_hint(&cluster.engine(i)))
                .sum(),
        };
        let mut w = SnapshotWriter::sealing_reuse(scratch, hint + 8192);
        w.put_u64(self.run_seed);
        // Shard count discriminates the envelope shape: 0 = the legacy
        // single-engine layout, n ≥ 1 = n (payload, consumed) sections
        // in shard order. A sharded checkpoint is only ever taken at a
        // round boundary (outboxes empty), so per-shard payloads are
        // self-contained.
        match &self.body {
            Body::Single { engine, consumed } => {
                w.put_u32(0);
                checkpoint::write_payload(engine, &mut w);
                write_consumed(&mut w, consumed);
            }
            Body::Sharded { cluster, consumed } => {
                w.put_u32(u32::try_from(cluster.n_shards()).unwrap_or(u32::MAX));
                for (i, consumed) in consumed.iter().enumerate() {
                    checkpoint::write_payload(&cluster.engine(i), &mut w);
                    write_consumed(&mut w, consumed);
                }
            }
        }
        self.monitor.write(&mut w);
        *buf = w.into_sealed();
    }

    /// Restores a run from a [`ResumableRun::checkpoint`] envelope.
    /// `test` and `run_index` must describe the same configuration the
    /// checkpoint was taken from.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the envelope is corrupt, was
    /// taken under a different seed, or disagrees structurally with
    /// the configuration.
    pub fn resume(test: LoadTest, run_index: u64, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let payload = snapshot::open(bytes)?;
        let mut r = SnapshotReader::new(payload);
        let run_seed = r.get_u64()?;
        if run_seed != test.derive_run_seed(run_index) {
            return Err(SnapshotError::Malformed(
                "checkpoint was taken under a different run seed",
            ));
        }
        let n_shards = r.get_u32()?;
        let body = if n_shards == 0 {
            if test.is_sharded() {
                return Err(SnapshotError::Malformed(
                    "unsharded checkpoint for a sharded configuration",
                ));
            }
            let mut engine = test.build_cluster(run_seed);
            checkpoint::read_payload(&mut engine, &mut r)?;
            let consumed = read_consumed(&mut r)?;
            if consumed.len() != engine.world().clients.len() {
                return Err(SnapshotError::Malformed("client count mismatch"));
            }
            Body::Single { engine, consumed }
        } else {
            if !test.is_sharded() || u64::from(n_shards) != u64::from(test.server_count()) {
                return Err(SnapshotError::Malformed("shard count mismatch"));
            }
            let mut cluster = test.build_sharded(run_seed);
            let mut consumed = Vec::with_capacity(cluster.n_shards());
            for i in 0..cluster.n_shards() {
                let engine = cluster.engine_mut(i);
                checkpoint::read_payload(engine, &mut r)?;
                let c = read_consumed(&mut r)?;
                if c.len() != engine.world().clients.len() {
                    return Err(SnapshotError::Malformed("client count mismatch"));
                }
                consumed.push(c);
            }
            Body::Sharded { cluster, consumed }
        };
        let monitor = TailMonitor::read(&mut r)?;
        r.finish()?;
        Ok(ResumableRun {
            test,
            run_seed,
            body,
            monitor,
        })
    }

    /// Drains the remaining events and assembles the report —
    /// bit-identical to what `test.run(run_index)` would have produced
    /// in one uninterrupted execution.
    pub fn finish(self) -> LoadTestReport {
        let ResumableRun { test, body, .. } = self;
        match body {
            Body::Single { mut engine, .. } => {
                engine.run_to_completion();
                test.report_from_result(treadmill_cluster::extract_result(engine))
            }
            Body::Sharded { mut cluster, .. } => {
                cluster.run_to_completion();
                test.report_from_result(merge_results(cluster.into_results()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use treadmill_sim_core::SimDuration;
    use treadmill_workloads::Memcached;

    fn quick_test() -> LoadTest {
        LoadTest::new(Arc::new(Memcached::default()), 150_000.0)
            .clients(2)
            .duration(SimDuration::from_millis(80))
            .warmup(SimDuration::from_millis(20))
            .seed(9)
    }

    fn assert_reports_identical(a: &LoadTestReport, b: &LoadTestReport) {
        assert_eq!(a.aggregated, b.aggregated);
        assert_eq!(a.per_instance, b.per_instance);
        assert_eq!(a.run.client_records, b.run.client_records);
        assert_eq!(a.run.events_executed, b.run.events_executed);
        assert_eq!(a.run.completed_at, b.run.completed_at);
    }

    #[test]
    fn stepped_run_matches_one_shot_run() {
        let golden = quick_test().run(0);
        let mut run = ResumableRun::new(quick_test(), 0);
        while run.step(10_000) > 0 {}
        assert!(run.is_finished());
        assert_reports_identical(&golden, &run.finish());
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let golden = quick_test().run(0);

        // Simulate a crash: step partway, checkpoint, drop everything.
        let bytes = {
            let mut run = ResumableRun::new(quick_test(), 0);
            run.step(40_000);
            run.checkpoint()
        };
        let mut resumed = ResumableRun::resume(quick_test(), 0, &bytes).expect("resume");
        while resumed.step(10_000) > 0 {}
        assert!(resumed.audit(usize::MAX).is_empty());
        assert_reports_identical(&golden, &resumed.finish());
    }

    #[test]
    fn tail_monitor_survives_resume_bit_exactly() {
        // The monitor folds each client's new records at every step
        // boundary, so its observation interleaving depends on the step
        // cadence; both runs must use the same cadence and the property
        // under test is that the checkpoint itself perturbs nothing.
        let mut straight = ResumableRun::new(quick_test(), 0);
        straight.step(33_333);
        while straight.step(5_000) > 0 {}

        // Interrupted at the same point, then resumed.
        let bytes = {
            let mut run = ResumableRun::new(quick_test(), 0);
            run.step(33_333);
            run.checkpoint()
        };
        let mut resumed = ResumableRun::resume(quick_test(), 0, &bytes).expect("resume");
        while resumed.step(5_000) > 0 {}

        assert_eq!(straight.tail().count(), resumed.tail().count());
        assert_eq!(
            straight.tail().mean_us().to_bits(),
            resumed.tail().mean_us().to_bits()
        );
        assert_eq!(
            straight.tail().p99_us().to_bits(),
            resumed.tail().p99_us().to_bits()
        );
        assert_eq!(
            straight.tail().quantile_us(0.999).to_bits(),
            resumed.tail().quantile_us(0.999).to_bits()
        );
    }

    fn sharded_test(threads: u32) -> LoadTest {
        LoadTest::new(Arc::new(Memcached::default()), 120_000.0)
            .clients(2)
            .duration(SimDuration::from_millis(60))
            .warmup(SimDuration::from_millis(15))
            .seed(31)
            .servers(3)
            .remote_every(4)
            .threads(threads)
    }

    #[test]
    fn sharded_stepped_run_matches_one_shot_run() {
        let golden = sharded_test(1).run(0);
        let mut run = ResumableRun::new(sharded_test(2), 0);
        while run.step(10_000) > 0 {}
        assert!(run.is_finished());
        assert_reports_identical(&golden, &run.finish());
    }

    #[test]
    fn sharded_kill_and_resume_is_bit_identical() {
        let golden = sharded_test(1).run(0);

        // Crash a 2-thread sweep mid-run, resume it single-threaded:
        // the checkpoint sits at a round boundary, so the thread count
        // on either side of the crash is irrelevant.
        let bytes = {
            let mut run = ResumableRun::new(sharded_test(2), 0);
            run.step(30_000);
            assert_eq!(run.audit(usize::MAX), Vec::<String>::new());
            run.checkpoint()
        };
        let mut resumed = ResumableRun::resume(sharded_test(1), 0, &bytes).expect("resume");
        while resumed.step(10_000) > 0 {}
        assert!(resumed.audit(usize::MAX).is_empty());
        assert_reports_identical(&golden, &resumed.finish());
    }

    #[test]
    fn sharded_checkpoint_rejected_by_unsharded_config() {
        let mut run = ResumableRun::new(sharded_test(1), 0);
        run.step(10_000);
        let bytes = run.checkpoint();
        let unsharded = sharded_test(1).servers(1);
        assert!(matches!(
            ResumableRun::resume(unsharded, 0, &bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_run_index_is_rejected() {
        let mut run = ResumableRun::new(quick_test(), 0);
        run.step(10_000);
        let bytes = run.checkpoint();
        assert!(matches!(
            ResumableRun::resume(quick_test(), 1, &bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let mut run = ResumableRun::new(quick_test(), 0);
        run.step(10_000);
        let bytes = run.checkpoint();
        assert!(ResumableRun::resume(quick_test(), 0, &bytes[..bytes.len() - 7]).is_err());
    }
}
