//! Latency-over-time tracking.
//!
//! A single summary hides transients: warm-up effects, governor ramps,
//! thermal throttling onsets. The timeline splits a run into fixed
//! windows and summarises each, which is how the reproduction checks
//! that a run reached steady state before its measurement window — the
//! implicit assumption behind the paper's warm-up phase.

use treadmill_cluster::ResponseRecord;
use treadmill_sim_core::{SimDuration, SimTime};
use treadmill_stats::LatencySummary;

/// One timeline window's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Summary of requests *generated* within the window, or `None` if
    /// the window saw no completed requests.
    pub summary: Option<LatencySummary>,
}

impl TimelineWindow {
    /// Requests observed in this window.
    pub fn count(&self) -> u64 {
        self.summary.as_ref().map_or(0, |s| s.count)
    }
}

/// Builds a latency timeline from completed-request records.
///
/// # Panics
///
/// Panics if `window` is zero.
///
/// # Examples
///
/// ```
/// use treadmill_core::timeline::timeline;
/// use treadmill_sim_core::SimDuration;
///
/// let windows = timeline(&[], SimDuration::from_millis(10));
/// assert!(windows.is_empty());
/// ```
// Window counts (horizon / window width) fit usize on the 64-bit
// targets the simulator supports.
#[allow(clippy::cast_possible_truncation)]
pub fn timeline(records: &[ResponseRecord], window: SimDuration) -> Vec<TimelineWindow> {
    assert!(!window.is_zero(), "zero-length window");
    if records.is_empty() {
        return Vec::new();
    }
    let horizon = records
        .iter()
        .map(|r| r.t_generated)
        .max()
        .expect("nonempty records");
    let num_windows = horizon.as_nanos() / window.as_nanos() + 1;
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); num_windows as usize];
    for record in records {
        let idx = (record.t_generated.as_nanos() / window.as_nanos()) as usize;
        buckets[idx].push(record.user_latency_us());
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, samples)| {
            let start = SimTime::from_nanos(i as u64 * window.as_nanos());
            TimelineWindow {
                start,
                end: start + window,
                summary: if samples.is_empty() {
                    None
                } else {
                    Some(LatencySummary::from_samples(&samples))
                },
            }
        })
        .collect()
}

/// Finds the first window index from which the p99 stays within
/// `tolerance` (relative) of the final-third average — a steady-state
/// detector used to validate warm-up window choices.
///
/// Windows with fewer than half the median request count (e.g. the
/// partial window at the end of a run, or the drain period) are
/// ignored: their quantile estimates are too noisy to gate on.
///
/// Returns `None` if the timeline never settles.
pub fn steady_state_onset(windows: &[TimelineWindow], tolerance: f64) -> Option<usize> {
    let mut counts: Vec<u64> = windows.iter().map(TimelineWindow::count).collect();
    counts.sort_unstable();
    let median_count = counts.get(counts.len() / 2).copied().unwrap_or(0);
    let p99s: Vec<Option<f64>> = windows
        .iter()
        .map(|w| {
            w.summary
                .as_ref()
                .filter(|s| s.count * 2 >= median_count)
                .map(|s| s.p99)
        })
        .collect();
    let settled: Vec<f64> = p99s
        .iter()
        .skip(p99s.len() * 2 / 3)
        .flatten()
        .copied()
        .collect();
    if settled.is_empty() {
        return None;
    }
    let reference = settled.iter().sum::<f64>() / settled.len() as f64;
    for (i, p99) in p99s.iter().enumerate() {
        if let Some(p99) = p99 {
            let within = (p99 / reference - 1.0).abs() <= tolerance;
            // All subsequent windows must also be within tolerance.
            if within
                && p99s[i..].iter().flatten().all(|v| {
                    (v / reference - 1.0).abs() <= tolerance
                })
            {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_cluster::{Request, RequestId};
    use treadmill_workloads::{OpClass, RequestProfile};

    fn record(gen_us: u64, latency_us: u64) -> ResponseRecord {
        let mut req = Request::new(
            RequestId(gen_us),
            0,
            0,
            RequestProfile {
                class: OpClass::Read,
                request_bytes: 64,
                response_bytes: 64,
                cpu_ns: 1.0,
                mem_ns: 1.0,
            },
            SimTime::from_micros(gen_us),
        );
        req.t_delivered = SimTime::from_micros(gen_us + latency_us);
        ResponseRecord::from_request(&req)
    }

    #[test]
    fn windows_partition_by_generation_time() {
        let records = vec![record(100, 10), record(5_100, 20), record(5_200, 30)];
        let windows = timeline(&records, SimDuration::from_millis(5));
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].count(), 1);
        assert_eq!(windows[1].count(), 2);
        assert_eq!(windows[0].start, SimTime::ZERO);
        assert_eq!(windows[1].start, SimTime::from_millis(5));
    }

    #[test]
    fn empty_windows_are_none() {
        let records = vec![record(0, 1), record(20_000, 1)];
        let windows = timeline(&records, SimDuration::from_millis(5));
        assert_eq!(windows.len(), 5);
        assert!(windows[1].summary.is_none());
        assert!(windows[2].summary.is_none());
    }

    #[test]
    fn steady_state_detected_after_ramp() {
        // Latency ramps down over the first 4 windows, then settles.
        let mut records = Vec::new();
        for window in 0..12u64 {
            let latency = if window < 4 { 500 - window * 100 } else { 100 };
            for i in 0..50 {
                records.push(record(window * 1_000 + i, latency));
            }
        }
        let windows = timeline(&records, SimDuration::from_millis(1));
        let onset = steady_state_onset(&windows, 0.05).expect("settles");
        assert_eq!(onset, 4, "ramp covers windows 0..4");
    }

    #[test]
    fn never_settling_returns_none() {
        let mut records = Vec::new();
        for window in 0..10u64 {
            for i in 0..20 {
                records.push(record(window * 1_000 + i, 100 + window * 50));
            }
        }
        let windows = timeline(&records, SimDuration::from_millis(1));
        assert!(steady_state_onset(&windows, 0.02).is_none());
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_window_rejected() {
        timeline(&[], SimDuration::ZERO);
    }
}
