//! The multi-instance load-test runner (§III-B).
//!
//! A load test drives one simulated server with several lightly-loaded
//! Treadmill instances — "multiple instances of Treadmill are used to
//! send requests to the same server, where each instance sends a
//! fraction of the desired throughput" — then extracts per-instance
//! metrics and aggregates them.

use std::sync::Arc;

use treadmill_cluster::{
    merge_results, ClientSpec, ClusterBuilder, FaultSpec, HardwareConfig, NetworkSpec,
    PacketCapture, RetryPolicy, RunResult, ServerSpec, ShardedCluster,
};
use treadmill_sim_core::{SeedStream, SimDuration, SimTime};
use treadmill_stats::LatencySummary;
use treadmill_workloads::Workload;

use crate::aggregation::{aggregate, latencies_per_client, AggregationMethod};
use crate::controller::OpenLoopSource;
use crate::instance::{InstanceConfig, TreadmillInstance};
use crate::interarrival::InterArrival;

/// A configured Treadmill load test against the simulated cluster.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use treadmill_core::LoadTest;
/// use treadmill_workloads::Memcached;
///
/// let report = LoadTest::new(Arc::new(Memcached::default()), 100_000.0)
///     .clients(4)
///     .seed(1)
///     .run(0);
/// assert!(report.aggregated.p99 > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct LoadTest {
    workload: Arc<dyn Workload>,
    target_rps: f64,
    clients: usize,
    connections_per_client: u32,
    hardware: HardwareConfig,
    server_spec: ServerSpec,
    network_spec: NetworkSpec,
    client_spec: ClientSpec,
    duration: SimDuration,
    warmup: SimDuration,
    aggregation: AggregationMethod,
    seed: u64,
    servers: u32,
    threads: u32,
    remote_every: u32,
    fault_spec: FaultSpec,
    retry_policy: RetryPolicy,
}

impl LoadTest {
    /// Creates a load test at `target_rps` with the paper's defaults:
    /// 8 Treadmill clients, 16 connections each, 100 ms warm-up,
    /// 500 ms measurement window.
    pub fn new(workload: Arc<dyn Workload>, target_rps: f64) -> Self {
        LoadTest {
            workload,
            target_rps,
            clients: 8,
            connections_per_client: 16,
            hardware: HardwareConfig::default(),
            server_spec: ServerSpec::default(),
            network_spec: NetworkSpec::default(),
            client_spec: ClientSpec::default(),
            duration: SimDuration::from_millis(600),
            warmup: SimDuration::from_millis(100),
            aggregation: AggregationMethod::Mean,
            seed: 0,
            servers: 1,
            threads: 0,
            remote_every: 4,
            fault_spec: FaultSpec::default(),
            retry_policy: RetryPolicy::default(),
        }
    }

    /// Number of Treadmill instances (client machines).
    pub fn clients(mut self, clients: usize) -> Self {
        assert!(clients > 0, "need at least one client");
        self.clients = clients;
        self
    }

    /// Connections each instance keeps open.
    pub fn connections_per_client(mut self, connections: u32) -> Self {
        self.connections_per_client = connections;
        self
    }

    /// Hardware factor configuration under test.
    pub fn hardware(mut self, hardware: HardwareConfig) -> Self {
        self.hardware = hardware;
        self
    }

    /// Overrides the server specification.
    pub fn server_spec(mut self, spec: ServerSpec) -> Self {
        self.server_spec = spec;
        self
    }

    /// Overrides the network specification.
    pub fn network_spec(mut self, spec: NetworkSpec) -> Self {
        self.network_spec = spec;
        self
    }

    /// Overrides the client machine template.
    pub fn client_spec(mut self, spec: ClientSpec) -> Self {
        self.client_spec = spec;
        self
    }

    /// Total sending window (including warm-up).
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Warm-up discard window.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Cross-instance aggregation method.
    pub fn aggregation(mut self, method: AggregationMethod) -> Self {
        self.aggregation = method;
        self
    }

    /// Master seed; combine with the run index for repeated runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Configures fault injection (default: no faults; the run stays
    /// bit-identical to a fault-free build).
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.fault_spec = spec;
        self
    }

    /// Configures client-side timeouts / retries / hedging (default:
    /// disabled).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = policy;
        self
    }

    /// Number of simulated servers. Each server forms one shard with
    /// its own replica of the client set, so `target_rps` is offered
    /// load *per server*. 1 (the default) keeps the classic unsharded
    /// engine.
    pub fn servers(mut self, servers: u32) -> Self {
        assert!(servers > 0, "need at least one server");
        self.servers = servers;
        self
    }

    /// Worker threads for sharded execution. 0 (the default) defers to
    /// the `TML_THREADS` environment variable, then to 1. Seeded runs
    /// are bit-identical at any thread count.
    pub fn threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Routes every `remote_every`-th connection to a foreign shard
    /// when `servers > 1` (0 keeps all traffic shard-local).
    pub fn remote_every(mut self, remote_every: u32) -> Self {
        self.remote_every = remote_every;
        self
    }

    /// The target throughput in requests per second.
    pub fn target_rps(&self) -> f64 {
        self.target_rps
    }

    /// The warm-up window.
    pub fn warmup_window(&self) -> SimDuration {
        self.warmup
    }

    /// Executes run number `run_index` (a fresh server start — new
    /// hysteresis state — per the repeated-run procedure).
    pub fn run(&self, run_index: u64) -> LoadTestReport {
        self.run_seeded(self.derive_run_seed(run_index))
    }

    /// The cluster seed for run number `run_index`.
    pub(crate) fn derive_run_seed(&self, run_index: u64) -> u64 {
        SeedStream::new(self.seed).derive("run", run_index)
    }

    /// Builds the configured cluster engine for one run, without
    /// executing it — the entry point for stepped/resumable execution.
    /// `LoadTest::run_seeded` is exactly
    /// `extract_result(build_cluster(seed) → run_to_completion)` fed
    /// through [`LoadTest::report_from_result`], so a stepped run that
    /// ends in the same engine state produces a bit-identical report.
    pub(crate) fn build_cluster(
        &self,
        run_seed: u64,
    ) -> treadmill_sim_core::Engine<treadmill_cluster::ClusterWorld> {
        self.build_world(run_seed, None)
    }

    /// Builds one shard's world: a full server with its own replica of
    /// the client set. Shard 0 reuses the run seed verbatim so a
    /// one-shard sharded run is bit-identical to the legacy engine;
    /// shard `i > 0` draws an independent stream from the run seed.
    fn build_shard_engine(
        &self,
        run_seed: u64,
        index: u32,
    ) -> treadmill_sim_core::Engine<treadmill_cluster::ClusterWorld> {
        let shard_seed = if index == 0 {
            run_seed
        } else {
            SeedStream::new(run_seed).derive("shard", u64::from(index))
        };
        self.build_world(shard_seed, Some((index, self.servers, self.remote_every)))
    }

    fn build_world(
        &self,
        seed: u64,
        shard: Option<(u32, u32, u32)>,
    ) -> treadmill_sim_core::Engine<treadmill_cluster::ClusterWorld> {
        let per_client_rate = self.target_rps / self.clients as f64;
        let mut builder = ClusterBuilder::new(Arc::clone(&self.workload))
            .hardware(self.hardware)
            .server_spec(self.server_spec.clone())
            .network_spec(self.network_spec.clone())
            .seed(seed)
            .duration(self.duration)
            .faults(self.fault_spec)
            .retry_policy(self.retry_policy);
        if let Some((index, n_shards, remote_every)) = shard {
            builder = builder.shard(index, n_shards, remote_every);
        }
        for _ in 0..self.clients {
            let mut spec = self.client_spec.clone();
            spec.connections = self.connections_per_client;
            builder = builder.client(
                spec,
                Box::new(OpenLoopSource::new(
                    InterArrival::Exponential {
                        rate_rps: per_client_rate,
                    },
                    self.connections_per_client,
                )),
            );
        }
        builder.build()
    }

    /// Whether this test runs on the sharded parallel executor.
    pub(crate) fn is_sharded(&self) -> bool {
        self.servers > 1
    }

    /// The configured server (= shard) count.
    pub(crate) fn server_count(&self) -> u32 {
        self.servers
    }

    /// Resolved worker-thread count: the explicit `threads` setting,
    /// else the `TML_THREADS` environment variable, else 1.
    pub(crate) fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads as usize;
        }
        std::env::var("TML_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(1)
    }

    /// Builds the sharded cluster for one run without executing it —
    /// the entry point for stepped/resumable sharded execution.
    pub(crate) fn build_sharded(&self, run_seed: u64) -> ShardedCluster {
        let engines = (0..self.servers)
            .map(|i| self.build_shard_engine(run_seed, i))
            .collect();
        ShardedCluster::new(engines, self.effective_threads())
    }

    /// Executes run number `run_index` on the sharded executor
    /// regardless of the `servers` setting (a one-server sharded run
    /// is bit-identical to [`LoadTest::run`]).
    pub fn run_sharded(&self, run_index: u64) -> LoadTestReport {
        let mut cluster = self.build_sharded(self.derive_run_seed(run_index));
        cluster.run_to_completion();
        self.report_from_result(merge_results(cluster.into_results()))
    }

    /// Executes a run with an explicit cluster seed (used by
    /// [`LoadTest::run_robust`] to draw fresh re-run seeds).
    fn run_seeded(&self, run_seed: u64) -> LoadTestReport {
        if self.is_sharded() {
            let mut cluster = self.build_sharded(run_seed);
            cluster.run_to_completion();
            return self.report_from_result(merge_results(cluster.into_results()));
        }
        let mut engine = self.build_cluster(run_seed);
        engine.run_to_completion();
        self.report_from_result(treadmill_cluster::extract_result(engine))
    }

    /// Assembles the operator-facing report from a finished run. Pure
    /// function of the [`RunResult`]: two bit-identical results yield
    /// bit-identical reports.
    pub(crate) fn report_from_result(&self, result: RunResult) -> LoadTestReport {
        let instance_config = InstanceConfig {
            phases: crate::phases::PhaseConfig { warmup: self.warmup },
            ..Default::default()
        };
        let per_instance: Vec<LatencySummary> = result
            .client_records
            .iter()
            .map(|records| {
                let mut instance = TreadmillInstance::new(instance_config.clone());
                instance.observe_all(records);
                instance.summary()
            })
            .collect();
        let aggregated = aggregate(&per_instance, self.aggregation);
        let warmup_time = SimTime::ZERO + self.warmup;
        let ground_truth =
            PacketCapture::from_records(result.all_records(), warmup_time);
        LoadTestReport {
            per_instance,
            aggregated,
            ground_truth,
            run: result,
            warmup: self.warmup,
        }
    }

    /// User-space measurement latencies per client from a report's raw
    /// records (µs), warm-up excluded — for analyses that need raw
    /// samples rather than summaries. Cuts at the exact `SimTime`
    /// warm-up boundary, matching [`LoadTestReport::pooled_latencies`].
    pub fn raw_latencies(&self, report: &LoadTestReport) -> Vec<Vec<f64>> {
        latencies_per_client(&report.run.client_records, SimTime::ZERO + self.warmup)
    }

    /// Graceful degradation under faults: executes run `run_index` and,
    /// if it lost more than `policy.max_loss_fraction` of its requests,
    /// re-runs it with fresh seeds up to `policy.max_attempts` total
    /// attempts. The returned outcome carries the accepted report plus
    /// a [`RunDegradation`] note describing what happened; a run that
    /// exhausts the budget is returned anyway with `flagged = true`
    /// rather than panicking, so a factorial collection can continue
    /// and account for the gap downstream.
    pub fn run_robust(&self, run_index: u64, policy: &RerunPolicy) -> RobustRunOutcome {
        assert!(policy.max_attempts > 0, "need at least one attempt");
        let mut notes = Vec::new();
        let mut attempt = 0u32;
        loop {
            let run_seed = if attempt == 0 {
                SeedStream::new(self.seed).derive("run", run_index)
            } else {
                SeedStream::new(self.seed)
                    .child("rerun", run_index)
                    .derive("attempt", u64::from(attempt))
            };
            let report = self.run_seeded(run_seed);
            let loss_fraction = report.run.loss_fraction();
            let over_budget = loss_fraction > policy.max_loss_fraction;
            attempt += 1;
            if over_budget && attempt < policy.max_attempts {
                notes.push(format!(
                    "run {run_index} attempt {attempt} lost {:.2}% of requests \
                     (> {:.2}% budget); re-running with a fresh seed",
                    loss_fraction * 100.0,
                    policy.max_loss_fraction * 100.0
                ));
                continue;
            }
            if over_budget {
                notes.push(format!(
                    "run {run_index} still lost {:.2}% of requests after \
                     {attempt} attempts; accepting the degraded run",
                    loss_fraction * 100.0
                ));
            }
            return RobustRunOutcome {
                report,
                degradation: RunDegradation {
                    attempts: attempt,
                    loss_fraction,
                    flagged: over_budget,
                    notes,
                },
            };
        }
    }
}

/// Re-run budget for [`LoadTest::run_robust`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RerunPolicy {
    /// Total attempts allowed per run (1 = never re-run).
    pub max_attempts: u32,
    /// Highest acceptable [`RunResult::loss_fraction`].
    pub max_loss_fraction: f64,
}

impl Default for RerunPolicy {
    fn default() -> Self {
        RerunPolicy {
            max_attempts: 3,
            max_loss_fraction: 0.05,
        }
    }
}

/// What [`LoadTest::run_robust`] had to do to produce its report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDegradation {
    /// Attempts executed (1 = the first run was accepted).
    pub attempts: u32,
    /// Loss fraction of the accepted run.
    pub loss_fraction: f64,
    /// True if even the accepted run exceeded the loss budget.
    pub flagged: bool,
    /// Human-readable notes for the report.
    pub notes: Vec<String>,
}

/// A report plus the degradation bookkeeping of the rerun loop.
#[derive(Debug, Clone)]
pub struct RobustRunOutcome {
    /// The accepted run.
    pub report: LoadTestReport,
    /// How it was obtained.
    pub degradation: RunDegradation,
}

/// Everything one load-test run produced.
#[derive(Debug, Clone)]
pub struct LoadTestReport {
    /// Per-instance latency summaries (the paper's per-client metrics).
    pub per_instance: Vec<LatencySummary>,
    /// The cross-instance aggregate — the run's headline numbers.
    pub aggregated: LatencySummary,
    /// tcpdump-equivalent ground truth over the measurement window.
    pub ground_truth: PacketCapture,
    /// The raw simulation output.
    pub run: RunResult,
    /// The warm-up window used.
    pub warmup: SimDuration,
}

impl LoadTestReport {
    /// Measurement-window user-space latencies pooled across clients
    /// (µs). For per-client vectors use [`LoadTest::raw_latencies`].
    pub fn pooled_latencies(&self) -> Vec<f64> {
        self.run
            .user_latencies_us(SimTime::ZERO + self.warmup)
    }

    /// The offered-vs-achieved throughput ratio over the sending window
    /// (1.0 = every request was answered in time). Only responses
    /// delivered *within* the window count — a backlogged client
    /// delivering stale responses after the test must not pass.
    pub fn completion_ratio(&self, target_rps: f64) -> f64 {
        let stop = self.run.sending_stopped_at;
        let expected = target_rps * stop.as_secs_f64();
        self.run.delivered_in_window as f64 / expected
    }

    /// Right-censored latencies (µs) of measurement-window requests the
    /// tester abandoned — the lower bounds
    /// [`crate::omission::correct_with_censored`] consumes alongside
    /// [`LoadTestReport::pooled_latencies`].
    pub fn censored_latencies(&self) -> Vec<f64> {
        self.run.censored_latencies_us(SimTime::ZERO + self.warmup)
    }

    /// Fraction of settled requests that ended in failure over the
    /// whole run (0.0 for a clean run).
    pub fn loss_fraction(&self) -> f64 {
        self.run.loss_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_workloads::Memcached;

    fn quick_test(rps: f64) -> LoadTest {
        LoadTest::new(Arc::new(Memcached::default()), rps)
            .clients(4)
            .duration(SimDuration::from_millis(120))
            .warmup(SimDuration::from_millis(30))
            .seed(11)
    }

    #[test]
    fn report_contains_all_views() {
        let report = quick_test(100_000.0).run(0);
        assert_eq!(report.per_instance.len(), 4);
        assert!(report.aggregated.p99 >= report.aggregated.p50);
        assert!(!report.ground_truth.is_empty());
        // Ground truth (NIC) below user view.
        assert!(report.ground_truth.quantile_us(0.5) < report.aggregated.p50);
    }

    #[test]
    fn throughput_is_delivered() {
        let report = quick_test(200_000.0).run(0);
        let ratio = report.completion_ratio(200_000.0);
        assert!(ratio > 0.95 && ratio < 1.05, "completion ratio {ratio}");
    }

    #[test]
    fn repeated_runs_differ_same_run_repeats() {
        let test = quick_test(400_000.0);
        let a = test.run(0);
        let b = test.run(1);
        let a2 = test.run(0);
        assert_eq!(a.aggregated, a2.aggregated, "same run index reproduces");
        assert_ne!(
            a.aggregated.p99, b.aggregated.p99,
            "different run indices draw fresh hysteresis state"
        );
    }

    #[test]
    fn raw_and_pooled_views_agree_on_sample_counts() {
        // A warm-up with a sub-microsecond component: truncating it to
        // integer µs would move the cutoff and the two views would
        // disagree near the boundary. Both must cut at the exact
        // SimTime instant.
        let test = quick_test(100_000.0).warmup(SimDuration::from_nanos(30_000_500));
        let report = test.run(0);
        let per_client = test.raw_latencies(&report);
        let raw_total: usize = per_client.iter().map(Vec::len).sum();
        assert_eq!(raw_total, report.pooled_latencies().len());
        assert_eq!(raw_total, report.ground_truth.len());
    }

    #[test]
    fn completion_ratio_counts_only_in_window_deliveries() {
        let report = quick_test(150_000.0).run(0);
        let stop = report.run.sending_stopped_at;
        let recount = report
            .run
            .all_records()
            .filter(|r| r.t_delivered <= stop)
            .count();
        assert_eq!(report.run.delivered_in_window, recount);
    }

    #[test]
    fn raw_latencies_exclude_warmup() {
        let test = quick_test(100_000.0);
        let report = test.run(0);
        let per_client = test.raw_latencies(&report);
        assert_eq!(per_client.len(), 4);
        let raw_total: usize = per_client.iter().map(Vec::len).sum();
        assert!(raw_total < report.run.total_responses());
        assert!(raw_total > 0);
    }
}
