//! Busy-time integration for utilisation accounting.

use crate::time::{SimDuration, SimTime};

/// Tracks what fraction of time a resource was busy, both cumulatively
/// and over a sliding sampling window.
///
/// The DVFS governor model uses the windowed view (it reacts to recent
/// utilisation); reports use the cumulative view.
///
/// # Examples
///
/// ```
/// use treadmill_sim_core::{SimDuration, SimTime, UtilizationTracker};
///
/// let mut tracker = UtilizationTracker::new();
/// tracker.record_busy(SimTime::ZERO, SimDuration::from_micros(30));
/// assert_eq!(tracker.utilization(SimTime::from_micros(60)), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtilizationTracker {
    busy_total: SimDuration,
    window_start: SimTime,
    window_busy: SimDuration,
}

impl UtilizationTracker {
    /// Creates a tracker with no recorded activity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the resource was busy for `duration` starting at
    /// `start`. Overlapping busy intervals are the caller's bug; the
    /// tracker simply sums.
    pub fn record_busy(&mut self, start: SimTime, duration: SimDuration) {
        self.busy_total += duration;
        // Attribute to the current window the part that overlaps it.
        let end = start + duration;
        if end > self.window_start {
            let overlap_start = start.max(self.window_start);
            self.window_busy += end.duration_since(overlap_start);
        }
    }

    /// Cumulative busy time.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Cumulative utilisation over `[0, now]`, clamped to `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            return 0.0;
        }
        (self.busy_total.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }

    /// Utilisation since the last [`Self::restart_window`], clamped to
    /// `[0, 1]`.
    pub fn window_utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_duration_since(self.window_start);
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.window_busy.as_nanos() as f64 / elapsed.as_nanos() as f64).min(1.0)
    }

    /// Starts a new sampling window at `now`.
    pub fn restart_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.window_busy = SimDuration::ZERO;
    }

    /// The tracker's full state, captured for checkpointing.
    pub fn state(&self) -> UtilizationState {
        UtilizationState {
            busy_total: self.busy_total,
            window_start: self.window_start,
            window_busy: self.window_busy,
        }
    }

    /// Overwrites the tracker with a checkpointed [`UtilizationState`].
    pub fn restore_state(&mut self, state: UtilizationState) {
        self.busy_total = state.busy_total;
        self.window_start = state.window_start;
        self.window_busy = state.window_busy;
    }
}

/// A [`UtilizationTracker`]'s state, captured for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtilizationState {
    /// Cumulative busy time.
    pub busy_total: SimDuration,
    /// Start of the current sampling window.
    pub window_start: SimTime,
    /// Busy time inside the current window.
    pub window_busy: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_utilization() {
        let mut t = UtilizationTracker::new();
        t.record_busy(SimTime::ZERO, SimDuration::from_micros(10));
        t.record_busy(SimTime::from_micros(50), SimDuration::from_micros(10));
        assert_eq!(t.busy_total(), SimDuration::from_micros(20));
        assert!((t.utilization(SimTime::from_micros(100)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn windowed_utilization_resets() {
        let mut t = UtilizationTracker::new();
        t.record_busy(SimTime::ZERO, SimDuration::from_micros(10));
        t.restart_window(SimTime::from_micros(100));
        assert_eq!(t.window_utilization(SimTime::from_micros(200)), 0.0);
        t.record_busy(SimTime::from_micros(100), SimDuration::from_micros(50));
        assert!((t.window_utilization(SimTime::from_micros(200)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_interval_straddling_window_start_counts_overlap_only() {
        let mut t = UtilizationTracker::new();
        t.restart_window(SimTime::from_micros(10));
        // Busy 5..15us: only 10..15 overlaps the window.
        t.record_busy(SimTime::from_micros(5), SimDuration::from_micros(10));
        assert!((t.window_utilization(SimTime::from_micros(20)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_is_zero_util() {
        let t = UtilizationTracker::new();
        assert_eq!(t.utilization(SimTime::ZERO), 0.0);
        assert_eq!(t.window_utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn clamps_to_one() {
        let mut t = UtilizationTracker::new();
        t.record_busy(SimTime::ZERO, SimDuration::from_micros(100));
        assert_eq!(t.utilization(SimTime::from_micros(10)), 1.0);
    }
}
