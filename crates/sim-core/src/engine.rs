//! The simulation run loop.

use crate::event::EventQueue;
use crate::time::SimTime;

/// The state machine a simulation advances.
///
/// A `World` owns all simulated entities. The [`Engine`] pops events in
/// timestamp order and hands each to [`World::handle`], which mutates the
/// world and may schedule follow-up events on the queue it is given.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Processes one event at instant `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// A discrete-event simulation engine: a clock, an event queue and a
/// [`World`].
///
/// # Examples
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug)]
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    executed: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            executed: 0,
        }
    }

    /// Creates an engine whose queue is pre-sized for `capacity` pending
    /// events, avoiding growth reallocations on the hot schedule path.
    pub fn with_queue_capacity(world: W, capacity: usize) -> Self {
        Engine {
            world,
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            executed: 0,
        }
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Shared access to the world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world state.
    ///
    /// Useful for wiring up entities before the run and for extracting
    /// measurements afterwards.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current instant — scheduling
    /// into the past would corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: W::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event);
    }

    /// Schedules an event in ordering lane `lane` (see
    /// [`EventQueue::schedule_in_lane`]): among same-instant events,
    /// lower lanes pop first. Sharded executors use this to inject
    /// cross-shard arrivals with a thread-independent total order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current instant.
    pub fn schedule_in_lane(&mut self, at: SimTime, lane: u16, event: W::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule_in_lane(at, lane, event);
    }

    /// Schedules an event `delay` after the current instant — the common
    /// case, with no past-check needed (a non-negative offset from `now`
    /// cannot land in the past).
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, event: W::Event) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Runs until the queue drains.
    ///
    /// Returns the number of events executed by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        // Unconditional pops: an infinite horizon never rejects an
        // event, so the per-event root comparison of `run_until` would
        // be pure overhead here.
        let mut count = 0;
        while let Some(scheduled) = self.queue.pop() {
            debug_assert!(scheduled.at >= self.now, "time went backwards");
            self.now = scheduled.at;
            self.world.handle(self.now, scheduled.event, &mut self.queue);
            self.executed += 1;
            count += 1;
        }
        count
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon` (events at exactly `horizon` are executed).
    ///
    /// Returns the number of events executed by this call. The clock is
    /// left at the last executed event (it does not jump to `horizon`).
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut count = 0;
        // pop_at_or_before does the horizon check on the heap root
        // directly — no separate peek traversal per event.
        while let Some(scheduled) = self.queue.pop_at_or_before(horizon) {
            debug_assert!(scheduled.at >= self.now, "time went backwards");
            self.now = scheduled.at;
            self.world.handle(self.now, scheduled.event, &mut self.queue);
            self.executed += 1;
            count += 1;
        }
        count
    }

    /// Executes at most `budget` events (stopping earlier if the queue
    /// drains). Returns the number executed.
    pub fn run_events(&mut self, budget: u64) -> u64 {
        let mut count = 0;
        while count < budget {
            match self.queue.pop() {
                Some(scheduled) => {
                    debug_assert!(scheduled.at >= self.now, "time went backwards");
                    self.now = scheduled.at;
                    self.world.handle(self.now, scheduled.event, &mut self.queue);
                    self.executed += 1;
                    count += 1;
                }
                None => break,
            }
        }
        count
    }

    /// The clock state a checkpoint must capture: the current instant
    /// and the lifetime event count.
    pub fn clock_state(&self) -> (SimTime, u64) {
        (self.now, self.executed)
    }

    /// Restores clock state captured by [`Engine::clock_state`], for
    /// resuming a checkpointed run on a freshly rebuilt engine.
    ///
    /// # Panics
    ///
    /// Panics if the restore would move the clock backwards — a resumed
    /// engine must only ever be fast-forwarded.
    pub fn restore_clock_state(&mut self, now: SimTime, executed: u64) {
        assert!(now >= self.now, "clock restore cannot rewind time");
        self.now = now;
        self.executed = executed;
    }

    /// Shared access to the event queue, for checkpointing.
    pub fn queue(&self) -> &EventQueue<W::Event> {
        &self.queue
    }

    /// Exclusive access to the event queue, for restoring a checkpoint.
    /// Library code other than checkpoint restore should schedule
    /// through [`Engine::schedule`] so the past-check applies.
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// True if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Ping {
        log: Vec<(u64, u32)>,
    }

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Ping(u32),
        Chain(u32),
    }

    impl World for Ping {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Ping(id) => self.log.push((now.as_nanos(), id)),
                Ev::Chain(left) => {
                    self.log.push((now.as_nanos(), left));
                    if left > 0 {
                        queue.schedule(now + SimDuration::from_nanos(100), Ev::Chain(left - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn executes_in_order_and_advances_clock() {
        let mut engine = Engine::new(Ping { log: vec![] });
        engine.schedule(SimTime::from_nanos(50), Ev::Ping(2));
        engine.schedule(SimTime::from_nanos(10), Ev::Ping(1));
        let n = engine.run_to_completion();
        assert_eq!(n, 2);
        assert_eq!(engine.world().log, vec![(10, 1), (50, 2)]);
        assert_eq!(engine.now(), SimTime::from_nanos(50));
    }

    #[test]
    fn chained_events_recur() {
        let mut engine = Engine::new(Ping { log: vec![] });
        engine.schedule(SimTime::ZERO, Ev::Chain(3));
        engine.run_to_completion();
        assert_eq!(
            engine.world().log,
            vec![(0, 3), (100, 2), (200, 1), (300, 0)]
        );
        assert_eq!(engine.events_executed(), 4);
    }

    #[test]
    fn run_until_respects_horizon_inclusive() {
        let mut engine = Engine::new(Ping { log: vec![] });
        engine.schedule(SimTime::from_nanos(10), Ev::Ping(1));
        engine.schedule(SimTime::from_nanos(20), Ev::Ping(2));
        engine.schedule(SimTime::from_nanos(30), Ev::Ping(3));
        let n = engine.run_until(SimTime::from_nanos(20));
        assert_eq!(n, 2);
        assert_eq!(engine.pending_events(), 1);
        assert_eq!(engine.now(), SimTime::from_nanos(20));
    }

    #[test]
    fn run_events_respects_budget() {
        let mut engine = Engine::new(Ping { log: vec![] });
        engine.schedule(SimTime::ZERO, Ev::Chain(10));
        let n = engine.run_events(5);
        assert_eq!(n, 5);
        assert!(!engine.is_idle());
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut engine = Engine::with_queue_capacity(Ping { log: vec![] }, 16);
        engine.schedule(SimTime::from_nanos(40), Ev::Ping(1));
        engine.run_to_completion();
        engine.schedule_after(SimDuration::from_nanos(10), Ev::Ping(2));
        engine.run_to_completion();
        assert_eq!(engine.world().log, vec![(40, 1), (50, 2)]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut engine = Engine::new(Ping { log: vec![] });
        engine.schedule(SimTime::from_nanos(100), Ev::Ping(1));
        engine.run_to_completion();
        engine.schedule(SimTime::from_nanos(50), Ev::Ping(2));
    }
}
