//! Deterministic discrete-event simulation engine.
//!
//! This crate is the lowest substrate of the Treadmill reproduction. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a priority queue of timestamped events with stable
//!   FIFO ordering among simultaneous events,
//! * [`Engine`] — a generic run loop driving a [`World`] state machine,
//! * [`SeedStream`] — reproducible per-component random-number streams,
//! * [`RateQueue`] — an analytic FIFO single-server queue used to model
//!   network links, NIC paths and kernel processing,
//! * [`UtilizationTracker`] — busy-time integration for utilisation
//!   accounting.
//!
//! Everything is deterministic: two runs with the same seed execute the
//! exact same event sequence.
//!
//! # Examples
//!
//! ```
//! use treadmill_sim_core::{Engine, EventQueue, SimTime, World};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, queue: &mut EventQueue<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             queue.schedule(now + treadmill_sim_core::SimDuration::from_micros(5), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.schedule(SimTime::ZERO, Ev::Tick);
//! engine.run_to_completion();
//! assert_eq!(engine.world().fired, 10);
//! assert_eq!(engine.now(), SimTime::from_micros(45));
//! ```

#![forbid(unsafe_code)]
// Unit tests unwrap freely and assert exact float equality: bit-exact
// reproducibility is the property under test. Library code is held to
// the workspace lint table (see DESIGN.md, "Static analysis").
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)
)]
#![warn(missing_docs)]

mod engine;
mod event;
mod queue;
mod rng;
pub mod snapshot;
mod time;
mod util;

pub use engine::{Engine, World};
pub use event::{EventQueue, ScheduledEvent};
pub use queue::{QueueOutcome, RateQueue, RateQueueState};
pub use rng::{splitmix64, SeedStream};
pub use snapshot::{fnv1a64, SnapshotError, SnapshotReader, SnapshotWriter};
pub use time::{SimDuration, SimTime};
pub use util::{UtilizationState, UtilizationTracker};
