//! Reproducible random-number streams.
//!
//! Every stochastic component of the simulation draws from its own stream
//! derived from a master seed plus a label path, so adding a new consumer
//! never perturbs the draws seen by existing ones.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The splitmix64 mixing function.
///
/// Used to derive independent sub-seeds from a master seed and label
/// hashes. This is the standard seeding recommendation for xoshiro-family
/// generators.
///
/// # Examples
///
/// ```
/// use treadmill_sim_core::splitmix64;
///
/// let a = splitmix64(1);
/// let b = splitmix64(2);
/// assert_ne!(a, b);
/// assert_eq!(a, splitmix64(1));
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_label(label: &str) -> u64 {
    // FNV-1a: stable across platforms and Rust versions, unlike
    // `DefaultHasher`.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A factory of independent, reproducible RNG streams.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// use treadmill_sim_core::SeedStream;
///
/// let seeds = SeedStream::new(42);
/// let mut a = seeds.stream("client", 0);
/// let mut b = seeds.stream("client", 1);
/// let mut a2 = SeedStream::new(42).stream("client", 0);
/// let (x, y, x2): (u64, u64, u64) = (a.gen(), b.gen(), a2.gen());
/// assert_eq!(x, x2);
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Creates a stream factory rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedStream { master }
    }

    /// The master seed this factory was created with.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives a child factory, e.g. one per experiment.
    pub fn child(&self, label: &str, index: u64) -> SeedStream {
        SeedStream {
            master: self.derive(label, index),
        }
    }

    /// Derives the raw 64-bit seed for (`label`, `index`).
    pub fn derive(&self, label: &str, index: u64) -> u64 {
        let mixed = splitmix64(self.master ^ hash_label(label));
        splitmix64(mixed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Creates the RNG stream for (`label`, `index`).
    pub fn stream(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.derive(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<u64> = {
            let mut rng = SeedStream::new(7).stream("x", 3);
            (0..8).map(|_| rng.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SeedStream::new(7).stream("x", 3);
            (0..8).map(|_| rng.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedStream::new(7);
        assert_ne!(s.derive("a", 0), s.derive("b", 0));
        assert_ne!(s.derive("a", 0), s.derive("a", 1));
    }

    #[test]
    fn child_factories_are_independent() {
        let s = SeedStream::new(7);
        let c0 = s.child("exp", 0);
        let c1 = s.child("exp", 1);
        assert_ne!(c0.derive("x", 0), c1.derive("x", 0));
        assert_eq!(c0.master(), s.child("exp", 0).master());
    }

    #[test]
    fn label_hash_is_stable() {
        // Pin the FNV-1a output so cross-version drift is caught.
        assert_eq!(hash_label(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(hash_label("client"), hash_label("server"));
    }

    #[test]
    fn splitmix_avalanche() {
        // Neighbouring inputs should differ in many bits.
        let diff = (splitmix64(0) ^ splitmix64(1)).count_ones();
        assert!(diff > 16, "weak diffusion: {diff} bits");
    }

    #[test]
    fn stream_draws_are_uniformish() {
        let mut rng = SeedStream::new(99).stream("uniform", 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
