//! Virtual time for the simulation: nanosecond-resolution instants and
//! durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since the start of
/// the simulation.
///
/// `SimTime` is a newtype over `u64`, so it is `Copy` and cheap to pass by
/// value. Arithmetic with [`SimDuration`] is checked in debug builds and
/// saturating semantics are never silently applied: overflow panics.
///
/// # Examples
///
/// ```
/// use treadmill_sim_core::{SimDuration, SimTime};
///
/// let t = SimTime::from_micros(10) + SimDuration::from_nanos(500);
/// assert_eq!(t.as_nanos(), 10_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use treadmill_sim_core::SimDuration;
///
/// let d = SimDuration::from_micros(3) * 4;
/// assert_eq!(d.as_micros_f64(), 12.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since the simulation origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant expressed in microseconds as a float (lossy for very
    /// large values, exact for any realistic simulation length).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The instant expressed in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                // tml-lint: allow(PANIC002, the only service chain is a name-collision edge from SystemTime::duration_since in audit.rs; sim time never reaches the service)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    // Rounded non-negative nanos fit u64 for any realistic duration.
    #[allow(clippy::cast_possible_truncation)]
    pub fn from_micros_f64(micros: f64) -> Self {
        if micros <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((micros * 1_000.0).round() as u64)
    }

    /// Creates a duration from fractional nanoseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    // Rounded non-negative nanos fit u64 for any realistic duration.
    #[allow(clippy::cast_possible_truncation)]
    pub fn from_nanos_f64(nanos: f64) -> Self {
        if nanos <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration(nanos.round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration expressed in microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration expressed in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative float, rounding to the
    /// nearest nanosecond.
    // Rounded non-negative nanos fit u64 for any realistic duration.
    #[allow(clippy::cast_possible_truncation)]
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(2).as_micros_f64(), 2.0);
        assert_eq!(SimDuration::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!((t + d).as_nanos(), 15_000);
        assert_eq!((t + d) - t, SimDuration::from_micros(5));
        assert_eq!((t - d).as_nanos(), 5_000);
        assert_eq!(d * 3, SimDuration::from_micros(15));
        assert_eq!(d / 5, SimDuration::from_micros(1));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_on_inversion() {
        let _ = SimTime::from_micros(1).duration_since(SimTime::from_micros(2));
    }

    #[test]
    fn float_constructors_round_and_clamp() {
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos_f64(2.4).as_nanos(), 2);
        assert_eq!(SimDuration::from_nanos_f64(2.6).as_nanos(), 3);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(2.0), SimDuration::from_micros(20));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_micros(1)), "1.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(1500)), "1.500us");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
