//! Versioned, checksummed binary snapshots of simulation state.
//!
//! A checkpoint is a self-describing envelope around a flat payload:
//!
//! ```text
//! magic "TMLS" | format version (u32 LE) | payload length (u64 LE)
//!   | word-folded FNV-1a-64 checksum of payload (u64 LE) | payload bytes
//! ```
//!
//! The payload itself is written with [`SnapshotWriter`] and read back
//! with [`SnapshotReader`] — fixed-width little-endian primitives only,
//! floats as raw bit patterns, so encode/decode round-trips are
//! bit-exact and independent of locale, platform or formatting. Every
//! layer of the simulation (engine clock, event heap, RNG streams,
//! cluster world, streaming estimators) serialises its *mutable* state
//! through these primitives; immutable configuration is rebuilt from
//! the run's config + seed on restore, which keeps snapshots small and
//! makes version skew detectable (config hash mismatch) rather than
//! silently corrupting.
//!
//! Nothing here reads the wall clock or iterates unordered containers:
//! serialisation order is always definition order or explicit index
//! order, so a snapshot of a given state is itself a deterministic byte
//! string — two identical runs checkpoint to identical bytes.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Leading magic bytes of every snapshot envelope.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"TMLS";

/// Current snapshot format version. Bump on any layout change; readers
/// reject other versions rather than guessing.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Errors surfaced while opening or decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the expected data.
    Truncated,
    /// The envelope does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The envelope was written by an incompatible format version.
    BadVersion {
        /// The version found in the envelope.
        found: u32,
    },
    /// The payload checksum does not match the envelope header.
    ChecksumMismatch,
    /// Structurally valid bytes that decode to an impossible state.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion { found } => write!(
                f,
                "snapshot format version {found} (this build reads {SNAPSHOT_VERSION})"
            ),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Copies a slice of exactly `N` bytes into an array. Callers always
/// pass slices they just length-checked; a mismatch aborts via the
/// slice-copy length invariant rather than a recoverable error.
#[inline]
fn fixed<const N: usize>(slice: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    out
}

/// FNV-1a 64-bit hash — the config fingerprint used by sweep manifests
/// and any other short-string hashing. Dependency-free and stable
/// across platforms; matches the published reference vectors.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The envelope integrity checksum: four independent FNV-1a streams
/// over interleaved 8-byte little-endian words, folded together with
/// the payload length and a byte-wise tail. The four lanes break the
/// serial multiply dependency of the reference byte loop, making
/// multi-megabyte snapshots ~30× cheaper to seal while staying
/// dependency-free and platform-stable (checkpoints are written and
/// read on the same format version, never across hash variants).
pub fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lanes = [
        SEED,
        SEED ^ 0x9e37_79b9_7f4a_7c15,
        SEED.rotate_left(17),
        SEED.rotate_left(33),
    ];
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane ^= u64::from_le_bytes(fixed::<8>(&chunk[i * 8..i * 8 + 8]));
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut hash = SEED ^ (bytes.len() as u64).wrapping_mul(PRIME);
    for lane in lanes {
        hash ^= lane;
        hash = hash.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Wraps a payload in the versioned, checksummed snapshot envelope.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies an envelope (magic, version, length, checksum) and returns
/// the payload slice.
///
/// # Errors
///
/// Returns the specific [`SnapshotError`] for each integrity failure —
/// torn writes surface as [`SnapshotError::Truncated`] or
/// [`SnapshotError::ChecksumMismatch`], never as garbage state.
pub fn open(data: &[u8]) -> Result<&[u8], SnapshotError> {
    if data.len() < 24 {
        return Err(SnapshotError::Truncated);
    }
    if data[0..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(fixed::<4>(&data[4..8]));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion { found: version });
    }
    let len = u64::from_le_bytes(fixed::<8>(&data[8..16]));
    let checksum = u64::from_le_bytes(fixed::<8>(&data[16..24]));
    let payload = &data[24..];
    if payload.len() as u64 != len {
        return Err(SnapshotError::Truncated);
    }
    if checksum64(payload) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Byte length of the envelope header (`magic | version | len | checksum`).
pub const ENVELOPE_BYTES: usize = 24;

/// Appends fixed-width little-endian primitives to a payload buffer.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    /// Offset where the payload starts: 0 for plain writers,
    /// [`ENVELOPE_BYTES`] for writers created with [`Self::sealing`].
    base: usize,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapshotWriter {
            buf: Vec::new(),
            base: 0,
        }
    }

    /// Creates an empty writer with `capacity` bytes pre-reserved —
    /// callers that can estimate the payload size avoid growth copies
    /// on multi-megabyte snapshots.
    pub fn with_capacity(capacity: usize) -> Self {
        SnapshotWriter {
            buf: Vec::with_capacity(capacity),
            base: 0,
        }
    }

    /// Creates a writer that reserves room for the envelope header up
    /// front so [`Self::into_sealed`] can fill it in place — a
    /// multi-megabyte snapshot is sealed without the extra allocation
    /// and copy that [`seal`] pays on an already-built payload.
    pub fn sealing(capacity: usize) -> Self {
        Self::sealing_reuse(Vec::new(), capacity)
    }

    /// Like [`Self::sealing`], but recycles `buf`'s allocation: the
    /// vector is cleared and grown to at least `capacity` +
    /// [`ENVELOPE_BYTES`]. Steady-state checkpointing hands the
    /// previous snapshot's buffer back in, so repeated multi-megabyte
    /// snapshots skip both the allocation and its page-fault cost.
    pub fn sealing_reuse(mut buf: Vec<u8>, capacity: usize) -> Self {
        buf.clear();
        buf.reserve(capacity + ENVELOPE_BYTES);
        buf.extend_from_slice(&[0u8; ENVELOPE_BYTES]);
        SnapshotWriter {
            buf,
            base: ENVELOPE_BYTES,
        }
    }

    /// Consumes the writer, returning the raw payload bytes.
    ///
    /// # Panics
    ///
    /// Panics on a writer created with [`Self::sealing`] — its buffer
    /// carries the envelope header, so it must use [`Self::into_sealed`].
    pub fn into_bytes(self) -> Vec<u8> {
        // tml-lint: allow(PANIC002, the only service chain is a name-collision edge from String::into_bytes in job.rs; the documented misuse assert is unreachable there)
        assert_eq!(
            self.base, 0,
            "a sealing writer must be consumed with into_sealed"
        );
        self.buf
    }

    /// Consumes a [`Self::sealing`] writer, filling the reserved
    /// envelope header in place and returning the complete sealed
    /// snapshot (readable with [`open`]).
    ///
    /// # Panics
    ///
    /// Panics on a writer not created with [`Self::sealing`] — a plain
    /// writer has no header reservation to fill.
    pub fn into_sealed(mut self) -> Vec<u8> {
        assert_eq!(
            self.base, ENVELOPE_BYTES,
            "into_sealed requires a writer created with SnapshotWriter::sealing"
        );
        let payload_len = self.buf.len() - ENVELOPE_BYTES;
        let checksum = checksum64(&self.buf[ENVELOPE_BYTES..]);
        self.buf[0..4].copy_from_slice(&SNAPSHOT_MAGIC);
        self.buf[4..8].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        self.buf[8..16].copy_from_slice(&(payload_len as u64).to_le_bytes());
        self.buf[16..24].copy_from_slice(&checksum.to_le_bytes());
        self.buf
    }

    /// Payload length so far (excluding any reserved envelope header).
    pub fn len(&self) -> usize {
        self.buf.len() - self.base
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0 or 1).
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32`, little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    #[inline]
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    #[inline]
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its raw bit pattern — bit-exact round-trip,
    /// including NaN payloads and signed zeros.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a [`SimTime`] as nanoseconds.
    #[inline]
    pub fn put_time(&mut self, t: SimTime) {
        self.put_u64(t.as_nanos());
    }

    /// Writes a [`SimDuration`] as nanoseconds.
    #[inline]
    pub fn put_duration(&mut self, d: SimDuration) {
        self.put_u64(d.as_nanos());
    }

    /// Writes a length-prefixed byte string.
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends raw bytes with no length prefix — for fixed-layout
    /// structs encoded into a stack buffer first, so a hot serialisation
    /// loop costs one capacity check per struct instead of one per
    /// field. The reader side consumes the same bytes field-wise.
    #[inline]
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Reads back what [`SnapshotWriter`] wrote, in the same order.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Creates a reader over a raw payload.
    pub fn new(data: &'a [u8]) -> Self {
        SnapshotReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless every payload byte was consumed — catches layout
    /// drift between writer and reader.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] if bytes remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing bytes after decode"))
        }
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the payload ends early.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool written by [`SnapshotWriter::put_bool`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] on any byte other than 0/1.
    #[inline]
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool byte not 0/1")),
        }
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the payload ends early.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(fixed::<4>(self.take(4)?)))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the payload ends early.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(fixed::<8>(self.take(8)?)))
    }

    /// Reads a `u128`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the payload ends early.
    #[inline]
    pub fn get_u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(fixed::<16>(self.take(16)?)))
    }

    /// Reads a `usize` written by [`SnapshotWriter::put_usize`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] if the value does not fit.
    #[inline]
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| SnapshotError::Malformed("usize overflow"))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the payload ends early.
    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a [`SimTime`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the payload ends early.
    #[inline]
    pub fn get_time(&mut self) -> Result<SimTime, SnapshotError> {
        Ok(SimTime::from_nanos(self.get_u64()?))
    }

    /// Reads a [`SimDuration`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the payload ends early.
    #[inline]
    pub fn get_duration(&mut self) -> Result<SimDuration, SnapshotError> {
        Ok(SimDuration::from_nanos(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the payload ends early.
    #[inline]
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.get_usize()?;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exact() {
        let mut w = SnapshotWriter::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX >> 1);
        w.put_usize(12_345);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7ff8_dead_beef_0001)); // NaN payload
        w.put_time(SimTime::from_nanos(42));
        w.put_duration(SimDuration::from_micros(7));
        w.put_bytes(b"payload");
        let bytes = w.into_bytes();

        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_u128().unwrap(), u128::MAX >> 1);
        assert_eq!(r.get_usize().unwrap(), 12_345);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), 0x7ff8_dead_beef_0001);
        assert_eq!(r.get_time().unwrap(), SimTime::from_nanos(42));
        assert_eq!(r.get_duration().unwrap(), SimDuration::from_micros(7));
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        r.finish().unwrap();
    }

    #[test]
    fn envelope_verifies_and_rejects() {
        let payload = b"hello snapshot".to_vec();
        let sealed = seal(&payload);
        assert_eq!(open(&sealed).unwrap(), payload.as_slice());

        // Truncation (torn write).
        assert_eq!(open(&sealed[..sealed.len() - 3]), Err(SnapshotError::Truncated));
        assert_eq!(open(&sealed[..10]), Err(SnapshotError::Truncated));

        // Bit flip in the payload.
        let mut corrupt = sealed.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert_eq!(open(&corrupt), Err(SnapshotError::ChecksumMismatch));

        // Wrong magic.
        let mut wrong = sealed.clone();
        wrong[0] = b'X';
        assert_eq!(open(&wrong), Err(SnapshotError::BadMagic));

        // Future version.
        let mut future = sealed;
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(open(&future), Err(SnapshotError::BadVersion { found: 99 }));
    }

    #[test]
    fn bad_bool_and_trailing_bytes_are_malformed() {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(r.get_bool(), Err(SnapshotError::Malformed(_))));
        let mut r2 = SnapshotReader::new(&bytes);
        let _ = r2.get_u8().unwrap();
        assert!(matches!(r2.finish(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
