//! The event queue: a time-ordered priority queue with stable FIFO
//! ordering among events scheduled for the same instant.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event together with the instant it fires at.
///
/// Returned by [`EventQueue::pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The event payload.
    pub event: E,
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first. seq breaks ties FIFO, keeping runs deterministic.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic event queue.
///
/// Events scheduled for the same [`SimTime`] pop in the order they were
/// scheduled, which keeps simulations reproducible regardless of heap
/// internals.
///
/// # Examples
///
/// ```
/// use treadmill_sim_core::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.schedule(SimTime::from_micros(2), "late");
/// queue.schedule(SimTime::from_micros(1), "early");
/// assert_eq!(queue.pop().unwrap().event, "early");
/// assert_eq!(queue.pop().unwrap().event, "late");
/// assert!(queue.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap
            .pop()
            .map(|entry| ScheduledEvent {
                at: entry.at,
                event: entry.event,
            })
    }

    /// The firing instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|entry| entry.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.pop().unwrap().at, SimTime::from_nanos(7));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(30), "c");
        assert_eq!(q.pop().unwrap().event, "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
