//! The event queue: a time-ordered priority queue with stable FIFO
//! ordering among events scheduled for the same instant.
//!
//! Implemented as an implicit 4-ary min-heap over packed
//! `(time, lane, seq)` keys. The key array is dense (`u128` per entry:
//! firing time in the high 64 bits, a 16-bit ordering lane at bits
//! 48..64, and a 48-bit schedule sequence number in the low bits), so
//! one comparison orders time, lane and FIFO tie-break together, and
//! the four children of a node share a cache line. Payloads live in a
//! parallel array moved in lockstep, keeping the comparison-heavy sift
//! loops off the (often large) event type. A 4-ary layout halves tree
//! depth versus a binary heap, which is where the sift time goes on
//! deep queues.
//!
//! The lane exists for sharded parallel simulation: events injected
//! from another shard carry `lane = source shard + 1`, so simultaneous
//! cross-shard arrivals order by source shard first and per-source
//! sequence second — a total order independent of thread scheduling.
//! Plain [`EventQueue::schedule`] uses lane 0, which contributes
//! nothing to the key, so single-shard runs keep the exact key values
//! (and pop sequence) of the pre-lane format.

use crate::time::SimTime;

/// An event together with the instant it fires at.
///
/// Returned by [`EventQueue::pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The event payload.
    pub event: E,
}

const ARITY: usize = 4;

/// Bits of the packed key holding the FIFO sequence number.
const SEQ_BITS: u32 = 48;
/// Mask isolating the sequence lane of a packed key's low 64 bits.
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

#[inline]
fn pack(at: SimTime, lane: u16, seq: u64) -> u128 {
    debug_assert!(seq <= SEQ_MASK, "sequence lane overflow");
    (u128::from(at.as_nanos()) << 64) | (u128::from(lane) << SEQ_BITS) | u128::from(seq)
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

/// A deterministic event queue.
///
/// Events scheduled for the same [`SimTime`] pop in the order they were
/// scheduled, which keeps simulations reproducible regardless of heap
/// internals: the packed key gives every entry a unique total order, so
/// the pop sequence is a pure function of the schedule history.
///
/// # Examples
///
/// ```
/// use treadmill_sim_core::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.schedule(SimTime::from_micros(2), "late");
/// queue.schedule(SimTime::from_micros(1), "early");
/// assert_eq!(queue.pop().unwrap().event, "early");
/// assert_eq!(queue.pop().unwrap().event, "late");
/// assert!(queue.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Heap-ordered packed `(time << 64) | seq` keys.
    keys: Vec<u128>,
    /// Payloads, parallel to `keys`.
    events: Vec<E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            keys: Vec::new(),
            events: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            keys: Vec::with_capacity(capacity),
            events: Vec::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at instant `at` (ordering lane 0).
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.schedule_in_lane(at, 0, event);
    }

    /// Schedules `event` at instant `at` in ordering lane `lane`.
    ///
    /// Among events firing at the same instant, lower lanes pop first,
    /// and within a lane the FIFO schedule order applies. Sharded
    /// simulation uses lane `source shard + 1` for injected cross-shard
    /// messages so that simultaneous arrivals from different shards
    /// take a total order that no thread interleaving can perturb;
    /// everything else stays in lane 0.
    #[inline]
    pub fn schedule_in_lane(&mut self, at: SimTime, lane: u16, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.keys.push(pack(at, lane, seq));
        self.events.push(event);
        self.sift_up(self.keys.len() - 1);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let len = self.keys.len();
        if len <= 1 {
            // Near-empty queues are the steady state of chain-style
            // simulations; skip the swap-and-sift machinery entirely.
            let key = self.keys.pop()?;
            let event = self.events.pop().expect("keys and events stay parallel");
            return Some(ScheduledEvent {
                at: unpack_time(key),
                event,
            });
        }
        let key = self.keys[0];
        let moved = self.keys.pop().expect("checked non-empty");
        self.keys[0] = moved;
        let event = self.events.swap_remove(0);
        self.sift_down(0);
        Some(ScheduledEvent {
            at: unpack_time(key),
            event,
        })
    }

    /// Pops the earliest event only if it fires at or before `horizon` —
    /// one root comparison instead of a separate peek and pop.
    #[inline]
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        let root = *self.keys.first()?;
        if (root >> 64) as u64 > horizon.as_nanos() {
            return None;
        }
        self.pop()
    }

    /// The firing instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&key| unpack_time(key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.events.clear();
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.keys.reserve(additional);
        self.events.reserve(additional);
    }

    /// The raw heap slots for checkpointing: packed keys, parallel
    /// payloads and the schedule counter, in verbatim slot order.
    ///
    /// Restoring via [`EventQueue::restore_slots`] reproduces the exact
    /// internal layout, so the pop sequence — including FIFO tie-breaks
    /// and every subsequent sift — continues bit-identically to the
    /// snapshotted queue.
    pub fn snapshot_slots(&self) -> (&[u128], &[E], u64) {
        (&self.keys, &self.events, self.next_seq)
    }

    /// Overwrites this queue with raw slots captured by
    /// [`EventQueue::snapshot_slots`]. The slices must be restored
    /// verbatim (same order), not re-sorted: the heap property is a
    /// function of the insertion history that produced them.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `events` differ in length, or if `next_seq`
    /// is not beyond every restored sequence number — either would
    /// corrupt the queue's determinism contract.
    pub fn restore_slots(&mut self, keys: Vec<u128>, events: Vec<E>, next_seq: u64) {
        assert_eq!(keys.len(), events.len(), "keys and events stay parallel");
        assert!(
            keys.iter().all(|&k| (k & u128::from(SEQ_MASK)) < u128::from(next_seq)),
            "next_seq must exceed every restored sequence number"
        );
        self.keys = keys;
        self.events = events;
        self.next_seq = next_seq;
    }

    // Both sifts move the travelling key through a "hole" — one store
    // per level instead of a three-move swap — and cache the keys they
    // compare so each level does the minimum number of `u128` loads.
    // The comparison sequence (and therefore the final heap layout) is
    // identical to the textbook swap formulation.

    fn sift_up(&mut self, mut idx: usize) {
        let key = self.keys[idx];
        while idx > 0 {
            let parent = (idx - 1) / ARITY;
            let parent_key = self.keys[parent];
            if parent_key <= key {
                break;
            }
            self.keys[idx] = parent_key;
            self.events.swap(idx, parent);
            idx = parent;
        }
        self.keys[idx] = key;
    }

    fn sift_down(&mut self, mut idx: usize) {
        let len = self.keys.len();
        let key = self.keys[idx];
        loop {
            let first = idx * ARITY + 1;
            if first >= len {
                break;
            }
            let last = (first + ARITY).min(len);
            let mut min = first;
            let mut min_key = self.keys[first];
            for child in first + 1..last {
                let child_key = self.keys[child];
                if child_key < min_key {
                    min = child;
                    min_key = child_key;
                }
            }
            if key <= min_key {
                break;
            }
            self.keys[idx] = min_key;
            self.events.swap(idx, min);
            idx = min;
        }
        self.keys[idx] = key;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.keys.len())
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.pop().unwrap().at, SimTime::from_nanos(7));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(30), "c");
        assert_eq!(q.pop().unwrap().event, "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "early");
        q.schedule(SimTime::from_nanos(30), "late");
        let hit = q.pop_at_or_before(SimTime::from_nanos(10)).unwrap();
        assert_eq!(hit.event, "early");
        assert!(q.pop_at_or_before(SimTime::from_nanos(20)).is_none());
        assert_eq!(q.len(), 1, "miss must not remove the event");
        assert_eq!(q.pop_at_or_before(SimTime::from_nanos(30)).unwrap().event, "late");
    }

    #[test]
    fn large_shuffled_load_pops_sorted() {
        // Deterministic pseudo-shuffle exercising multi-level sifts.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut expect: Vec<u64> = Vec::new();
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = x % 1_000; // dense collisions to stress FIFO ordering
            q.schedule(SimTime::from_nanos(t), (t, i));
            expect.push((t << 32) | i);
        }
        expect.sort_unstable();
        let mut popped = Vec::new();
        let mut last = (SimTime::ZERO, 0u64);
        while let Some(s) = q.pop() {
            let (t, i) = s.event;
            assert_eq!(s.at, SimTime::from_nanos(t));
            assert!((s.at, i) >= last, "order regressed at {t}/{i}");
            last = (s.at, i);
            popped.push((t << 32) | i);
        }
        assert_eq!(popped, expect);
    }

    #[test]
    fn restored_slots_pop_identically() {
        // Build a queue with collisions mid-flight, snapshot it, and
        // check the restored queue's pop sequence (and the sequence
        // numbers of later schedules) match the original exactly.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(SimTime::from_nanos(x % 64), i);
        }
        for _ in 0..123 {
            q.pop();
        }
        let (keys, events, next_seq) = q.snapshot_slots();
        let mut restored = EventQueue::new();
        restored.restore_slots(keys.to_vec(), events.to_vec(), next_seq);
        // Interleave further schedules with pops on both queues.
        for i in 0..50u64 {
            q.schedule(SimTime::from_nanos(i % 8), 1_000 + i);
            restored.schedule(SimTime::from_nanos(i % 8), 1_000 + i);
        }
        loop {
            match (q.pop(), restored.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
        assert_eq!(q.scheduled_total(), restored.scheduled_total());
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn restore_slots_rejects_length_mismatch() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.restore_slots(vec![0u128], vec![], 1);
    }

    #[test]
    fn lanes_order_simultaneous_events_by_lane_then_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(3);
        q.schedule_in_lane(t, 2, "lane2-first");
        q.schedule_in_lane(t, 1, "lane1-first");
        q.schedule(t, "lane0");
        q.schedule_in_lane(t, 1, "lane1-second");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["lane0", "lane1-first", "lane1-second", "lane2-first"]);
    }

    #[test]
    fn lane_zero_keys_match_legacy_packing() {
        // `schedule` must keep producing the pre-lane key layout so
        // existing snapshots and golden seeds stay bit-identical.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(7), ());
        let (keys, _, _) = q.snapshot_slots();
        assert_eq!(keys[0], (7u128 << 64));
        assert!(keys.contains(&((7u128 << 64) | 1)));
    }

    #[test]
    fn lane_beats_sequence_at_same_instant() {
        // An earlier-scheduled high-lane event still pops after a
        // later-scheduled low-lane event at the same instant.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        q.schedule_in_lane(t, 5, "high");
        for _ in 0..100 {
            q.schedule_in_lane(t, 1, "low");
        }
        assert_eq!(q.pop().unwrap().event, "low");
        let mut last = "";
        while let Some(s) = q.pop() {
            last = s.event;
        }
        assert_eq!(last, "high");
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
