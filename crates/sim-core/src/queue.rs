//! An analytic FIFO single-server queue.
//!
//! Network links, NIC ingress paths and kernel processing stages are all
//! work-conserving FIFO servers with a fixed service rate. Rather than
//! simulating them with per-packet start/finish events, [`RateQueue`]
//! computes each job's departure time analytically at arrival time:
//!
//! ```text
//! start     = max(arrival, previous departure)
//! departure = start + service
//! ```
//!
//! which is exact for FIFO order and halves the event count.

use crate::time::{SimDuration, SimTime};

/// The result of offering one job to a [`RateQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueOutcome {
    /// When service began (equals the arrival time if the queue was idle).
    pub start: SimTime,
    /// When the job departs the queue.
    pub departure: SimTime,
    /// Time spent waiting behind earlier jobs.
    pub queueing: SimDuration,
    /// Time spent in service.
    pub service: SimDuration,
}

impl QueueOutcome {
    /// Total sojourn time (queueing + service).
    pub fn sojourn(&self) -> SimDuration {
        self.queueing + self.service
    }
}

/// An analytic FIFO single-server queue with utilisation accounting.
///
/// # Examples
///
/// ```
/// use treadmill_sim_core::{RateQueue, SimDuration, SimTime};
///
/// let mut link = RateQueue::new("uplink");
/// let first = link.offer(SimTime::ZERO, SimDuration::from_micros(10));
/// assert_eq!(first.queueing, SimDuration::ZERO);
/// // Arrives while the first job is still in service: waits 5us.
/// let second = link.offer(SimTime::from_micros(5), SimDuration::from_micros(10));
/// assert_eq!(second.queueing, SimDuration::from_micros(5));
/// assert_eq!(second.departure, SimTime::from_micros(20));
/// ```
#[derive(Debug, Clone)]
pub struct RateQueue {
    name: String,
    free_at: SimTime,
    busy: SimDuration,
    jobs: u64,
    total_queueing: SimDuration,
    last_arrival: SimTime,
}

impl RateQueue {
    /// Creates an idle queue. `name` appears in debug output only.
    pub fn new(name: impl Into<String>) -> Self {
        RateQueue {
            name: name.into(),
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            jobs: 0,
            total_queueing: SimDuration::ZERO,
            last_arrival: SimTime::ZERO,
        }
    }

    /// The queue's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Offers a job arriving at `arrival` needing `service` time.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if arrivals go backwards in time; FIFO
    /// analysis requires monotone arrivals.
    pub fn offer(&mut self, arrival: SimTime, service: SimDuration) -> QueueOutcome {
        debug_assert!(
            arrival >= self.last_arrival,
            "non-monotone arrival at {} ({}), last was {}",
            arrival,
            self.name,
            self.last_arrival,
        );
        self.last_arrival = arrival;
        let start = arrival.max(self.free_at);
        let departure = start + service;
        self.free_at = departure;
        self.busy += service;
        self.jobs += 1;
        let queueing = start.saturating_duration_since(arrival);
        self.total_queueing += queueing;
        QueueOutcome {
            start,
            departure,
            queueing,
            service,
        }
    }

    /// The instant the server becomes idle given jobs offered so far.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Cumulative busy (service) time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Cumulative queueing (waiting) time across all jobs.
    pub fn total_queueing(&self) -> SimDuration {
        self.total_queueing
    }

    /// Mean queueing delay per job, in microseconds.
    pub fn mean_queueing_micros(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_queueing.as_micros_f64() / self.jobs as f64
        }
    }

    /// Utilisation over `[SimTime::ZERO, now]`: busy time divided by
    /// elapsed time, clamped to `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_nanos();
        if elapsed == 0 {
            return 0.0;
        }
        (self.busy.as_nanos() as f64 / elapsed as f64).min(1.0)
    }

    /// Resets counters but keeps the server's `free_at` horizon, so
    /// measurement windows can be restarted without breaking causality.
    pub fn reset_counters(&mut self) {
        self.busy = SimDuration::ZERO;
        self.jobs = 0;
        self.total_queueing = SimDuration::ZERO;
    }

    /// The mutable state a checkpoint must capture (the name is
    /// configuration and survives a rebuild).
    pub fn state(&self) -> RateQueueState {
        RateQueueState {
            free_at: self.free_at,
            busy: self.busy,
            jobs: self.jobs,
            total_queueing: self.total_queueing,
            last_arrival: self.last_arrival,
        }
    }

    /// Overwrites the mutable state with a checkpointed
    /// [`RateQueueState`].
    pub fn restore_state(&mut self, state: RateQueueState) {
        self.free_at = state.free_at;
        self.busy = state.busy;
        self.jobs = state.jobs;
        self.total_queueing = state.total_queueing;
        self.last_arrival = state.last_arrival;
    }
}

/// A [`RateQueue`]'s mutable state, captured for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateQueueState {
    /// When the server next becomes idle.
    pub free_at: SimTime,
    /// Cumulative busy time.
    pub busy: SimDuration,
    /// Jobs served.
    pub jobs: u64,
    /// Cumulative queueing time.
    pub total_queueing: SimDuration,
    /// Most recent arrival instant (monotonicity guard).
    pub last_arrival: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_serves_immediately() {
        let mut q = RateQueue::new("q");
        let out = q.offer(SimTime::from_micros(3), SimDuration::from_micros(2));
        assert_eq!(out.start, SimTime::from_micros(3));
        assert_eq!(out.departure, SimTime::from_micros(5));
        assert_eq!(out.queueing, SimDuration::ZERO);
        assert_eq!(out.sojourn(), SimDuration::from_micros(2));
    }

    #[test]
    fn back_to_back_jobs_queue() {
        let mut q = RateQueue::new("q");
        q.offer(SimTime::ZERO, SimDuration::from_micros(10));
        let second = q.offer(SimTime::from_micros(1), SimDuration::from_micros(10));
        assert_eq!(second.start, SimTime::from_micros(10));
        assert_eq!(second.queueing, SimDuration::from_micros(9));
        let third = q.offer(SimTime::from_micros(2), SimDuration::from_micros(1));
        assert_eq!(third.departure, SimTime::from_micros(21));
    }

    #[test]
    fn idle_gap_resets_wait() {
        let mut q = RateQueue::new("q");
        q.offer(SimTime::ZERO, SimDuration::from_micros(1));
        let late = q.offer(SimTime::from_micros(100), SimDuration::from_micros(1));
        assert_eq!(late.queueing, SimDuration::ZERO);
    }

    #[test]
    fn accounting() {
        let mut q = RateQueue::new("q");
        q.offer(SimTime::ZERO, SimDuration::from_micros(10));
        q.offer(SimTime::ZERO, SimDuration::from_micros(10));
        assert_eq!(q.jobs(), 2);
        assert_eq!(q.busy_time(), SimDuration::from_micros(20));
        assert_eq!(q.total_queueing(), SimDuration::from_micros(10));
        assert_eq!(q.mean_queueing_micros(), 5.0);
        // 20us busy over 40us elapsed = 50% utilisation.
        assert_eq!(q.utilization(SimTime::from_micros(40)), 0.5);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut q = RateQueue::new("q");
        q.offer(SimTime::ZERO, SimDuration::from_micros(100));
        assert_eq!(q.utilization(SimTime::from_micros(10)), 1.0);
        assert_eq!(RateQueue::new("idle").utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_counters_keeps_horizon() {
        let mut q = RateQueue::new("q");
        q.offer(SimTime::ZERO, SimDuration::from_micros(10));
        q.reset_counters();
        assert_eq!(q.jobs(), 0);
        // Still busy until 10us: a job at 5us must wait.
        let out = q.offer(SimTime::from_micros(5), SimDuration::from_micros(1));
        assert_eq!(out.queueing, SimDuration::from_micros(5));
    }
}
