//! The checked-in baseline (`lint-baseline.toml`) and its ratchet.
//!
//! The baseline records *exactly* how much grandfathered debt exists:
//! per-crate PANIC001 budgets and per-`RULE:file` grandfathered counts
//! for the deterministic rules. `--check` enforces an exact match in
//! both directions — more findings than budgeted fails (new debt), and
//! fewer findings than budgeted also fails with the number to write
//! (the ratchet: once debt is paid down, the baseline must shrink to
//! match and can never grow back).
//!
//! The file is parsed with a deliberately tiny TOML-subset reader
//! (sections, `"key" = integer`, comments) so the lint gate stays
//! dependency-free.

use std::collections::BTreeMap;

/// Parsed baseline. Missing entries mean a budget of zero.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// `[panic-budget]`: crate name → allowed PANIC001 sites in
    /// non-test library code.
    pub panic_budget: BTreeMap<String, usize>,
    /// `[panic-budget-files]`: workspace-relative file path → allowed
    /// PANIC001 sites in that file. A listed file is carved out of its
    /// crate's pool and judged on its own budget — `= 0` pins a file
    /// that must stay panic-free even while its crate still carries
    /// debt.
    pub panic_budget_files: BTreeMap<String, usize>,
    /// `[grandfathered]`: `"RULE:path"` → allowed findings of that rule
    /// in that file.
    pub grandfathered: BTreeMap<String, usize>,
}

/// Parses the TOML subset used by `lint-baseline.toml`.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut baseline = Baseline::default();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.split_once('#') {
            // A `#` inside a quoted key is part of the key, not a
            // comment; keys here never contain `#`, so plain split is
            // safe for this subset.
            Some((before, _)) if !before.contains('"') || before.matches('"').count() % 2 == 0 => {
                before.trim()
            }
            _ => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            if !matches!(
                section.as_str(),
                "panic-budget" | "panic-budget-files" | "grandfathered"
            ) {
                return Err(format!("line {lineno}: unknown section [{section}]"));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`"));
        };
        let key = key.trim().trim_matches('"').to_string();
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("line {lineno}: value must be a non-negative integer"))?;
        match section.as_str() {
            "panic-budget" => {
                baseline.panic_budget.insert(key, value);
            }
            "panic-budget-files" => {
                baseline.panic_budget_files.insert(key, value);
            }
            "grandfathered" => {
                baseline.grandfathered.insert(key, value);
            }
            _ => return Err(format!("line {lineno}: entry outside a section")),
        }
    }
    Ok(baseline)
}

/// Rewrites baseline text against the actual counts from an analysis
/// (`--prune-baseline`): entries whose debt is fully paid are dropped,
/// entries above the remaining debt are lowered, and comments, blank
/// lines, and section order are preserved. `[panic-budget-files]`
/// entries are never dropped — they shrink to the actual count, so a
/// paid-off carve-out becomes a permanent `= 0` pin instead of quietly
/// rejoining its crate's pool.
pub fn prune(text: &str, analysis: &crate::Analysis) -> String {
    let mut out = String::new();
    let mut section = String::new();
    for raw in text.lines() {
        // Split a trailing comment off, mirroring `parse`'s rule.
        let (body, comment) = match raw.split_once('#') {
            Some((before, after))
                if !before.contains('"') || before.matches('"').count() % 2 == 0 =>
            {
                (before, Some(after))
            }
            _ => (raw, None),
        };
        let line = body.trim();
        if line.is_empty() {
            out.push_str(raw);
            out.push('\n');
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            out.push_str(raw);
            out.push('\n');
            continue;
        }
        let Some((key_part, value_part)) = line.split_once('=') else {
            out.push_str(raw);
            out.push('\n');
            continue;
        };
        let key = key_part.trim().trim_matches('"').to_string();
        let budget: usize = match value_part.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                out.push_str(raw);
                out.push('\n');
                continue;
            }
        };
        let (actual, keep_at_zero) = match section.as_str() {
            "panic-budget" => (analysis.panic_actual.get(&key).copied().unwrap_or(0), false),
            "panic-budget-files" => (
                analysis.panic_file_actual.get(&key).copied().unwrap_or(0),
                true,
            ),
            "grandfathered" => (analysis.grand_actual.get(&key).copied().unwrap_or(0), false),
            _ => {
                out.push_str(raw);
                out.push('\n');
                continue;
            }
        };
        let new = budget.min(actual);
        if new == budget {
            out.push_str(raw);
            out.push('\n');
        } else if new > 0 || keep_at_zero {
            out.push_str(&format!("\"{key}\" = {new}"));
            if let Some(c) = comment {
                out.push_str("  #");
                out.push_str(c);
            }
            out.push('\n');
        }
        // else: debt fully paid — the entry is dropped.
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analysis;

    #[test]
    fn parses_sections_comments_and_quoted_keys() {
        let text = "\
# tml-lint baseline
[panic-budget]
\"treadmill-stats\" = 12  # solver invariants
treadmill-core = 3

[panic-budget-files]
\"crates/inference/src/analytic.rs\" = 0  # pinned panic-free

[grandfathered]
\"DET002:crates/bench/src/bin/perf_smoke.rs\" = 3
";
        let b = parse(text).expect("parses");
        assert_eq!(b.panic_budget.get("treadmill-stats"), Some(&12));
        assert_eq!(b.panic_budget.get("treadmill-core"), Some(&3));
        assert_eq!(
            b.panic_budget_files.get("crates/inference/src/analytic.rs"),
            Some(&0)
        );
        assert_eq!(
            b.grandfathered
                .get("DET002:crates/bench/src/bin/perf_smoke.rs"),
            Some(&3)
        );
    }

    #[test]
    fn rejects_unknown_sections_and_bad_values() {
        assert!(parse("[mystery]\n").is_err());
        assert!(parse("[panic-budget]\nx = -1\n").is_err());
        assert!(parse("[panic-budget]\nno-equals\n").is_err());
    }

    #[test]
    fn empty_file_is_empty_baseline() {
        let b = parse("").expect("empty ok");
        assert!(b.panic_budget.is_empty() && b.grandfathered.is_empty());
        assert!(b.panic_budget_files.is_empty());
    }

    #[test]
    fn prune_drops_lowers_and_pins() {
        let text = "\
# header comment stays
[panic-budget]
\"treadmill-stats\" = 4  # solver invariants
treadmill-core = 2

[panic-budget-files]
\"crates/inference/src/analytic.rs\" = 0
\"crates/core/src/sweep.rs\" = 3

[grandfathered]
\"DET002:crates/x/src/y.rs\" = 2
\"DET001:crates/x/src/z.rs\" = 1
";
        let mut analysis = Analysis::default();
        // stats paid one site down (4 → 3); core paid off entirely.
        analysis.panic_actual.insert("treadmill-stats".to_string(), 3);
        // the sweep carve-out is fully paid: it must pin at 0, not vanish.
        analysis
            .panic_file_actual
            .insert("crates/core/src/sweep.rs".to_string(), 0);
        // one grandfathered entry shrinks, the other is dead.
        analysis
            .grand_actual
            .insert("DET002:crates/x/src/y.rs".to_string(), 1);

        let pruned = prune(text, &analysis);
        assert!(pruned.contains("# header comment stays"));
        assert!(pruned.contains("\"treadmill-stats\" = 3"), "{pruned}");
        assert!(pruned.contains("# solver invariants"), "comment preserved");
        assert!(!pruned.contains("treadmill-core"), "paid-off crate dropped");
        assert!(
            pruned.contains("\"crates/inference/src/analytic.rs\" = 0"),
            "existing pin untouched"
        );
        assert!(
            pruned.contains("\"crates/core/src/sweep.rs\" = 0"),
            "paid-off carve-out becomes a pin: {pruned}"
        );
        assert!(pruned.contains("\"DET002:crates/x/src/y.rs\" = 1"));
        assert!(!pruned.contains("DET001:crates/x/src/z.rs"), "dead entry dropped");

        // The pruned text reparses, and pruning is idempotent.
        let b = parse(&pruned).expect("pruned baseline parses");
        assert_eq!(b.panic_budget.get("treadmill-stats"), Some(&3));
        assert_eq!(prune(&pruned, &analysis), pruned);
    }
}
