//! Per-crate module graph and whole-workspace call graph.
//!
//! Built from the item models in [`crate::parse`]. Nodes are function
//! definitions; edges are call sites resolved *conservatively*: a call
//! may point at several candidate definitions (trait methods resolve
//! to every impl with a matching name), and an edge is added for each.
//! Over-approximating edges is safe for every rule built on top — a
//! spurious edge can only make the reachability analysis *more*
//! cautious, never hide a real path.
//!
//! Resolution is tiered, most-specific first:
//!
//! 1. `self.m(…)` inside `impl T` → methods named `m` on `T` in the
//!    same crate;
//! 2. `Type::f(…)` / imported names → the named type/crate;
//! 3. same file → same crate → dependency crates (from `Cargo.toml`,
//!    transitively closed), arity-matched candidates preferred with a
//!    name-only fallback.
//!
//! Calls that resolve to nothing (std / vendored-dependency functions)
//! simply contribute no edges.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{CallSite, FnDef, ParsedFile};

/// A call-graph edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee function id.
    pub to: usize,
    /// 1-based call-site line in the caller's file.
    pub line: usize,
    /// The call sits inside a `catch_unwind` argument.
    pub caught: bool,
}

/// The workspace graph: parsed files plus the resolved call graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub files: Vec<ParsedFile>,
    /// Function id → (file index, index into that file's `fns`).
    pub fn_locs: Vec<(usize, usize)>,
    /// Function id → owning crate package name.
    pub fn_crates: Vec<String>,
    /// Outgoing edges per function id.
    pub out_edges: Vec<Vec<Edge>>,
    /// Incoming edges per function id: (caller id, call line).
    pub in_edges: Vec<Vec<(usize, usize)>>,
    /// Crate → transitive dependency closure (workspace crates only).
    deps: BTreeMap<String, BTreeSet<String>>,
    /// True when no dependency information was supplied: every crate
    /// is assumed to depend on every other (in-memory analysis).
    deps_unknown: bool,
    by_name: BTreeMap<String, Vec<usize>>,
    file_index: BTreeMap<String, usize>,
}

impl Graph {
    /// Builds the graph. `direct_deps` maps crate package names to
    /// their direct workspace dependencies; pass an empty map to treat
    /// every crate as depending on every other (the conservative
    /// fallback used by in-memory multi-file analysis).
    pub fn build(files: Vec<ParsedFile>, direct_deps: &BTreeMap<String, Vec<String>>) -> Graph {
        let mut g = Graph {
            deps_unknown: direct_deps.is_empty(),
            deps: transitive_closure(direct_deps),
            ..Graph::default()
        };
        for (fi, file) in files.iter().enumerate() {
            g.file_index.insert(file.path.clone(), fi);
            let krate = crate::crate_name(&file.path);
            for (li, f) in file.fns.iter().enumerate() {
                let id = g.fn_locs.len();
                g.fn_locs.push((fi, li));
                g.fn_crates.push(krate.clone());
                g.by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        g.files = files;
        g.out_edges = vec![Vec::new(); g.fn_locs.len()];
        g.in_edges = vec![Vec::new(); g.fn_locs.len()];
        for caller in 0..g.fn_locs.len() {
            let (fi, li) = g.fn_locs[caller];
            // Clone the call list to keep the borrow checker out of the
            // resolution walk; call lists are small.
            let calls = g.files[fi].fns[li].calls.clone();
            for call in &calls {
                if call.is_macro {
                    continue;
                }
                for to in g.resolve(caller, call) {
                    g.out_edges[caller].push(Edge {
                        to,
                        line: call.line,
                        caught: call.caught,
                    });
                    g.in_edges[to].push((caller, call.line));
                }
            }
        }
        g
    }

    pub fn fn_count(&self) -> usize {
        self.fn_locs.len()
    }

    pub fn fn_def(&self, id: usize) -> &FnDef {
        let (fi, li) = self.fn_locs[id];
        &self.files[fi].fns[li]
    }

    pub fn fn_file(&self, id: usize) -> &str {
        &self.files[self.fn_locs[id].0].path
    }

    /// `path:line fn name` — the display form used in explain chains.
    pub fn fn_display(&self, id: usize) -> String {
        let f = self.fn_def(id);
        let qual = match &f.self_ty {
            Some(t) => format!("{t}::{}", f.name),
            None => f.name.clone(),
        };
        format!("{}:{} fn {}", self.fn_file(id), f.line, qual)
    }

    /// The innermost function containing `line` (1-based) of `file`.
    pub fn fn_at(&self, file: &str, line: usize) -> Option<usize> {
        let fi = *self.file_index.get(file)?;
        let li = self.files[fi].fn_at(line)?;
        self.fn_locs.iter().position(|&loc| loc == (fi, li))
    }

    /// `mod child;` declarations of `file` resolved to workspace file
    /// paths (the per-crate module graph).
    pub fn module_children(&self, file: &str) -> Vec<String> {
        let Some(&fi) = self.file_index.get(file) else {
            return Vec::new();
        };
        let path = &self.files[fi].path;
        let dir = match path.rsplit_once('/') {
            Some((d, leaf)) => {
                if leaf == "lib.rs" || leaf == "main.rs" || leaf == "mod.rs" {
                    d.to_string()
                } else {
                    // `foo.rs` owns `foo/bar.rs`.
                    format!("{d}/{}", leaf.trim_end_matches(".rs"))
                }
            }
            None => String::new(),
        };
        let mut out = Vec::new();
        for child in &self.files[fi].mod_decls {
            for cand in [
                format!("{dir}/{child}.rs"),
                format!("{dir}/{child}/mod.rs"),
            ] {
                let cand = cand.trim_start_matches('/').to_string();
                if self.file_index.contains_key(&cand) {
                    out.push(cand);
                    break;
                }
            }
        }
        out
    }

    fn can_call(&self, from_crate: &str, to_crate: &str) -> bool {
        if from_crate == to_crate || self.deps_unknown {
            return true;
        }
        self.deps
            .get(from_crate)
            .is_some_and(|d| d.contains(to_crate))
    }

    /// Candidate callee ids for one call site, most-specific tier wins.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let all = match self.by_name.get(&call.name) {
            Some(ids) => ids.as_slice(),
            None => return Vec::new(),
        };
        let caller_crate = &self.fn_crates[caller];
        let caller_file = self.fn_locs[caller].0;
        let caller_self_ty = self.fn_def(caller).self_ty.clone();

        if call.method {
            let methods: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&id| self.fn_def(id).has_self)
                .collect();
            // Tier 1: `self.m(…)` resolves against the impl type.
            if call.recv_self {
                if let Some(st) = &caller_self_ty {
                    let same_ty: Vec<usize> = methods
                        .iter()
                        .copied()
                        .filter(|&id| {
                            self.fn_crates[id] == *caller_crate
                                && self.fn_def(id).self_ty.as_deref() == Some(st)
                        })
                        .collect();
                    if !same_ty.is_empty() {
                        return prefer_arity(self, same_ty, call.arity);
                    }
                }
            }
            // Tier 2/3: same crate, then dependency crates.
            return self.tiered(methods, caller_crate, caller_file, None, call.arity);
        }

        // Qualified / bare path call: substitute the leading segment
        // through this file's imports.
        let file = &self.files[caller_file];
        let mut segs: Vec<String> = call.path.clone();
        if let Some(first) = segs.first().cloned() {
            if let Some(imp) = file.imports.iter().find(|i| i.alias == first) {
                let mut full = imp.path.clone();
                full.extend(segs.drain(1..));
                segs = full;
            }
        }
        // Crate hint from a `treadmill_*` / `crate` path segment.
        let mut crate_hint: Option<String> = None;
        for seg in &segs {
            if seg == "crate" {
                crate_hint = Some(caller_crate.clone());
            } else if let Some(rest) = seg.strip_prefix("treadmill_") {
                crate_hint = Some(format!("treadmill-{}", rest.replace('_', "-")));
            } else if seg == "treadmill" {
                crate_hint = Some("treadmill".to_string());
            }
        }
        // Type qualifier: `Type::f` (uppercase first letter), with
        // `Self` mapped to the caller's impl type.
        let qualifier = segs
            .iter()
            .rev()
            .nth(1)
            .map(|q| {
                if q == "Self" {
                    caller_self_ty.clone().unwrap_or_else(|| q.clone())
                } else {
                    q.clone()
                }
            })
            .filter(|q| q.chars().next().is_some_and(char::is_uppercase));

        let cands: Vec<usize> = match &qualifier {
            Some(ty) => all
                .iter()
                .copied()
                .filter(|&id| self.fn_def(id).self_ty.as_deref() == Some(ty))
                .collect(),
            None => all
                .iter()
                .copied()
                .filter(|&id| self.fn_def(id).self_ty.is_none() && !self.fn_def(id).has_self)
                .collect(),
        };
        self.tiered(cands, caller_crate, caller_file, crate_hint, call.arity)
    }

    /// Applies the same-file → same-crate → dependency tiers (or a
    /// crate hint) and the arity preference.
    fn tiered(
        &self,
        cands: Vec<usize>,
        caller_crate: &str,
        caller_file: usize,
        crate_hint: Option<String>,
        arity: usize,
    ) -> Vec<usize> {
        if let Some(hint) = crate_hint {
            let in_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| self.fn_crates[id] == hint)
                .collect();
            if !in_crate.is_empty() {
                return prefer_arity(self, in_crate, arity);
            }
        }
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| self.fn_locs[id].0 == caller_file)
            .collect();
        if !same_file.is_empty() {
            return prefer_arity(self, same_file, arity);
        }
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| self.fn_crates[id] == *caller_crate)
            .collect();
        if !same_crate.is_empty() {
            return prefer_arity(self, same_crate, arity);
        }
        let dep_crates: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| self.can_call(caller_crate, &self.fn_crates[id]))
            .collect();
        prefer_arity(self, dep_crates, arity)
    }
}

/// Keeps only arity-matching candidates when any exist (name-only
/// fallback otherwise — the parser's arity count is a heuristic).
fn prefer_arity(g: &Graph, cands: Vec<usize>, arity: usize) -> Vec<usize> {
    let exact: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| g.fn_def(id).arity == arity)
        .collect();
    if exact.is_empty() {
        cands
    } else {
        exact
    }
}

/// Transitive closure of the direct-dependency map.
fn transitive_closure(direct: &BTreeMap<String, Vec<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut closed: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (k, deps) in direct {
        closed.insert(k.clone(), deps.iter().cloned().collect());
    }
    // Iterate to a fixed point; the workspace dep graph is tiny.
    loop {
        let mut grew = false;
        let keys: Vec<String> = closed.keys().cloned().collect();
        for k in &keys {
            let level: Vec<String> = closed[k].iter().cloned().collect();
            for dep in level {
                let indirect: Vec<String> = closed
                    .get(&dep)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                let set = closed.entry(k.clone()).or_default();
                for ind in indirect {
                    grew |= set.insert(ind);
                }
            }
        }
        if !grew {
            return closed;
        }
    }
}

/// Parses the direct workspace dependencies of every crate manifest
/// under `root` (`crates/*/Cargo.toml` plus the root package), keyed
/// by package name. Only `treadmill-*` dependencies are recorded — the
/// call graph never resolves into vendored third-party code.
pub fn workspace_deps(root: &std::path::Path) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut manifests = vec![root.join("Cargo.toml")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            manifests.push(dir.join("Cargo.toml"));
        }
    }
    for manifest in manifests {
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        if let Some((name, deps)) = parse_manifest(&text) {
            out.insert(name, deps);
        }
    }
    out
}

/// Extracts (package name, treadmill-* `[dependencies]`) from one
/// manifest; returns `None` for workspace-only manifests.
fn parse_manifest(text: &str) -> Option<(String, Vec<String>)> {
    let mut name: Option<String> = None;
    let mut deps: Vec<String> = Vec::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(s) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = s.trim().to_string();
            continue;
        }
        match section.as_str() {
            "package" => {
                if let Some(v) = line.strip_prefix("name") {
                    let v = v.trim_start();
                    if let Some(v) = v.strip_prefix('=') {
                        name = Some(v.trim().trim_matches('"').to_string());
                    }
                }
            }
            "dependencies" => {
                let key = line
                    .split(['=', '.'])
                    .next()
                    .unwrap_or("")
                    .trim()
                    .trim_matches('"');
                if key.starts_with("treadmill-") && !deps.contains(&key.to_string()) {
                    deps.push(key.to_string());
                }
            }
            _ => {}
        }
    }
    name.map(|n| (n, deps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scan::scan;

    fn build(files: &[(&str, &str)]) -> Graph {
        let parsed = files
            .iter()
            .map(|(p, s)| parse_file(p, &scan(s)))
            .collect();
        Graph::build(parsed, &BTreeMap::new())
    }

    fn build_with_deps(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> Graph {
        let parsed = files
            .iter()
            .map(|(p, s)| parse_file(p, &scan(s)))
            .collect();
        let map: BTreeMap<String, Vec<String>> = deps
            .iter()
            .map(|(k, v)| (k.to_string(), v.iter().map(|s| s.to_string()).collect()))
            .collect();
        Graph::build(parsed, &map)
    }

    fn id_of(g: &Graph, name: &str) -> usize {
        (0..g.fn_count())
            .find(|&id| g.fn_def(id).name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn callees(g: &Graph, from: &str) -> Vec<String> {
        let id = id_of(g, from);
        let mut out: Vec<String> = g.out_edges[id]
            .iter()
            .map(|e| g.fn_def(e.to).name.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn bare_and_qualified_calls_resolve() {
        let g = build(&[(
            "crates/core/src/lib.rs",
            "fn a() { b(); Helper::make(); }\nfn b() {}\nstruct Helper;\nimpl Helper { fn make() {} }\n",
        )]);
        assert_eq!(callees(&g, "a"), vec!["b", "make"]);
    }

    #[test]
    fn self_method_resolves_to_impl_type_not_other_types() {
        let src = "\
struct A; struct B;
impl A {
    fn go(&self) { self.step(); }
    fn step(&self) {}
}
impl B {
    fn step(&self) { oops(); }
}
fn oops() {}
";
        let g = build(&[("crates/core/src/lib.rs", src)]);
        let go = id_of(&g, "go");
        let targets: Vec<String> = g.out_edges[go]
            .iter()
            .map(|e| {
                let d = g.fn_def(e.to);
                format!("{}::{}", d.self_ty.as_deref().unwrap_or("-"), d.name)
            })
            .collect();
        assert_eq!(targets, vec!["A::step"]);
    }

    #[test]
    fn trait_method_calls_resolve_to_every_impl() {
        // `w.observe(…)` on a generic receiver: conservative resolution
        // keeps both impls as candidates.
        let src = "\
trait World { fn observe(&mut self, v: u64); }
struct Wa; struct Wb;
impl World for Wa { fn observe(&mut self, v: u64) {} }
impl World for Wb { fn observe(&mut self, v: u64) {} }
fn drive(w: &mut Wa) { w.observe(1); }
";
        let g = build(&[("crates/core/src/lib.rs", src)]);
        let drive = id_of(&g, "drive");
        let mut tys: Vec<String> = g.out_edges[drive]
            .iter()
            .filter_map(|e| g.fn_def(e.to).self_ty.clone())
            .collect();
        tys.sort();
        assert_eq!(tys, vec!["Wa", "Wb"]);
    }

    #[test]
    fn arity_disambiguates_same_name() {
        let src = "\
fn run(a: u64) { pick(1, 2); }
fn pick(x: u64) {}
fn pick2(x: u64, y: u64) {}
";
        // Same-name different-arity: with one exact match, others drop.
        let src2 = "\
fn caller() { helper(1, 2); }
fn helper(a: u64) {}
";
        let g = build(&[("crates/core/src/a.rs", src), ("crates/core/src/b.rs", src2)]);
        // No exact-arity match → falls back to the name match.
        assert_eq!(callees(&g, "caller"), vec!["helper"]);
        let _ = src2;
    }

    #[test]
    fn imports_pin_the_target_crate() {
        let core = "pub fn write_atomic(p: u32, c: u32) {}\n";
        let clash = "pub fn write_atomic(p: u32, c: u32) {}\n";
        let server = "\
use treadmill_core::write_atomic;
fn handler() { write_atomic(1, 2); }
";
        let g = build_with_deps(
            &[
                ("crates/core/src/sweep.rs", core),
                ("crates/stats/src/util.rs", clash),
                ("crates/server/src/service.rs", server),
            ],
            &[
                ("treadmill-server", &["treadmill-core"]),
                ("treadmill-core", &[]),
                ("treadmill-stats", &[]),
            ],
        );
        let handler = id_of(&g, "handler");
        let files: Vec<&str> = g.out_edges[handler]
            .iter()
            .map(|e| g.fn_file(e.to))
            .collect();
        assert_eq!(files, vec!["crates/core/src/sweep.rs"]);
    }

    #[test]
    fn dependency_direction_is_enforced() {
        // core does not depend on server: a name collision in server
        // must not produce an edge out of core.
        let core = "pub fn tick() { helper(); }\n";
        let server = "pub fn helper() {}\n";
        let g = build_with_deps(
            &[
                ("crates/core/src/lib.rs", core),
                ("crates/server/src/lib.rs", server),
            ],
            &[
                ("treadmill-server", &["treadmill-core"]),
                ("treadmill-core", &[]),
            ],
        );
        assert!(callees(&g, "tick").is_empty());
    }

    #[test]
    fn transitive_deps_are_closed() {
        let a = "pub fn top() { bottom(); }\n";
        let c = "pub fn bottom() {}\n";
        let g = build_with_deps(
            &[
                ("crates/server/src/lib.rs", a),
                ("crates/sim-core/src/lib.rs", c),
            ],
            &[
                ("treadmill-server", &["treadmill-core"]),
                ("treadmill-core", &["treadmill-sim-core"]),
                ("treadmill-sim-core", &[]),
            ],
        );
        assert_eq!(callees(&g, "top"), vec!["bottom"]);
    }

    #[test]
    fn module_children_resolve_sibling_and_subdir() {
        let g = build(&[
            ("crates/core/src/lib.rs", "mod sweep;\nmod deep;\n"),
            ("crates/core/src/sweep.rs", ""),
            ("crates/core/src/deep/mod.rs", ""),
        ]);
        assert_eq!(
            g.module_children("crates/core/src/lib.rs"),
            vec!["crates/core/src/sweep.rs", "crates/core/src/deep/mod.rs"]
        );
    }

    #[test]
    fn manifest_parsing_extracts_treadmill_deps() {
        let text = "\
[package]
name = \"treadmill-server\"

[dependencies]
treadmill-core.workspace = true
treadmill-inference = { workspace = true }
serde.workspace = true

[dev-dependencies]
proptest.workspace = true
";
        let (name, deps) = parse_manifest(text).expect("parses");
        assert_eq!(name, "treadmill-server");
        assert_eq!(deps, vec!["treadmill-core", "treadmill-inference"]);
    }
}
