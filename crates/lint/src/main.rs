//! `tml-lint` — CLI for the workspace determinism & soundness analyzer.
//!
//! ```text
//! tml-lint [--check] [--json] [--format sarif] [--baseline PATH] [--root PATH]
//!          [--list-rules] [--explain RULE:file:line] [--prune-baseline]
//! ```
//!
//! Default mode prints a human report and always exits 0 (informational).
//! `--check` is the CI gate: exit 1 on any unsuppressed finding or any
//! baseline ratchet violation, 2 on usage/IO errors. `--explain` prints
//! the call-chain evidence behind a reachability verdict at a site.

use std::path::PathBuf;
use std::process::ExitCode;

use treadmill_lint::{analyze_workspace, baseline, rules, sarif, to_json};

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Options {
    check: bool,
    format: Format,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    list_rules: bool,
    /// `RULE:file:line` to explain.
    explain: Option<(String, String, usize)>,
    prune_baseline: bool,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("tml-lint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::RULES {
            println!("{}  {}", rule.id, compact(rule.summary));
            println!("        fix: {}", compact(rule.hint));
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.clone().or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("tml-lint: could not locate a workspace root (no Cargo.toml with [workspace] above the current directory); pass --root");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.toml"));
    let baseline = if baseline_path.exists() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|text| baseline::parse(&text))
        {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("tml-lint: bad baseline {}: {msg}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else if opts.baseline.is_some() {
        eprintln!("tml-lint: baseline {} not found", baseline_path.display());
        return ExitCode::from(2);
    } else {
        baseline::Baseline::default()
    };

    let analysis = match analyze_workspace(&root, &baseline) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tml-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some((rule, file, line)) = &opts.explain {
        match &analysis.semantics {
            Some(sem) => {
                println!("{}", sem.explain(rule, file, *line));
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("tml-lint: no reachability model available");
                return ExitCode::from(2);
            }
        }
    }

    if opts.prune_baseline {
        if !baseline_path.exists() {
            eprintln!(
                "tml-lint: cannot prune: baseline {} not found",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tml-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let pruned = baseline::prune(&text, &analysis);
        if pruned == text {
            println!("tml-lint: baseline already minimal, nothing to prune");
        } else if let Err(e) = std::fs::write(&baseline_path, &pruned) {
            eprintln!("tml-lint: writing pruned baseline: {e}");
            return ExitCode::from(2);
        } else {
            println!("tml-lint: pruned {}", baseline_path.display());
        }
        return ExitCode::SUCCESS;
    }

    match opts.format {
        Format::Json => println!("{}", to_json(&analysis)),
        Format::Sarif => println!("{}", sarif::to_sarif(&analysis)),
        Format::Human => {
            for f in &analysis.failures {
                println!("FAIL {} {}:{} — {}", f.rule, f.file, f.line, f.message);
                println!("     fix: {}", f.hint);
            }
            for e in &analysis.ratchet_errors {
                println!("RATCHET {e}");
            }
            println!(
                "tml-lint: {} file(s) scanned — {} failure(s), {} budgeted, {} suppressed, {} ratchet error(s)",
                analysis.files_scanned,
                analysis.failures.len(),
                analysis.budgeted.len(),
                analysis.suppressed,
                analysis.ratchet_errors.len(),
            );
        }
    }

    if opts.check && analysis.is_failure() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "\
usage: tml-lint [--check] [--json] [--format FMT] [--baseline PATH] [--root PATH]
                [--list-rules] [--explain RULE:file:line] [--prune-baseline]
  --check                  CI gate: exit 1 on unsuppressed findings or ratchet violations
  --json                   machine-readable output (alias for --format json)
  --format FMT             output format: human (default), json, sarif
  --baseline PATH          baseline file (default: <root>/lint-baseline.toml when present)
  --root PATH              workspace root (default: nearest ancestor with [workspace])
  --list-rules             print the rule registry and exit
  --explain RULE:file:line print reachability evidence for a site and exit
  --prune-baseline         rewrite the baseline, dropping paid-off entries";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        format: Format::Human,
        root: None,
        baseline: None,
        list_rules: false,
        explain: None,
        prune_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.format = Format::Json,
            "--list-rules" => opts.list_rules = true,
            "--prune-baseline" => opts.prune_baseline = true,
            "--format" => {
                let fmt = args.next().ok_or("--format requires a value")?;
                opts.format = match fmt.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--explain" => {
                let spec = args.next().ok_or("--explain requires RULE:file:line")?;
                opts.explain = Some(parse_explain(&spec)?);
            }
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root requires a path")?,
                ));
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline requires a path")?,
                ));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Parses `RULE:file:line` (the file part may itself contain no `:` on
/// unix paths, so split at the first and last colon).
fn parse_explain(spec: &str) -> Result<(String, String, usize), String> {
    let (rule, rest) = spec
        .split_once(':')
        .ok_or("--explain expects RULE:file:line")?;
    let (file, line) = rest
        .rsplit_once(':')
        .ok_or("--explain expects RULE:file:line")?;
    let line: usize = line
        .parse()
        .map_err(|_| format!("bad line number `{line}` in --explain"))?;
    if rule.is_empty() || file.is_empty() {
        return Err("--explain expects RULE:file:line".to_string());
    }
    Ok((rule.to_string(), file.to_string(), line))
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn compact(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}
