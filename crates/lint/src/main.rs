//! `tml-lint` — CLI for the workspace determinism & soundness analyzer.
//!
//! ```text
//! tml-lint [--check] [--json] [--baseline PATH] [--root PATH] [--list-rules]
//! ```
//!
//! Default mode prints a human report and always exits 0 (informational).
//! `--check` is the CI gate: exit 1 on any unsuppressed finding or any
//! baseline ratchet violation, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

use treadmill_lint::{analyze_workspace, baseline, rules, to_json};

struct Options {
    check: bool,
    json: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    list_rules: bool,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("tml-lint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::RULES {
            println!("{}  {}", rule.id, compact(rule.summary));
            println!("        fix: {}", compact(rule.hint));
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.clone().or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("tml-lint: could not locate a workspace root (no Cargo.toml with [workspace] above the current directory); pass --root");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.toml"));
    let baseline = if baseline_path.exists() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|text| baseline::parse(&text))
        {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("tml-lint: bad baseline {}: {msg}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else if opts.baseline.is_some() {
        eprintln!("tml-lint: baseline {} not found", baseline_path.display());
        return ExitCode::from(2);
    } else {
        baseline::Baseline::default()
    };

    let analysis = match analyze_workspace(&root, &baseline) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tml-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", to_json(&analysis));
    } else {
        for f in &analysis.failures {
            println!("FAIL {} {}:{} — {}", f.rule, f.file, f.line, f.message);
            println!("     fix: {}", f.hint);
        }
        for e in &analysis.ratchet_errors {
            println!("RATCHET {e}");
        }
        println!(
            "tml-lint: {} file(s) scanned — {} failure(s), {} budgeted, {} suppressed, {} ratchet error(s)",
            analysis.files_scanned,
            analysis.failures.len(),
            analysis.budgeted.len(),
            analysis.suppressed,
            analysis.ratchet_errors.len(),
        );
    }

    if opts.check && analysis.is_failure() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "\
usage: tml-lint [--check] [--json] [--baseline PATH] [--root PATH] [--list-rules]
  --check           CI gate: exit 1 on unsuppressed findings or ratchet violations
  --json            machine-readable output
  --baseline PATH   baseline file (default: <root>/lint-baseline.toml when present)
  --root PATH       workspace root (default: nearest ancestor with [workspace])
  --list-rules      print the rule registry and exit";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        json: false,
        root: None,
        baseline: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root requires a path")?,
                ));
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline requires a path")?,
                ));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn compact(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}
