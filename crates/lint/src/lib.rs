//! `treadmill-lint` — static determinism & soundness analysis for the
//! Treadmill workspace.
//!
//! The simulator's statistical attribution rests on an invariant the
//! type system cannot see: every seeded run must replay *bit-identically*
//! (golden-seed tests compare full latency vectors). The classic ways
//! to silently break that — randomized `HashMap` iteration order,
//! wall-clock reads, unseeded RNG, NaN-unsafe float comparators — all
//! have an unmistakable lexical signature, so this crate implements a
//! dependency-free scanner (no `syn` in the vendored registry) plus a
//! small rule registry, and turns nondeterminism from a postmortem
//! (a golden test failing two PRs later) into a compile-gate.
//!
//! v2 adds a parse-based whole-workspace layer on top of the lexical
//! scan: [`parse`] recovers items, calls, locks, and I/O events from
//! the token stream; [`graph`] links them into a conservative
//! workspace call graph; [`reach`] runs reachability from the
//! deterministic entry points and the service boundary. Determinism
//! rules (`DET001/2/3`) outside the deterministic crates fire only
//! when the site is *provably reachable* from a deterministic entry
//! point — per-path proofs replace the old whole-crate allowlists —
//! and four semantic rules (`DET008`, `DUR001`, `PANIC002`, `NUM002`)
//! check lock discipline, durability ordering, panic containment, and
//! tainted-integer arithmetic over the same graph.
//!
//! See `DESIGN.md` § "Static analysis & determinism guarantees" for the
//! rule table, suppression syntax, and the baseline ratchet policy.

// Unit tests unwrap freely on fixtures they construct; library code is
// held to the workspace lint table (see DESIGN.md, "Static analysis").
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod baseline;
pub mod graph;
pub mod parse;
pub mod reach;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use baseline::Baseline;
use rules::{check_file, FileReport, Finding};
use scan::SourceModel;

/// Full result of a workspace analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed, unbudgeted findings — these fail `--check`.
    pub failures: Vec<Finding>,
    /// Findings covered by the baseline (grandfathered debt).
    pub budgeted: Vec<Finding>,
    /// Count of findings silenced by valid allow comments.
    pub suppressed: usize,
    /// Baseline/actual mismatches. The ratchet is exact-match: debt
    /// above budget fails (new violations), debt below budget fails
    /// too (the baseline must be shrunk to the new count).
    pub ratchet_errors: Vec<String>,
    pub files_scanned: usize,
    /// The reachability model, when the workspace pass ran (absent for
    /// single-file lexical analyses). Powers `--explain`.
    pub semantics: Option<reach::Semantics>,
    /// Actual PANIC001 counts per crate, as reconciled (for pruning).
    pub panic_actual: BTreeMap<String, usize>,
    /// Actual PANIC001 counts per pinned file, as reconciled.
    pub panic_file_actual: BTreeMap<String, usize>,
    /// Actual counts per grandfathered `RULE:file` key, as reconciled.
    pub grand_actual: BTreeMap<String, usize>,
}

impl Analysis {
    /// True when `--check` should exit non-zero.
    pub fn is_failure(&self) -> bool {
        !self.failures.is_empty() || !self.ratchet_errors.is_empty()
    }
}

/// Maps a workspace-relative path to its crate's package name.
pub fn crate_name(path: &str) -> String {
    match path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
    {
        Some(dir) => format!("treadmill-{dir}"),
        None => "treadmill".to_string(),
    }
}

/// Analyses one in-memory file with the *lexical* rules only (the
/// single-file fixture entry point). Reachability gating and semantic
/// rules need a whole workspace — see [`analyze_files`].
pub fn analyze_source(rel_path: &str, source: &str) -> FileReport {
    check_file(rel_path, &scan::scan(source))
}

/// Walks the workspace at `root`, applies every rule, and reconciles
/// the outcome against `baseline`.
pub fn analyze_workspace(root: &Path, baseline: &Baseline) -> io::Result<Analysis> {
    let mut files: Vec<(String, String)> = Vec::new();
    for rel in walk::rust_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, source));
    }
    let deps = graph::workspace_deps(root);
    Ok(analyze_files(files, &deps, baseline))
}

/// Analyses a set of in-memory files as one workspace: lexical pass,
/// call-graph construction, reachability gating of DET001/2/3 outside
/// the deterministic crates, semantic rules, then baseline
/// reconciliation. `deps` maps crate name → direct `treadmill-*`
/// dependencies (used to bound cross-crate call resolution).
pub fn analyze_files(
    files: Vec<(String, String)>,
    deps: &BTreeMap<String, Vec<String>>,
    baseline: &Baseline,
) -> Analysis {
    let mut analysis = Analysis::default();
    let mut raw: Vec<Finding> = Vec::new();
    let mut models: Vec<(String, SourceModel)> = Vec::new();
    for (rel, source) in files {
        let model = scan::scan(&source);
        let report = check_file(&rel, &model);
        analysis.suppressed += report.suppressed;
        raw.extend(report.findings);
        analysis.files_scanned += 1;
        models.push((rel, model));
    }

    let parsed = models
        .iter()
        .map(|(path, model)| parse::parse_file(path, model))
        .collect();
    let sem = reach::Semantics::compute(graph::Graph::build(parsed, deps));

    // Reachability gate: outside the deterministic crates, a lexical
    // determinism finding stands only when its containing function is
    // provably reachable from a deterministic entry point. Sites with
    // no call path (service handlers, bench bins, test helpers) are
    // exempt by proof, not by allowlist — `--explain` shows either the
    // chain or the unreachability evidence.
    raw.retain(|f| match f.rule.as_str() {
        "DET001" | "DET002" | "DET003" if !rules::is_deterministic_crate(&f.file) => {
            sem.det_reachable_at(&f.file, f.line)
        }
        _ => true,
    });

    // Semantic findings honor the same suppression comments as the
    // lexical rules.
    let model_by_path: BTreeMap<&str, &SourceModel> = models
        .iter()
        .map(|(path, model)| (path.as_str(), model))
        .collect();
    for (path, hits) in sem.findings_by_file() {
        let Some(model) = model_by_path.get(path.as_str()) else {
            continue;
        };
        for hit in hits {
            let allowed = rules::allowed_rules_at(model, hit.line.saturating_sub(1));
            if allowed.iter().any(|a| a == hit.rule_id) {
                analysis.suppressed += 1;
                continue;
            }
            let (summary, hint) = match rules::rule(hit.rule_id) {
                Some(rule) => (rule.summary, rule.hint),
                None => ("", ""),
            };
            let mut message = summary.split_whitespace().collect::<Vec<_>>().join(" ");
            if let Some(detail) = &hit.detail {
                message.push_str(": ");
                message.push_str(detail);
            }
            raw.push(Finding {
                rule: hit.rule_id.to_string(),
                file: path.clone(),
                line: hit.line,
                message,
                hint: hint.split_whitespace().collect::<Vec<_>>().join(" "),
            });
        }
    }

    reconcile(&mut analysis, raw, baseline);
    analysis.semantics = Some(sem);
    analysis
}

/// Splits raw findings into failures vs baseline-covered debt and
/// emits ratchet errors for every exact-match violation.
fn reconcile(analysis: &mut Analysis, raw: Vec<Finding>, baseline: &Baseline) {
    let mut panic_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut panic_file_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut grand_counts: BTreeMap<String, usize> = BTreeMap::new();

    for finding in raw {
        match finding.rule.as_str() {
            // A file listed in [panic-budget-files] is carved out of
            // its crate's pool: its PANIC001 findings are judged
            // against the file's own budget, so a `= 0` pin fails
            // immediately even while the crate still carries debt.
            "PANIC001" if baseline.panic_budget_files.contains_key(&finding.file) => {
                let budget = baseline.panic_budget_files[&finding.file];
                let n = panic_file_counts.entry(finding.file.clone()).or_insert(0);
                *n += 1;
                if *n <= budget {
                    analysis.budgeted.push(finding);
                } else {
                    analysis.failures.push(finding);
                }
            }
            "PANIC001" => {
                let krate = crate_name(&finding.file);
                let n = panic_counts.entry(krate.clone()).or_insert(0);
                *n += 1;
                let budget = baseline.panic_budget.get(&krate).copied().unwrap_or(0);
                if *n <= budget {
                    analysis.budgeted.push(finding);
                } else {
                    analysis.failures.push(finding);
                }
            }
            "LINT000" => analysis.failures.push(finding),
            _ => {
                let key = format!("{}:{}", finding.rule, finding.file);
                let n = grand_counts.entry(key.clone()).or_insert(0);
                *n += 1;
                let allowance = baseline.grandfathered.get(&key).copied().unwrap_or(0);
                if *n <= allowance {
                    analysis.budgeted.push(finding);
                } else {
                    analysis.failures.push(finding);
                }
            }
        }
    }

    for (krate, budget) in &baseline.panic_budget {
        let actual = panic_counts.get(krate).copied().unwrap_or(0);
        if actual < *budget {
            analysis.ratchet_errors.push(format!(
                "panic-budget for {krate} is {budget} but only {actual} PANIC001 site(s) \
                 remain — the baseline may only shrink: set \"{krate}\" = {actual} \
                 (or delete the entry if 0)"
            ));
        }
    }
    for (file, budget) in &baseline.panic_budget_files {
        let actual = panic_file_counts.get(file).copied().unwrap_or(0);
        if actual < *budget {
            analysis.ratchet_errors.push(format!(
                "panic-budget-files for {file} is {budget} but only {actual} PANIC001 \
                 site(s) remain — the baseline may only shrink: set \"{file}\" = {actual} \
                 (a `= 0` entry is a permanent pin and stays)"
            ));
        }
    }
    for (key, allowance) in &baseline.grandfathered {
        let actual = grand_counts.get(key).copied().unwrap_or(0);
        if actual < *allowance {
            analysis.ratchet_errors.push(format!(
                "grandfathered \"{key}\" = {allowance} but only {actual} finding(s) \
                 remain — the baseline may only shrink: set it to {actual} \
                 (or delete the entry if 0)"
            ));
        }
    }

    analysis.panic_actual = panic_counts;
    analysis.panic_file_actual = panic_file_counts;
    analysis.grand_actual = grand_counts;
}

/// Serialises the analysis as stable machine-readable JSON.
pub fn to_json(analysis: &Analysis) -> String {
    let mut out = String::from("{");
    push_kv(&mut out, "files_scanned", &analysis.files_scanned.to_string());
    out.push_str(",\"failures\":");
    findings_json(&mut out, &analysis.failures);
    out.push_str(",\"budgeted\":");
    findings_json(&mut out, &analysis.budgeted);
    out.push(',');
    push_kv(&mut out, "suppressed", &analysis.suppressed.to_string());
    out.push_str(",\"ratchet_errors\":[");
    for (i, e) in analysis.ratchet_errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, e);
    }
    out.push_str("]}");
    out
}

fn findings_json(out: &mut String, findings: &[Finding]) {
    out.push('[');
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        push_json_string(out, &f.rule);
        out.push_str(",\"file\":");
        push_json_string(out, &f.file);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"message\":");
        push_json_string(out, &f.message);
        out.push_str(",\"hint\":");
        push_json_string(out, &f.hint);
        out.push('}');
    }
    out.push(']');
}

fn push_kv(out: &mut String, key: &str, raw_value: &str) {
    push_json_string(out, key);
    out.push(':');
    out.push_str(raw_value);
}

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::Finding;

    fn finding(rule: &str, file: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line: 1,
            message: "m".to_string(),
            hint: "h".to_string(),
        }
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_name("crates/sim-core/src/rng.rs"), "treadmill-sim-core");
        assert_eq!(crate_name("src/lib.rs"), "treadmill");
        assert_eq!(crate_name("tests/golden_seed.rs"), "treadmill");
    }

    #[test]
    fn panic_budget_exact_match() {
        let mut baseline = Baseline::default();
        baseline
            .panic_budget
            .insert("treadmill-stats".to_string(), 2);

        // Exactly on budget: all budgeted, no ratchet errors.
        let mut a = Analysis::default();
        let two = vec![
            finding("PANIC001", "crates/stats/src/a.rs"),
            finding("PANIC001", "crates/stats/src/b.rs"),
        ];
        reconcile(&mut a, two.clone(), &baseline);
        assert_eq!((a.failures.len(), a.budgeted.len()), (0, 2));
        assert!(!a.is_failure());

        // Over budget: the overflow fails.
        let mut a = Analysis::default();
        let mut three = two.clone();
        three.push(finding("PANIC001", "crates/stats/src/c.rs"));
        reconcile(&mut a, three, &baseline);
        assert_eq!((a.failures.len(), a.budgeted.len()), (1, 2));
        assert!(a.is_failure());

        // Under budget: ratchet error tells the new number to write.
        let mut a = Analysis::default();
        reconcile(&mut a, two[..1].to_vec(), &baseline);
        assert!(a.failures.is_empty());
        assert_eq!(a.ratchet_errors.len(), 1, "{:?}", a.ratchet_errors);
        assert!(a.is_failure());
    }

    #[test]
    fn pinned_file_is_carved_out_of_the_crate_pool() {
        // The crate has plenty of budget, but the pinned file has none:
        // a panic site there must fail outright, and must not consume
        // the crate's allowance.
        let mut baseline = Baseline::default();
        baseline
            .panic_budget
            .insert("treadmill-inference".to_string(), 2);
        baseline
            .panic_budget_files
            .insert("crates/inference/src/analytic.rs".to_string(), 0);

        let mut a = Analysis::default();
        reconcile(
            &mut a,
            vec![
                finding("PANIC001", "crates/inference/src/analytic.rs"),
                finding("PANIC001", "crates/inference/src/screening.rs"),
            ],
            &baseline,
        );
        assert_eq!((a.failures.len(), a.budgeted.len()), (1, 1));
        assert_eq!(a.failures[0].file, "crates/inference/src/analytic.rs");
        assert!(a.is_failure());

        // A clean pinned file is stable: `= 0` with zero findings is
        // neither a failure nor a ratchet complaint.
        let crate_debt = vec![
            finding("PANIC001", "crates/inference/src/screening.rs"),
            finding("PANIC001", "crates/inference/src/dataset.rs"),
        ];
        let mut a = Analysis::default();
        reconcile(&mut a, crate_debt.clone(), &baseline);
        assert!(a.failures.is_empty() && a.ratchet_errors.is_empty());

        // A nonzero file budget ratchets down like everything else.
        baseline
            .panic_budget_files
            .insert("crates/inference/src/analytic.rs".to_string(), 1);
        let mut a = Analysis::default();
        reconcile(&mut a, crate_debt, &baseline);
        assert_eq!(a.ratchet_errors.len(), 1, "{:?}", a.ratchet_errors);
        assert!(a.ratchet_errors[0].contains("panic-budget-files"));
    }

    #[test]
    fn grandfathered_and_stale_entries() {
        let mut baseline = Baseline::default();
        baseline
            .grandfathered
            .insert("DET002:crates/x/src/y.rs".to_string(), 1);
        let mut a = Analysis::default();
        reconcile(
            &mut a,
            vec![finding("DET002", "crates/x/src/y.rs")],
            &baseline,
        );
        assert!(!a.is_failure());

        // Entry with zero remaining findings must be removed.
        let mut a = Analysis::default();
        reconcile(&mut a, Vec::new(), &baseline);
        assert_eq!(a.ratchet_errors.len(), 1);
    }

    #[test]
    fn json_escapes() {
        let mut a = Analysis::default();
        a.failures.push(finding("DET001", "a\"b\\c.rs"));
        let json = to_json(&a);
        assert!(json.contains("a\\\"b\\\\c.rs"), "{json}");
    }
}
