//! `treadmill-lint` — static determinism & soundness analysis for the
//! Treadmill workspace.
//!
//! The simulator's statistical attribution rests on an invariant the
//! type system cannot see: every seeded run must replay *bit-identically*
//! (golden-seed tests compare full latency vectors). The classic ways
//! to silently break that — randomized `HashMap` iteration order,
//! wall-clock reads, unseeded RNG, NaN-unsafe float comparators — all
//! have an unmistakable lexical signature, so this crate implements a
//! dependency-free scanner (no `syn` in the vendored registry) plus a
//! small rule registry, and turns nondeterminism from a postmortem
//! (a golden test failing two PRs later) into a compile-gate.
//!
//! See `DESIGN.md` § "Static analysis & determinism guarantees" for the
//! rule table, suppression syntax, and the baseline ratchet policy.

pub mod baseline;
pub mod rules;
pub mod scan;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use baseline::Baseline;
use rules::{check_file, FileReport, Finding};

/// Full result of a workspace analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed, unbudgeted findings — these fail `--check`.
    pub failures: Vec<Finding>,
    /// Findings covered by the baseline (grandfathered debt).
    pub budgeted: Vec<Finding>,
    /// Count of findings silenced by valid allow comments.
    pub suppressed: usize,
    /// Baseline/actual mismatches. The ratchet is exact-match: debt
    /// above budget fails (new violations), debt below budget fails
    /// too (the baseline must be shrunk to the new count).
    pub ratchet_errors: Vec<String>,
    pub files_scanned: usize,
}

impl Analysis {
    /// True when `--check` should exit non-zero.
    pub fn is_failure(&self) -> bool {
        !self.failures.is_empty() || !self.ratchet_errors.is_empty()
    }
}

/// Maps a workspace-relative path to its crate's package name.
pub fn crate_name(path: &str) -> String {
    match path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
    {
        Some(dir) => format!("treadmill-{dir}"),
        None => "treadmill".to_string(),
    }
}

/// Analyses one in-memory file (the fixture-test entry point).
pub fn analyze_source(rel_path: &str, source: &str) -> FileReport {
    check_file(rel_path, &scan::scan(source))
}

/// Walks the workspace at `root`, applies every rule, and reconciles
/// the outcome against `baseline`.
pub fn analyze_workspace(root: &Path, baseline: &Baseline) -> io::Result<Analysis> {
    let mut analysis = Analysis::default();
    let mut raw: Vec<Finding> = Vec::new();
    for rel in walk::rust_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let report = analyze_source(&rel, &source);
        analysis.suppressed += report.suppressed;
        raw.extend(report.findings);
        analysis.files_scanned += 1;
    }
    reconcile(&mut analysis, raw, baseline);
    Ok(analysis)
}

/// Splits raw findings into failures vs baseline-covered debt and
/// emits ratchet errors for every exact-match violation.
fn reconcile(analysis: &mut Analysis, raw: Vec<Finding>, baseline: &Baseline) {
    let mut panic_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut panic_file_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut grand_counts: BTreeMap<String, usize> = BTreeMap::new();

    for finding in raw {
        match finding.rule.as_str() {
            // A file listed in [panic-budget-files] is carved out of
            // its crate's pool: its PANIC001 findings are judged
            // against the file's own budget, so a `= 0` pin fails
            // immediately even while the crate still carries debt.
            "PANIC001" if baseline.panic_budget_files.contains_key(&finding.file) => {
                let budget = baseline.panic_budget_files[&finding.file];
                let n = panic_file_counts.entry(finding.file.clone()).or_insert(0);
                *n += 1;
                if *n <= budget {
                    analysis.budgeted.push(finding);
                } else {
                    analysis.failures.push(finding);
                }
            }
            "PANIC001" => {
                let krate = crate_name(&finding.file);
                let n = panic_counts.entry(krate.clone()).or_insert(0);
                *n += 1;
                let budget = baseline.panic_budget.get(&krate).copied().unwrap_or(0);
                if *n <= budget {
                    analysis.budgeted.push(finding);
                } else {
                    analysis.failures.push(finding);
                }
            }
            "LINT000" => analysis.failures.push(finding),
            _ => {
                let key = format!("{}:{}", finding.rule, finding.file);
                let n = grand_counts.entry(key.clone()).or_insert(0);
                *n += 1;
                let allowance = baseline.grandfathered.get(&key).copied().unwrap_or(0);
                if *n <= allowance {
                    analysis.budgeted.push(finding);
                } else {
                    analysis.failures.push(finding);
                }
            }
        }
    }

    for (krate, budget) in &baseline.panic_budget {
        let actual = panic_counts.get(krate).copied().unwrap_or(0);
        if actual < *budget {
            analysis.ratchet_errors.push(format!(
                "panic-budget for {krate} is {budget} but only {actual} PANIC001 site(s) \
                 remain — the baseline may only shrink: set \"{krate}\" = {actual} \
                 (or delete the entry if 0)"
            ));
        }
    }
    for (file, budget) in &baseline.panic_budget_files {
        let actual = panic_file_counts.get(file).copied().unwrap_or(0);
        if actual < *budget {
            analysis.ratchet_errors.push(format!(
                "panic-budget-files for {file} is {budget} but only {actual} PANIC001 \
                 site(s) remain — the baseline may only shrink: set \"{file}\" = {actual} \
                 (a `= 0` entry is a permanent pin and stays)"
            ));
        }
    }
    for (key, allowance) in &baseline.grandfathered {
        let actual = grand_counts.get(key).copied().unwrap_or(0);
        if actual < *allowance {
            analysis.ratchet_errors.push(format!(
                "grandfathered \"{key}\" = {allowance} but only {actual} finding(s) \
                 remain — the baseline may only shrink: set it to {actual} \
                 (or delete the entry if 0)"
            ));
        }
    }
}

/// Serialises the analysis as stable machine-readable JSON.
pub fn to_json(analysis: &Analysis) -> String {
    let mut out = String::from("{");
    push_kv(&mut out, "files_scanned", &analysis.files_scanned.to_string());
    out.push_str(",\"failures\":");
    findings_json(&mut out, &analysis.failures);
    out.push_str(",\"budgeted\":");
    findings_json(&mut out, &analysis.budgeted);
    out.push(',');
    push_kv(&mut out, "suppressed", &analysis.suppressed.to_string());
    out.push_str(",\"ratchet_errors\":[");
    for (i, e) in analysis.ratchet_errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, e);
    }
    out.push_str("]}");
    out
}

fn findings_json(out: &mut String, findings: &[Finding]) {
    out.push('[');
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        push_json_string(out, &f.rule);
        out.push_str(",\"file\":");
        push_json_string(out, &f.file);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"message\":");
        push_json_string(out, &f.message);
        out.push_str(",\"hint\":");
        push_json_string(out, &f.hint);
        out.push('}');
    }
    out.push(']');
}

fn push_kv(out: &mut String, key: &str, raw_value: &str) {
    push_json_string(out, key);
    out.push(':');
    out.push_str(raw_value);
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::Finding;

    fn finding(rule: &str, file: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line: 1,
            message: "m".to_string(),
            hint: "h".to_string(),
        }
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_name("crates/sim-core/src/rng.rs"), "treadmill-sim-core");
        assert_eq!(crate_name("src/lib.rs"), "treadmill");
        assert_eq!(crate_name("tests/golden_seed.rs"), "treadmill");
    }

    #[test]
    fn panic_budget_exact_match() {
        let mut baseline = Baseline::default();
        baseline
            .panic_budget
            .insert("treadmill-stats".to_string(), 2);

        // Exactly on budget: all budgeted, no ratchet errors.
        let mut a = Analysis::default();
        let two = vec![
            finding("PANIC001", "crates/stats/src/a.rs"),
            finding("PANIC001", "crates/stats/src/b.rs"),
        ];
        reconcile(&mut a, two.clone(), &baseline);
        assert_eq!((a.failures.len(), a.budgeted.len()), (0, 2));
        assert!(!a.is_failure());

        // Over budget: the overflow fails.
        let mut a = Analysis::default();
        let mut three = two.clone();
        three.push(finding("PANIC001", "crates/stats/src/c.rs"));
        reconcile(&mut a, three, &baseline);
        assert_eq!((a.failures.len(), a.budgeted.len()), (1, 2));
        assert!(a.is_failure());

        // Under budget: ratchet error tells the new number to write.
        let mut a = Analysis::default();
        reconcile(&mut a, two[..1].to_vec(), &baseline);
        assert!(a.failures.is_empty());
        assert_eq!(a.ratchet_errors.len(), 1, "{:?}", a.ratchet_errors);
        assert!(a.is_failure());
    }

    #[test]
    fn pinned_file_is_carved_out_of_the_crate_pool() {
        // The crate has plenty of budget, but the pinned file has none:
        // a panic site there must fail outright, and must not consume
        // the crate's allowance.
        let mut baseline = Baseline::default();
        baseline
            .panic_budget
            .insert("treadmill-inference".to_string(), 2);
        baseline
            .panic_budget_files
            .insert("crates/inference/src/analytic.rs".to_string(), 0);

        let mut a = Analysis::default();
        reconcile(
            &mut a,
            vec![
                finding("PANIC001", "crates/inference/src/analytic.rs"),
                finding("PANIC001", "crates/inference/src/screening.rs"),
            ],
            &baseline,
        );
        assert_eq!((a.failures.len(), a.budgeted.len()), (1, 1));
        assert_eq!(a.failures[0].file, "crates/inference/src/analytic.rs");
        assert!(a.is_failure());

        // A clean pinned file is stable: `= 0` with zero findings is
        // neither a failure nor a ratchet complaint.
        let crate_debt = vec![
            finding("PANIC001", "crates/inference/src/screening.rs"),
            finding("PANIC001", "crates/inference/src/dataset.rs"),
        ];
        let mut a = Analysis::default();
        reconcile(&mut a, crate_debt.clone(), &baseline);
        assert!(a.failures.is_empty() && a.ratchet_errors.is_empty());

        // A nonzero file budget ratchets down like everything else.
        baseline
            .panic_budget_files
            .insert("crates/inference/src/analytic.rs".to_string(), 1);
        let mut a = Analysis::default();
        reconcile(&mut a, crate_debt, &baseline);
        assert_eq!(a.ratchet_errors.len(), 1, "{:?}", a.ratchet_errors);
        assert!(a.ratchet_errors[0].contains("panic-budget-files"));
    }

    #[test]
    fn grandfathered_and_stale_entries() {
        let mut baseline = Baseline::default();
        baseline
            .grandfathered
            .insert("DET002:crates/x/src/y.rs".to_string(), 1);
        let mut a = Analysis::default();
        reconcile(
            &mut a,
            vec![finding("DET002", "crates/x/src/y.rs")],
            &baseline,
        );
        assert!(!a.is_failure());

        // Entry with zero remaining findings must be removed.
        let mut a = Analysis::default();
        reconcile(&mut a, Vec::new(), &baseline);
        assert_eq!(a.ratchet_errors.len(), 1);
    }

    #[test]
    fn json_escapes() {
        let mut a = Analysis::default();
        a.failures.push(finding("DET001", "a\"b\\c.rs"));
        let json = to_json(&a);
        assert!(json.contains("a\\\"b\\\\c.rs"), "{json}");
    }
}
