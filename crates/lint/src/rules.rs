//! The rule registry and per-file analysis pass.
//!
//! Each rule is a lexical predicate over the code layer of a scanned
//! line (see [`crate::scan`]), gated by a *scope*: which crates and
//! which kinds of code (library vs test vs bench) the invariant covers.
//! Findings can be silenced by an adjacent justification comment:
//!
//! ```text
//! // tml-lint: allow(DET001, key-indexed lookups only; order never escapes)
//! ```
//!
//! either trailing on the offending line or on a comment-only line
//! directly above it. The reason string is mandatory — an allow without
//! one is itself reported (`LINT000`) and does not suppress anything.

use crate::scan::SourceModel;

/// A registered rule: identity, what it protects, and how to fix hits.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
    pub hint: &'static str,
}

/// The registry, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "DET001",
        summary: "HashMap/HashSet in a deterministic crate (iteration order is \
                  randomized per process and breaks bit-identical replay)",
        hint: "use BTreeMap/BTreeSet or Vec, or justify with \
               // tml-lint: allow(DET001, <why order never escapes>)",
    },
    Rule {
        id: "DET002",
        summary: "wall-clock read (Instant::now/SystemTime) in simulated code \
                  (sim time must come from the event clock)",
        hint: "thread SimTime from the engine; only bench harness timing may \
               read the wall clock, with an allow comment",
    },
    Rule {
        id: "DET003",
        summary: "unseeded RNG (thread_rng/from_entropy/OsRng) — every stream \
                  must derive from the run seed",
        hint: "derive a child stream from SeedStream/SmallRng::seed_from_u64",
    },
    Rule {
        id: "DET004",
        summary: "float ordering hazard (partial_cmp().unwrap() comparators or \
                  f64 keys in ordered collections): NaN panics or unstable order",
        hint: "use f64::total_cmp for comparators; never key ordered \
               collections on floats",
    },
    Rule {
        id: "PANIC001",
        summary: "unwrap/expect/panic! in non-test library code (tracked \
                  against the checked-in budget in lint-baseline.toml)",
        hint: "return Result or handle the None arm; the per-crate budget in \
               lint-baseline.toml may only shrink",
    },
    Rule {
        id: "NUM001",
        summary: "narrowing `as` cast on a sim-time/queue-depth quantity \
                  (silent truncation corrupts latency accounting)",
        hint: "keep sim-time integers u64 end-to-end, or use try_from with an \
               explicit failure path",
    },
    Rule {
        id: "DET007",
        summary: "unordered cross-thread result collection (Mutex<Vec> push or \
                  thread-completion-order indexing): arrival order depends on \
                  the scheduler and breaks bit-identical replay",
        hint: "collect into pre-sized slots keyed by a deterministic index, or \
               merge in a fixed shard/worker order after the join",
    },
    Rule {
        id: "DET008",
        summary: "shard-lock discipline violation: a second shard mutex is \
                  acquired while another shard's guard is live (lock order \
                  then depends on scheduling and can deadlock or reorder \
                  cross-shard state)",
        hint: "hold at most one shard guard at a time; route cross-shard \
               traffic through the coordinator's mailbox drain between rounds",
    },
    Rule {
        id: "DUR001",
        summary: "durability gap in journal/artifact code: a rename publishes \
                  a file with no preceding fsync, or a write handle is opened \
                  and written but never synced (a crash can tear or lose the \
                  record the resume path depends on)",
        hint: "write to a tmp file, sync_all, then rename; fsync journal \
               appends before acknowledging",
    },
    Rule {
        id: "PANIC002",
        summary: "panic site reachable from the service executor or HTTP \
                  handlers through uncaught call edges — a reachable panic is \
                  a crashed sweep and the budget is zero",
        hint: "return a typed error along the service path, or contain the \
               call behind catch_unwind at the job boundary; run tml-lint \
               --explain PANIC002:file:line for the call chain",
    },
    Rule {
        id: "NUM002",
        summary: "unchecked +/-/* on a caller-supplied raw time/sequence \
                  integer parameter crossing a call boundary (overflow wraps \
                  silently in release and corrupts sim-time accounting)",
        hint: "take SimTime/SimDuration (checked operators) across call \
               boundaries, or use checked_/saturating_ arithmetic on raw \
               nanosecond/sequence integers",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One reported violation (or malformed suppression, rule `LINT000`).
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    /// Workspace-relative path, unix separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    pub hint: String,
}

/// Result of analysing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    /// Number of findings silenced by well-formed allow comments.
    pub suppressed: usize,
}

/// Crates whose simulation state must replay bit-identically: any
/// observable iteration order or hidden entropy here invalidates the
/// golden-seed tests.
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/sim-core/",
    "crates/cluster/",
    "crates/core/",
    "crates/inference/",
    "crates/workloads/",
];

pub(crate) fn is_deterministic_crate(path: &str) -> bool {
    DETERMINISTIC_CRATES.iter().any(|p| path.starts_with(p))
}

/// Integration tests, benches, examples and fixtures are not library
/// code: PANIC001/NUM001 do not apply there.
pub(crate) fn is_test_like_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

pub(crate) fn is_bin_path(path: &str) -> bool {
    path.contains("/bin/") || path.ends_with("/main.rs") || path == "src/main.rs"
}

/// A parsed allow directive (`allow(DET001, reason)` after the marker).
#[derive(Debug)]
enum Allow {
    Valid { rule_id: String },
    /// Missing/empty reason or unknown rule: reported, suppresses nothing.
    Malformed { detail: String },
}

/// Extracts every allow directive from one comment string.
fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("tml-lint:") {
        let tail = &rest[pos + "tml-lint:".len()..];
        let tail = tail.trim_start();
        let Some(args) = tail.strip_prefix("allow(") else {
            out.push(Allow::Malformed {
                detail: "directive is not `allow(RULE, reason)`".to_string(),
            });
            rest = &rest[pos + "tml-lint:".len()..];
            continue;
        };
        let Some(close) = args.find(')') else {
            out.push(Allow::Malformed {
                detail: "unterminated allow( — missing `)`".to_string(),
            });
            break;
        };
        let body = &args[..close];
        match body.split_once(',') {
            Some((id, reason)) if !reason.trim().is_empty() => {
                let id = id.trim().to_string();
                if rule(&id).is_some() {
                    out.push(Allow::Valid { rule_id: id });
                } else {
                    out.push(Allow::Malformed {
                        detail: format!("unknown rule `{id}` in allow"),
                    });
                }
            }
            _ => out.push(Allow::Malformed {
                detail: format!(
                    "allow({}) has no reason string — justification is mandatory",
                    body.split(',').next().unwrap_or("").trim()
                ),
            }),
        }
        rest = &args[close..];
    }
    out
}

/// Word-boundary substring search: `needle` in `hay` not flanked by
/// identifier characters.
fn has_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

fn any_word(hay: &str, needles: &[&str]) -> bool {
    needles.iter().any(|n| has_word(hay, n))
}

/// Markers identifying sim-time / queue-depth quantities for NUM001.
const NUM001_MARKERS: &[&str] = &[
    "nanos", "_ns", "ns_", "SimTime", "sim_time", "depth", "queue", "qlen",
];
const NARROWING_CASTS: &[&str] = &[
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
];

/// Runs every applicable rule over a scanned file. `path` is the
/// workspace-relative path (unix separators) used for scoping.
///
/// This is the *lexical* pass: DET001/DET002/DET003 are reported
/// wherever their pattern appears. The workspace analysis in
/// [`crate::analyze_workspace`] then keeps such a finding outside the
/// deterministic crates only when its containing function is provably
/// reachable from a deterministic entry point (see [`crate::reach`]) —
/// per-path proofs replace the old whole-crate wall-clock allowlist.
pub fn check_file(path: &str, model: &SourceModel) -> FileReport {
    let mut report = FileReport::default();
    let det = is_deterministic_crate(path);
    let test_path = is_test_like_path(path);
    let bin = is_bin_path(path);

    for (idx, line) in model.lines.iter().enumerate() {
        let lineno = idx + 1;

        // Malformed suppressions are findings wherever they appear.
        for allow in parse_allows(&line.comment) {
            if let Allow::Malformed { detail } = allow {
                report.findings.push(Finding {
                    rule: "LINT000".to_string(),
                    file: path.to_string(),
                    line: lineno,
                    message: format!("malformed tml-lint suppression: {detail}"),
                    hint: "write // tml-lint: allow(RULE, <non-empty reason>)".to_string(),
                });
            }
        }

        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let mut hits: Vec<&'static Rule> = Vec::new();

        if any_word(code, &["HashMap", "HashSet"]) {
            hits.push(&RULES[0]);
        }
        if code.contains("Instant::now") || has_word(code, "SystemTime") {
            hits.push(&RULES[1]);
        }
        if any_word(code, &["thread_rng", "from_entropy", "OsRng"]) {
            hits.push(&RULES[2]);
        }
        let sortish = ["sort_by", "sort_unstable_by", "max_by(", "min_by(", "binary_search_by"]
            .iter()
            .any(|p| code.contains(p));
        if (code.contains("partial_cmp") && (sortish || code.contains(".unwrap()")))
            || code.contains("BTreeMap<f64")
            || code.contains("BTreeSet<f64")
        {
            hits.push(&RULES[3]);
        }
        if !test_path
            && !bin
            && !line.in_test
            && (code.contains(".unwrap()") || code.contains(".expect(") || code.contains("panic!"))
        {
            hits.push(&RULES[4]);
        }
        if det
            && !line.in_test
            && !test_path
            && NARROWING_CASTS.iter().any(|c| cast_with_boundary(code, c))
            && NUM001_MARKERS.iter().any(|m| code.contains(m))
        {
            hits.push(&RULES[5]);
        }
        if det
            && (code.contains("Mutex<Vec<")
                || (code.contains(".lock()") && code.contains(".push(")))
        {
            hits.push(&RULES[6]);
        }

        if hits.is_empty() {
            continue;
        }

        let allowed = allowed_rules_at(model, idx);

        for r in hits {
            if allowed.iter().any(|a| a == r.id) {
                report.suppressed += 1;
            } else {
                report.findings.push(Finding {
                    rule: r.id.to_string(),
                    file: path.to_string(),
                    line: lineno,
                    message: r.summary.split_whitespace().collect::<Vec<_>>().join(" "),
                    hint: r.hint.split_whitespace().collect::<Vec<_>>().join(" "),
                });
            }
        }
    }
    report
}

/// True when `pat` (e.g. `" as u32"`) occurs in `code` not followed by
/// an identifier character (so `as u32` doesn't match `as u32x4`).
fn cast_with_boundary(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let after = start + pos + pat.len();
        let ok = code[after..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if ok {
            return true;
        }
        start = after;
    }
    false
}

/// Valid allow directives adjacent to 0-based line `idx`: trailing on
/// the line itself, or in the run of comment-only lines directly
/// above. Shared by the lexical pass and the semantic rules so a
/// `tml-lint: allow(DUR001, …)` works the same way as one for DET001.
pub(crate) fn allowed_rules_at(model: &SourceModel, idx: usize) -> Vec<String> {
    let mut allowed: Vec<String> = Vec::new();
    if let Some(line) = model.lines.get(idx) {
        collect_valid(&line.comment, &mut allowed);
    }
    let mut up = idx;
    while up > 0 {
        up -= 1;
        let prev = &model.lines[up];
        if prev.code.trim().is_empty() && !prev.comment.trim().is_empty() {
            collect_valid(&prev.comment, &mut allowed);
        } else {
            break;
        }
    }
    allowed
}

fn collect_valid(comment: &str, out: &mut Vec<String>) {
    for allow in parse_allows(comment) {
        if let Allow::Valid { rule_id } = allow {
            out.push(rule_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn check(path: &str, src: &str) -> FileReport {
        check_file(path, &scan(src))
    }

    #[test]
    fn det001_fires_lexically_everywhere() {
        // The lexical pass reports the pattern in every crate; the
        // workspace pass keeps hits outside the deterministic crates
        // only when the containing fn is det-reachable (lib.rs tests).
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check("crates/cluster/src/x.rs", src).findings.len(), 1);
        assert_eq!(check("crates/stats/src/x.rs", src).findings.len(), 1);
    }

    #[test]
    fn trailing_and_preceding_allows_suppress() {
        let trailing =
            "let m = HashMap::new(); // tml-lint: allow(DET001, keyed lookups only)\n";
        let preceding = "\
// tml-lint: allow(DET001, keyed lookups only)
let m = HashMap::new();
";
        for src in [trailing, preceding] {
            let r = check("crates/core/src/x.rs", src);
            assert!(r.findings.is_empty(), "{:?}", r.findings);
            assert_eq!(r.suppressed, 1);
        }
    }

    #[test]
    fn allow_without_reason_is_malformed_and_does_not_suppress() {
        let src = "let m = HashMap::new(); // tml-lint: allow(DET001)\n";
        let r = check("crates/core/src/x.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"LINT000"), "{rules:?}");
        assert!(rules.contains(&"DET001"), "{rules:?}");
    }

    #[test]
    fn panic001_skips_tests_and_bins() {
        let src = "\
fn lib() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
";
        let r = check("crates/stats/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 1);
        assert!(check("crates/stats/src/bin/tool.rs", src).findings.is_empty());
        assert!(check("tests/integration.rs", src).findings.is_empty());
    }

    #[test]
    fn det002_fires_lexically_in_every_crate() {
        // No more per-crate allowlist: the service crate's legitimate
        // wall-clock reads are instead *proven* unreachable from the
        // deterministic entry points by the workspace reachability pass.
        let src = "let t = Instant::now();\n";
        assert_eq!(check("crates/server/src/service.rs", src).findings.len(), 1);
        assert_eq!(check("crates/core/src/x.rs", src).findings.len(), 1);
        assert_eq!(check("crates/stats/src/x.rs", src).findings.len(), 1);
    }

    #[test]
    fn panic001_applies_in_service_crate() {
        let src = "fn lib() { x.unwrap(); }\n";
        let r = check("crates/server/src/service.rs", src);
        assert!(r.findings.iter().any(|f| f.rule == "PANIC001"), "{:?}", r.findings);
    }

    #[test]
    fn malformed_allow_inside_cfg_test_is_lint000() {
        // Suppression comments are validated even inside `#[cfg(test)]`
        // regions: a reason-less or unknown-rule allow is LINT000 there
        // exactly as it is in library code.
        let src = "\
#[cfg(test)]
mod tests {
    // tml-lint: allow(DET004)
    fn t() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }
}
";
        let r = check("crates/cluster/src/x.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"LINT000"), "{rules:?}");
        // The malformed allow also fails to suppress the finding itself.
        assert!(rules.contains(&"DET004"), "{rules:?}");
    }

    #[test]
    fn malformed_allow_inside_spaced_cfg_test_is_lint000() {
        // Regression: `#[cfg( test )]` spacing used to fail to open the
        // test region, so rule logic keyed on `in_test` misbehaved.
        let src = "\
#[cfg( test )]
mod tests {
    fn t() { let _ = x.unwrap(); } // tml-lint: allow(NOSUCH, why)
}
";
        let r = check("crates/cluster/src/x.rs", src);
        // PANIC001 is rightly skipped inside the test region, but the
        // unknown-rule allow must still surface as LINT000.
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "LINT000");
    }

    #[test]
    fn well_formed_allow_inside_cfg_test_suppresses() {
        let src = "\
#[cfg(test)]
mod tests {
    // tml-lint: allow(DET004, asserting on NaN-free synthetic data)
    fn t() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }
}
";
        let r = check("crates/cluster/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn patterns_in_strings_do_not_fire() {
        let src = "let s = \"thread_rng Instant::now HashMap\";\n";
        assert!(check("crates/cluster/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn det007_flags_mutex_vec_in_deterministic_crates() {
        let src = "let results: Mutex<Vec<f64>> = Mutex::new(Vec::new());\n";
        let r = check("crates/inference/src/x.rs", src);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "DET007");
        // Outside the deterministic crates the pattern is fine.
        assert!(check("crates/stats/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn det007_flags_same_line_lock_push() {
        let src = "out.lock().unwrap().push(result);\n";
        let r = check("crates/cluster/src/x.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"DET007"), "{rules:?}");
    }

    #[test]
    fn det007_ignores_slot_indexed_collections_with_allow() {
        let src = "\
// tml-lint: allow(DET007, slots are pre-sized and index-assigned by experiment id)
let results: Mutex<Vec<f64>> = Mutex::new(vec![0.0; n]);
";
        let r = check("crates/inference/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn det007_does_not_flag_vec_of_mutexes() {
        // A Vec<Mutex<_>> with per-slot ownership (the sharded executor's
        // layout) is the deterministic fix, not the hazard.
        let src = "let shards: Vec<Mutex<Engine>> = engines.into_iter().map(Mutex::new).collect();\n";
        assert!(check("crates/cluster/src/x.rs", src).findings.is_empty());
    }
}
