//! Lexical model of a Rust source file.
//!
//! `tml-lint` deliberately avoids a full parser (the vendored registry
//! has no `syn`): rules only need to know, per line, (a) which bytes
//! are *code* with string/char-literal contents blanked out, (b) which
//! bytes are *comment* text (where suppressions live), and (c) whether
//! the line sits inside a `#[cfg(test)]` region. A hand-rolled state
//! machine over the byte stream provides exactly that, handling nested
//! block comments, raw strings (`r#"…"#`, `br"…"`), escapes, and the
//! char-literal/lifetime ambiguity.

/// One physical source line, split into its lexical layers.
#[derive(Debug, Clone, Default)]
pub struct SourceLine {
    /// Code text with string/char-literal *contents* replaced by spaces
    /// (delimiters kept) and comments removed. Same length as the
    /// non-comment prefix of the raw line, so column positions survive.
    pub code: String,
    /// Concatenated text of all comments on this line.
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]`-gated item (the
    /// attribute line itself counts), as tracked by brace depth.
    pub in_test: bool,
}

/// A scanned file: lexical layers for every line, 0-indexed.
#[derive(Debug, Default)]
pub struct SourceModel {
    pub lines: Vec<SourceLine>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */` comments (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Raw string with `hashes` trailing `#` required to close.
    RawStr(u32),
    CharLit,
}

/// Tracks `#[cfg(test)]` scoping across lines via brace depth.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TestScope {
    None,
    /// Attribute seen at `depth`; waiting for the item's opening brace.
    Pending(i64),
    /// Inside the region; closes when depth returns to the payload.
    Active(i64),
}

/// Scans `src` into per-line lexical layers.
pub fn scan(src: &str) -> SourceModel {
    let chars: Vec<char> = src.chars().collect();
    let mut model = SourceModel::default();
    let mut line = SourceLine::default();
    let mut state = State::Code;
    let mut depth: i64 = 0;
    let mut scope = TestScope::None;

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            finish_line(&mut model, &mut line, &mut depth, &mut scope);
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                '"' => {
                    // `r"`/`br#"` raw-string prefixes end in the chars
                    // just consumed; detect them retroactively.
                    let hashes = raw_prefix_hashes(&line.code);
                    line.code.push('"');
                    state = match hashes {
                        Some(h) => State::RawStr(h),
                        None => State::Str,
                    };
                    i += 1;
                    continue;
                }
                '\'' => {
                    // Disambiguate char literal from lifetime: 'x' or
                    // '\…' is a literal; 'ident (no closing quote right
                    // after one char) is a lifetime.
                    let is_literal = matches!(
                        (chars.get(i + 1), chars.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    line.code.push('\'');
                    if is_literal {
                        state = State::CharLit;
                    }
                    i += 1;
                    continue;
                }
                _ => {
                    line.code.push(c);
                    i += 1;
                    continue;
                }
            },
            State::LineComment => {
                line.comment.push(c);
                i += 1;
                continue;
            }
            State::BlockComment(n) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if n == 1 {
                        State::Code
                    } else {
                        State::BlockComment(n - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(n + 1);
                    line.comment.push(' ');
                    i += 2;
                    continue;
                }
                line.comment.push(c);
                i += 1;
                continue;
            }
            State::Str => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        line.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                } else {
                    line.code.push(' ');
                }
                i += 1;
                continue;
            }
            State::RawStr(h) => {
                if c == '"' && closes_raw(&chars, i, h) {
                    line.code.push('"');
                    // Skip the trailing hashes too.
                    i += 1 + h as usize;
                    state = State::Code;
                    continue;
                }
                line.code.push(' ');
                i += 1;
                continue;
            }
            State::CharLit => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        line.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                } else {
                    line.code.push(' ');
                }
                i += 1;
                continue;
            }
        }
    }
    finish_line(&mut model, &mut line, &mut depth, &mut scope);
    model
}

/// Detects whether the code emitted so far ends in a raw-string prefix
/// (`r`, `br`, `r##`, …) and returns the hash count if so.
fn raw_prefix_hashes(code: &str) -> Option<u32> {
    let bytes = code.as_bytes();
    let mut j = bytes.len();
    let mut hashes = 0u32;
    while j > 0 && bytes[j - 1] == b'#' {
        hashes += 1;
        j -= 1;
    }
    if j == 0 || bytes[j - 1] != b'r' {
        return None;
    }
    // `r` must start the identifier (allow a leading `b` for byte raw
    // strings): reject `var#"`-style accidents and identifiers ending
    // in `r` like `repr"` (not real Rust anyway).
    let mut k = j - 1;
    if k > 0 && bytes[k - 1] == b'b' {
        k -= 1;
    }
    let prev_ident = k > 0 && (bytes[k - 1].is_ascii_alphanumeric() || bytes[k - 1] == b'_');
    if prev_ident {
        return None;
    }
    Some(hashes)
}

/// True when the `"` at `chars[i]` is followed by `h` hash marks,
/// closing a raw string opened with `h` hashes.
fn closes_raw(chars: &[char], i: usize, h: u32) -> bool {
    (1..=h as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn finish_line(
    model: &mut SourceModel,
    line: &mut SourceLine,
    depth: &mut i64,
    scope: &mut TestScope,
) {
    // The attribute line itself is part of the test region. Match on
    // whitespace-stripped code so `#[cfg( test )]` / `# [cfg(test)]`
    // spacing variants still open the region — suppression scanning
    // inside test blocks depends on this flag being right.
    if *scope == TestScope::None {
        let compact: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.contains("#[cfg(test)]") {
            *scope = TestScope::Pending(*depth);
        }
    }
    line.in_test = *scope != TestScope::None;
    for c in line.code.chars() {
        match c {
            '{' => {
                *depth += 1;
                if let TestScope::Pending(d) = *scope {
                    if *depth == d + 1 {
                        *scope = TestScope::Active(d);
                    }
                }
            }
            '}' => {
                *depth -= 1;
                if let TestScope::Active(d) = *scope {
                    if *depth <= d {
                        *scope = TestScope::None;
                    }
                }
            }
            _ => {}
        }
    }
    model.lines.push(std::mem::take(line));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked() {
        let m = scan("let x = \"HashMap inside\"; // trailing\n");
        assert!(!m.lines[0].code.contains("HashMap"));
        assert!(m.lines[0].code.contains("let x ="));
        assert_eq!(m.lines[0].comment.trim(), "trailing");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = scan("let p = r#\"Instant::now \"quoted\" text\"#; Instant::now()\n");
        let code = &m.lines[0].code;
        assert_eq!(code.matches("Instant::now").count(), 1, "{code}");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let m = scan("a /* one /* two */ still */ b\n/* open\nHashMap\n*/ c\n");
        assert!(m.lines[0].code.contains('a') && m.lines[0].code.contains('b'));
        assert!(!m.lines[2].code.contains("HashMap"));
        assert!(m.lines[2].comment.contains("HashMap"));
        assert!(m.lines[3].code.contains('c'));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let m = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(m.lines[0].code.contains("-> &'a str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let m = scan("let c = '\"'; let d = 'x'; let e = '\\n'; HashMap\n");
        assert!(m.lines[0].code.contains("HashMap"));
        assert!(!m.lines[0].code.contains('x'));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn more_lib() {}
";
        let m = scan(src);
        assert!(!m.lines[0].in_test);
        assert!(m.lines[1].in_test, "attribute line");
        assert!(m.lines[2].in_test);
        assert!(m.lines[3].in_test);
        assert!(m.lines[4].in_test, "closing brace");
        assert!(!m.lines[5].in_test);
    }

    #[test]
    fn cfg_test_spacing_variants_are_tracked() {
        for attr in ["#[cfg( test )]", "# [cfg(test)]", "#[ cfg ( test ) ]"] {
            let src = format!("{attr}\nmod tests {{\n    fn f() {{}}\n}}\nfn lib() {{}}\n");
            let m = scan(&src);
            assert!(m.lines[2].in_test, "{attr}: body line");
            assert!(!m.lines[4].in_test, "{attr}: after region");
        }
    }

    #[test]
    fn braces_in_strings_do_not_confuse_test_tracking() {
        let src = "\
#[cfg(test)]
mod tests {
    const S: &str = \"}}}}\";
    fn f() {}
}
fn lib() {}
";
        let m = scan(src);
        assert!(m.lines[3].in_test);
        assert!(!m.lines[5].in_test);
    }
}
