//! Deterministic workspace file discovery.
//!
//! The linter must itself be deterministic: directory entries are
//! sorted by name at every level so findings always appear in the same
//! order regardless of filesystem enumeration order.

use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, vendored shims,
/// VCS metadata, generated results, and the linter's own deliberately
/// violating rule fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "results", "fixtures"];

/// Returns every `.rs` file under `root` (workspace-relative paths,
/// unix separators, sorted), skipping [`SKIP_DIRS`].
pub fn rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}
