//! SARIF 2.1.0 serialisation of an [`Analysis`], hand-rolled like the
//! JSON reporter (the lint crate stays dependency-free).
//!
//! The output targets GitHub code scanning: uploading it from CI turns
//! every finding into an inline PR annotation at the offending line.
//! Failures map to `error` (they fail `--check`); baseline-budgeted
//! debt maps to `note` so it stays visible without blocking merges.

use crate::rules::{Finding, RULES};
use crate::{push_json_string, Analysis};

const SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders the analysis as a single-run SARIF 2.1.0 log.
pub fn to_sarif(analysis: &Analysis) -> String {
    let mut out = String::from("{\"$schema\":");
    push_json_string(&mut out, SCHEMA);
    out.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"tml-lint\",\"organization\":\"treadmill\",");
    out.push_str("\"informationUri\":\"https://github.com/treadmill/treadmill\",");
    out.push_str("\"rules\":[");
    for (i, rule) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        push_json_string(&mut out, rule.id);
        out.push_str(",\"shortDescription\":{\"text\":");
        push_json_string(&mut out, &squash(rule.summary));
        out.push_str("},\"help\":{\"text\":");
        push_json_string(&mut out, &squash(rule.hint));
        out.push_str("}}");
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for finding in &analysis.failures {
        push_result(&mut out, finding, "error", &mut first);
    }
    for finding in &analysis.budgeted {
        push_result(&mut out, finding, "note", &mut first);
    }
    out.push_str("]}]}");
    out
}

fn push_result(out: &mut String, f: &Finding, level: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"ruleId\":");
    push_json_string(out, &f.rule);
    out.push_str(",\"level\":");
    push_json_string(out, level);
    out.push_str(",\"message\":{\"text\":");
    let text = if f.hint.is_empty() {
        f.message.clone()
    } else {
        format!("{} — fix: {}", f.message, f.hint)
    };
    push_json_string(out, &text);
    out.push_str("},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
    push_json_string(out, &f.file);
    out.push_str(",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":");
    out.push_str(&f.line.max(1).to_string());
    out.push_str("}}}]}");
}

/// Collapses the registry's hanging-indent whitespace.
fn squash(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: usize) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: "msg \"quoted\"".to_string(),
            hint: "hint".to_string(),
        }
    }

    #[test]
    fn sarif_shape_and_levels() {
        let mut analysis = Analysis::default();
        analysis.failures.push(finding("DET002", "crates/core/src/x.rs", 7));
        analysis.budgeted.push(finding("PANIC001", "crates/stats/src/y.rs", 3));
        let sarif = to_sarif(&analysis);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"ruleId\":\"DET002\""));
        assert!(sarif.contains("\"level\":\"error\""));
        assert!(sarif.contains("\"level\":\"note\""));
        assert!(sarif.contains("\"startLine\":7"));
        assert!(sarif.contains("msg \\\"quoted\\\""));
        // Every registered rule is described in the driver block.
        for rule in RULES {
            assert!(sarif.contains(&format!("\"id\":\"{}\"", rule.id)), "{}", rule.id);
        }
    }

    #[test]
    fn empty_analysis_is_valid_sarif() {
        let sarif = to_sarif(&Analysis::default());
        assert!(sarif.contains("\"results\":[]"));
        assert!(sarif.ends_with("]}]}"));
    }
}
