//! Reachability analysis over the workspace call graph, and the
//! semantic rules built on it.
//!
//! Two root sets are traced:
//!
//! * **Deterministic roots** — every non-test function in the
//!   deterministic crates (`sim-core`, `cluster`, `core`, `inference`,
//!   `workloads`), seeded from the named entry points (`Engine` run
//!   methods, `ClusterWorld`/`ShardedCluster` rounds, the screening
//!   predictors) so explain chains start at a recognizable boundary.
//!   DET001/002/003 findings outside the deterministic crates fire
//!   only when their containing function is reachable from this set —
//!   replacing PR 5's whole-crate allowlist with a per-path proof.
//! * **Service roots** — every non-test function in `crates/server`.
//!   PANIC002 fires on any panic site reachable from here through
//!   edges *not* contained by `catch_unwind`: a reachable panic is a
//!   crashed sweep, and the budget is zero.
//!
//! BFS parent links are kept for both traversals so `--explain` can
//! print the concrete call chain (or certify unreachability) for any
//! `RULE:file:line`.

use std::collections::{BTreeMap, VecDeque};

use crate::graph::Graph;
use crate::parse::IoKind;
use crate::rules;

/// How a function was reached from a root set.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Reach {
    No,
    Root,
    Via { from: usize, line: usize },
}

/// A semantic finding before suppression handling: rule id + site.
#[derive(Debug, Clone)]
pub struct SemHit {
    pub rule_id: &'static str,
    /// 1-based line.
    pub line: usize,
    /// Site-specific detail appended to the rule summary.
    pub detail: Option<String>,
}

/// Named deterministic entry points: `(impl type, method)`.
const ENTRY_METHODS: &[(&str, &str)] = &[
    ("Engine", "run_to_completion"),
    ("Engine", "run_until"),
    ("Engine", "run_events"),
];
/// Types whose every method is a deterministic entry point.
const ENTRY_TYPES: &[&str] = &["ClusterWorld", "ShardedCluster"];
/// Free functions that are deterministic entry points (sweep drivers
/// and the analytic screening predictors).
const ENTRY_FNS: &[&str] = &[
    "run_sweep",
    "run_sweep_controlled",
    "run_factorial_sweep",
    "run_factorial_sweep_controlled",
    "screen_factors",
    "screen_cells",
    "screen_hardware",
    "predict_cell",
    "predict",
    "censoring_prediction",
];

/// Files covered by DUR001 (fsync-before-publish discipline).
fn dur001_scope(path: &str) -> bool {
    path.starts_with("crates/server/") || path == "crates/core/src/sweep.rs"
}

/// Panic-site method names and macros for PANIC002. `debug_assert*` is
/// compiled out of release builds and deliberately absent.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// The computed reachability model; owns the graph.
#[derive(Debug)]
pub struct Semantics {
    pub graph: Graph,
    det_parent: Vec<Reach>,
    svc_parent: Vec<Reach>,
    pub det_root_count: usize,
    pub entry_count: usize,
    pub svc_root_count: usize,
    pub edge_count: usize,
}

impl Semantics {
    /// Runs both traversals over a built graph.
    pub fn compute(graph: Graph) -> Semantics {
        let n = graph.fn_count();
        let edge_count = graph.out_edges.iter().map(Vec::len).sum();
        let mut sem = Semantics {
            graph,
            det_parent: vec![Reach::No; n],
            svc_parent: vec![Reach::No; n],
            det_root_count: 0,
            entry_count: 0,
            svc_root_count: 0,
            edge_count,
        };
        sem.trace_deterministic();
        sem.trace_service();
        sem
    }

    fn is_named_entry(&self, id: usize) -> bool {
        let f = self.graph.fn_def(id);
        match f.self_ty.as_deref() {
            Some(ty) => {
                ENTRY_TYPES.contains(&ty)
                    || ENTRY_METHODS.iter().any(|(t, m)| *t == ty && *m == f.name)
            }
            None => ENTRY_FNS.contains(&f.name.as_str()),
        }
    }

    /// Is `id` eligible as a root of the given set? Test fns and
    /// test-path files are never roots: determinism and crash-safety
    /// are contracts on shipped code, and tests only *drive* it.
    fn det_root(&self, id: usize) -> bool {
        let file = self.graph.fn_file(id);
        rules::is_deterministic_crate(file)
            && !rules::is_test_like_path(file)
            && !self.graph.fn_def(id).is_test
    }

    fn svc_root(&self, id: usize) -> bool {
        let file = self.graph.fn_file(id);
        file.starts_with("crates/server/")
            && !rules::is_test_like_path(file)
            && !self.graph.fn_def(id).is_test
    }

    fn trace_deterministic(&mut self) {
        // Seed named entries first so explain chains ground at a
        // recognizable boundary, then every other eligible fn (a
        // not-yet-called pub fn in a deterministic crate is still
        // covered code).
        let mut roots: Vec<usize> = (0..self.graph.fn_count())
            .filter(|&id| self.det_root(id) && self.is_named_entry(id))
            .collect();
        self.entry_count = roots.len();
        roots.extend((0..self.graph.fn_count()).filter(|&id| self.det_root(id)));
        let mut queue = VecDeque::new();
        for id in roots {
            if self.det_parent[id] == Reach::No {
                self.det_parent[id] = Reach::Root;
                self.det_root_count += 1;
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            for e in &self.graph.out_edges[id] {
                if self.det_parent[e.to] == Reach::No {
                    self.det_parent[e.to] = Reach::Via { from: id, line: e.line };
                    queue.push_back(e.to);
                }
            }
        }
    }

    fn trace_service(&mut self) {
        let mut queue = VecDeque::new();
        for id in 0..self.graph.fn_count() {
            if self.svc_root(id) {
                self.svc_parent[id] = Reach::Root;
                self.svc_root_count += 1;
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            for e in &self.graph.out_edges[id] {
                // An edge inside catch_unwind contains the panic; it
                // does not propagate crash-reachability.
                if !e.caught && self.svc_parent[e.to] == Reach::No {
                    self.svc_parent[e.to] = Reach::Via { from: id, line: e.line };
                    queue.push_back(e.to);
                }
            }
        }
    }

    /// Is the function containing `file:line` reachable from the
    /// deterministic roots? (False when no function contains the line —
    /// module-level code in a non-deterministic crate is not simulated
    /// state.)
    pub fn det_reachable_at(&self, file: &str, line: usize) -> bool {
        self.graph
            .fn_at(file, line)
            .is_some_and(|id| self.det_parent[id] != Reach::No)
    }

    /// Semantic findings (DET008, DUR001, PANIC002, NUM002), grouped by
    /// file path.
    pub fn findings_by_file(&self) -> BTreeMap<String, Vec<SemHit>> {
        let mut out: BTreeMap<String, Vec<SemHit>> = BTreeMap::new();
        for fi in 0..self.graph.files.len() {
            let path = self.graph.files[fi].path.clone();
            let mut hits = Vec::new();
            self.det008_hits(fi, &mut hits);
            self.dur001_hits(fi, &mut hits);
            self.num002_hits(fi, &mut hits);
            self.panic002_hits(fi, &mut hits);
            if !hits.is_empty() {
                hits.sort_by_key(|h| (h.line, h.rule_id));
                out.insert(path, hits);
            }
        }
        out
    }

    /// DET008: overlapping shard-mutex guards in deterministic crates
    /// that use the `Vec<Mutex<…>>` sharding pattern.
    fn det008_hits(&self, fi: usize, hits: &mut Vec<SemHit>) {
        let file = &self.graph.files[fi];
        if file.mutex_vec_lines.is_empty()
            || !rules::is_deterministic_crate(&file.path)
            || rules::is_test_like_path(&file.path)
        {
            return;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for ev in &f.lock_overlaps {
                hits.push(SemHit {
                    rule_id: "DET008",
                    line: ev.line,
                    detail: Some(ev.detail.clone()),
                });
            }
        }
    }

    /// DUR001: in journal/artifact code, every rename must be preceded
    /// by a sync, and an opened write handle must be synced before the
    /// function returns.
    fn dur001_hits(&self, fi: usize, hits: &mut Vec<SemHit>) {
        let file = &self.graph.files[fi];
        if !dur001_scope(&file.path) || rules::is_test_like_path(&file.path) {
            return;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let evs = &f.io_events;
            let mut synced = false;
            let mut wrote = false;
            let mut opened = false;
            for ev in evs {
                match ev.kind {
                    IoKind::Sync => synced = true,
                    IoKind::Write => wrote = true,
                    IoKind::AppendOpen | IoKind::CreateFile => opened = true,
                    IoKind::Rename => {
                        if !synced {
                            hits.push(SemHit {
                                rule_id: "DUR001",
                                line: ev.line,
                                detail: Some(
                                    "rename publishes a file never synced in this fn"
                                        .to_string(),
                                ),
                            });
                        }
                    }
                }
            }
            if opened && wrote && !synced {
                let line = evs
                    .iter()
                    .rev()
                    .find(|e| e.kind == IoKind::Write)
                    .map_or(f.line, |e| e.line);
                hits.push(SemHit {
                    rule_id: "DUR001",
                    line,
                    detail: Some(
                        "write handle opened and written but never fsynced".to_string(),
                    ),
                });
            }
        }
    }

    /// NUM002: raw arithmetic on tainted time/seq parameters in
    /// deterministic (or deterministically reachable) functions.
    fn num002_hits(&self, fi: usize, hits: &mut Vec<SemHit>) {
        let file = &self.graph.files[fi];
        if rules::is_test_like_path(&file.path) || rules::is_bin_path(&file.path) {
            return;
        }
        for (li, f) in file.fns.iter().enumerate() {
            if f.is_test || f.arith_sites.is_empty() {
                continue;
            }
            let id = match self.fn_id(fi, li) {
                Some(id) => id,
                None => continue,
            };
            let covered = rules::is_deterministic_crate(&file.path)
                || self.det_parent[id] != Reach::No;
            if !covered {
                continue;
            }
            let mut seen = Vec::new();
            for site in &f.arith_sites {
                if seen.contains(&site.line) {
                    continue;
                }
                seen.push(site.line);
                hits.push(SemHit {
                    rule_id: "NUM002",
                    line: site.line,
                    detail: Some(format!(
                        "raw arithmetic on caller-supplied `{}` in fn {}",
                        site.ident, f.name
                    )),
                });
            }
        }
    }

    /// PANIC002: panic sites outside `crates/server` whose containing
    /// fn is service-reachable through uncaught edges. Sites inside
    /// `crates/server` itself are already pinned by the zero PANIC001
    /// budget.
    fn panic002_hits(&self, fi: usize, hits: &mut Vec<SemHit>) {
        let file = &self.graph.files[fi];
        if file.path.starts_with("crates/server/")
            || rules::is_test_like_path(&file.path)
            || rules::is_bin_path(&file.path)
        {
            return;
        }
        for (li, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let id = match self.fn_id(fi, li) {
                Some(id) => id,
                None => continue,
            };
            if self.svc_parent[id] == Reach::No {
                continue;
            }
            for call in &f.calls {
                if call.caught {
                    continue;
                }
                let is_panic = (call.method && PANIC_METHODS.contains(&call.name.as_str()))
                    || (call.is_macro && PANIC_MACROS.contains(&call.name.as_str()));
                if is_panic {
                    hits.push(SemHit {
                        rule_id: "PANIC002",
                        line: call.line,
                        detail: Some(format!(
                            "`{}` in fn {} is reachable from the service (run \
                             tml-lint --explain PANIC002:{}:{} for the chain)",
                            call.name, f.name, file.path, call.line
                        )),
                    });
                }
            }
        }
    }

    fn fn_id(&self, fi: usize, li: usize) -> Option<usize> {
        self.graph.fn_locs.iter().position(|&loc| loc == (fi, li))
    }

    /// Root-to-target call chain under a parent map, as display lines.
    fn chain(&self, parents: &[Reach], target: usize) -> Option<Vec<String>> {
        let mut steps: Vec<(usize, Option<usize>)> = Vec::new();
        let mut cur = target;
        loop {
            match parents[cur] {
                Reach::No => return None,
                Reach::Root => {
                    steps.push((cur, None));
                    break;
                }
                Reach::Via { from, line } => {
                    steps.push((cur, Some(line)));
                    cur = from;
                }
            }
        }
        steps.reverse();
        let mut out = Vec::new();
        let mut prev_file: Option<&str> = None;
        for (id, via_line) in steps {
            match via_line {
                None => out.push(format!("  {}", self.graph.fn_display(id))),
                Some(line) => out.push(format!(
                    "    → {} (called at {}:{})",
                    self.graph.fn_display(id),
                    prev_file.unwrap_or("?"),
                    line
                )),
            }
            prev_file = Some(self.graph.fn_file(id));
        }
        Some(out)
    }

    /// Evidence for `--explain RULE:file:line`: why a finding fires, or
    /// the proof that a site is unreachable and therefore silent.
    pub fn explain(&self, rule: &str, file: &str, line: usize) -> String {
        let header = format!("{rule} {file}:{line}");
        let Some(id) = self.graph.fn_at(file, line) else {
            return format!(
                "{header}\n  no function contains this line (module-level code); \
                 reachability rules only cover function bodies.\n  graph: {} fns, {} edges.",
                self.graph.fn_count(),
                self.edge_count
            );
        };
        let fname = self.graph.fn_display(id);
        match rule {
            "PANIC002" => match self.chain(&self.svc_parent, id) {
                Some(chain) => format!(
                    "{header}\n  panic site is reachable from the service through \
                     uncaught edges:\n{}",
                    chain.join("\n")
                ),
                None => format!(
                    "{header}\n  {fname} is NOT service-reachable outside catch_unwind: \
                     no PANIC002 finding.\n  ({} service roots traced over {} fns, {} \
                     edges.)",
                    self.svc_root_count,
                    self.graph.fn_count(),
                    self.edge_count
                ),
            },
            "DET001" | "DET002" | "DET003" => {
                if rules::is_deterministic_crate(file) {
                    return format!(
                        "{header}\n  {fname} lives in a deterministic crate: the rule \
                         applies unconditionally (no reachability proof needed)."
                    );
                }
                match self.chain(&self.det_parent, id) {
                    Some(chain) => format!(
                        "{header}\n  reachable from a deterministic entry point — the \
                         finding fires:\n{}",
                        chain.join("\n")
                    ),
                    None => {
                        let mut out = format!(
                            "{header}\n  proven unreachable: no call path from any of \
                             the {} deterministic root fns ({} named entry points) \
                             reaches {fname}.\n  graph: {} fns, {} edges — the site is \
                             exempt without an allowlist.",
                            self.det_root_count,
                            self.entry_count,
                            self.graph.fn_count(),
                            self.edge_count
                        );
                        if let Some(chain) = self.chain(&self.svc_parent, id) {
                            out.push_str(&format!(
                                "\n  it belongs to the service world instead:\n{}",
                                chain.join("\n")
                            ));
                        }
                        out
                    }
                }
            }
            _ => format!(
                "{header}\n  {fname}; rule {rule} is structural (no reachability \
                 component) — see tml-lint --list-rules."
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::parse::parse_file;
    use crate::scan::scan;
    use std::collections::BTreeMap;

    fn sem(files: &[(&str, &str)]) -> Semantics {
        sem_with_deps(files, &[])
    }

    fn sem_with_deps(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> Semantics {
        let parsed = files
            .iter()
            .map(|(p, s)| parse_file(p, &scan(s)))
            .collect();
        let map: BTreeMap<String, Vec<String>> = deps
            .iter()
            .map(|(k, v)| (k.to_string(), v.iter().map(|s| s.to_string()).collect()))
            .collect();
        Semantics::compute(Graph::build(parsed, &map))
    }

    fn rule_lines(s: &Semantics, rule: &str, file: &str) -> Vec<usize> {
        s.findings_by_file()
            .get(file)
            .map(|hits| {
                hits.iter()
                    .filter(|h| h.rule_id == rule)
                    .map(|h| h.line)
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn diamond_reachability_single_visit() {
        // a → b, a → c, b → d, c → d: d reached once, chain well-formed.
        let src = "\
pub fn a() { b(); c(); }
fn b() { d(); }
fn c() { d(); }
fn d() {}
";
        let s = sem(&[("crates/core/src/lib.rs", src)]);
        assert!(s.det_reachable_at("crates/core/src/lib.rs", 4));
        let explain = s.explain("DET002", "crates/core/src/lib.rs", 4);
        assert!(explain.contains("deterministic crate"), "{explain}");
    }

    #[test]
    fn recursion_terminates() {
        let src = "pub fn spin(n: u64) { if n > 0 { spin(n); } other(); }\nfn other() {}\n";
        let s = sem(&[("crates/core/src/lib.rs", src)]);
        assert!(s.det_reachable_at("crates/core/src/lib.rs", 2));
    }

    #[test]
    fn cross_crate_det_reachability_gates_non_det_code() {
        // A stats helper called from inference is det-reachable; an
        // uncalled stats fn is not.
        let inference = "pub fn screen_hardware() { quantile(); }\n";
        let stats = "pub fn quantile() {}\npub fn orphan() {}\n";
        let s = sem_with_deps(
            &[
                ("crates/inference/src/screening.rs", inference),
                ("crates/stats/src/lib.rs", stats),
            ],
            &[
                ("treadmill-inference", &["treadmill-stats"]),
                ("treadmill-stats", &[]),
            ],
        );
        assert!(s.det_reachable_at("crates/stats/src/lib.rs", 1));
        assert!(!s.det_reachable_at("crates/stats/src/lib.rs", 2));
        let reach = s.explain("DET002", "crates/stats/src/lib.rs", 1);
        assert!(reach.contains("reachable from a deterministic entry point"), "{reach}");
        let unreach = s.explain("DET002", "crates/stats/src/lib.rs", 2);
        assert!(unreach.contains("proven unreachable"), "{unreach}");
    }

    #[test]
    fn trait_dispatch_reaches_every_impl() {
        let src = "\
trait W { fn tick(&mut self); }
struct Wa; struct Wb;
impl W for Wa { fn tick(&mut self) { shared(); } }
impl W for Wb { fn tick(&mut self) {} }
pub fn run_events(w: &mut Wa) { w.tick(); }
fn shared() {}
";
        let s = sem(&[("crates/sim-core/src/lib.rs", src)]);
        // `shared` is reached through the Wa impl of the trait method.
        assert!(s.det_reachable_at("crates/sim-core/src/lib.rs", 6));
    }

    #[test]
    fn panic002_fires_only_when_uncaught() {
        let server = "\
pub fn executor() { run_job(); }
pub fn safe_executor() {
    let r = std::panic::catch_unwind(|| contained_job());
}
";
        let core = "\
pub fn run_job() { boom(); }
pub fn contained_job() { contained_boom(); }
fn boom() { inner().unwrap(); }
fn contained_boom() { inner().unwrap(); }
fn inner() -> Option<u32> { None }
";
        let s = sem_with_deps(
            &[
                ("crates/server/src/service.rs", server),
                ("crates/core/src/job.rs", core),
            ],
            &[
                ("treadmill-server", &["treadmill-core"]),
                ("treadmill-core", &[]),
            ],
        );
        let lines = rule_lines(&s, "PANIC002", "crates/core/src/job.rs");
        // boom's unwrap (line 3) is reachable; contained_boom's (line 4)
        // is only reachable through catch_unwind.
        assert_eq!(lines, vec![3], "{:?}", s.findings_by_file());
        let explain = s.explain("PANIC002", "crates/core/src/job.rs", 3);
        assert!(explain.contains("reachable from the service"), "{explain}");
        assert!(explain.contains("executor"), "{explain}");
        let silent = s.explain("PANIC002", "crates/core/src/job.rs", 4);
        assert!(silent.contains("NOT service-reachable"), "{silent}");
    }

    #[test]
    fn det008_overlapping_guards_flagged_sequential_ok() {
        let bad = "\
pub struct Pool { shards: Vec<Mutex<u64>> }
impl Pool {
    pub fn broken(&self) {
        let a = self.shards[0].lock();
        let b = self.shards[1].lock();
    }
    pub fn fine(&self) {
        for s in &self.shards {
            let g = s.lock();
        }
        for s in &self.shards {
            let g = s.lock();
        }
    }
}
";
        let s = sem(&[("crates/cluster/src/shard.rs", bad)]);
        assert_eq!(rule_lines(&s, "DET008", "crates/cluster/src/shard.rs"), vec![5]);
    }

    #[test]
    fn dur001_rename_without_sync() {
        let bad = "\
pub fn publish(tmp: &Path, dst: &Path) {
    let mut f = File::create(tmp).unwrap();
    f.write_all(b\"x\").unwrap();
    fs::rename(tmp, dst).unwrap();
}
";
        let good = "\
pub fn publish(tmp: &Path, dst: &Path) {
    let mut f = File::create(tmp).unwrap();
    f.write_all(b\"x\").unwrap();
    f.sync_all().unwrap();
    fs::rename(tmp, dst).unwrap();
}
";
        let s = sem(&[("crates/server/src/store.rs", bad)]);
        let lines = rule_lines(&s, "DUR001", "crates/server/src/store.rs");
        // Both violations: the unsynced rename and the never-synced handle.
        assert!(lines.contains(&4), "{lines:?}");
        let s = sem(&[("crates/server/src/store.rs", good)]);
        assert!(rule_lines(&s, "DUR001", "crates/server/src/store.rs").is_empty());
    }

    #[test]
    fn dur001_scope_is_limited() {
        // The same unsynced pattern outside server/sweep is not DUR001's
        // business (e.g. a debug dump in stats).
        let bad = "\
pub fn dump(p: &Path) {
    let mut f = File::create(p).unwrap();
    f.write_all(b\"x\").unwrap();
}
";
        let s = sem(&[("crates/stats/src/debug.rs", bad)]);
        assert!(rule_lines(&s, "DUR001", "crates/stats/src/debug.rs").is_empty());
    }

    #[test]
    fn num002_gated_by_det_reachability() {
        let det = "pub fn advance(now_ns: u64, delta_ns: u64) -> u64 { now_ns + delta_ns }\n";
        let unreached = "pub fn fmt_ts(wall_ns: u64) -> u64 { wall_ns * 2 }\n";
        let s = sem_with_deps(
            &[
                ("crates/sim-core/src/time.rs", det),
                ("crates/server/src/audit.rs", unreached),
            ],
            &[
                ("treadmill-server", &["treadmill-sim-core"]),
                ("treadmill-sim-core", &[]),
            ],
        );
        assert_eq!(rule_lines(&s, "NUM002", "crates/sim-core/src/time.rs"), vec![1]);
        // server fn is not det-reachable: raw wall-clock math is fine.
        assert!(rule_lines(&s, "NUM002", "crates/server/src/audit.rs").is_empty());
    }
}
