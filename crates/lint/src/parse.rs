//! Item-level parsing of a scanned source file.
//!
//! [`crate::scan`] produces lexical layers (code with literal contents
//! blanked, comments, `#[cfg(test)]` tracking); this module tokenizes
//! the code layer and recovers the *item structure* the semantic rules
//! need: modules, `use` trees, `impl` blocks, function signatures
//! (receiver, arity, parameter names/types), and — inside every
//! function body — call expressions with their receivers and argument
//! counts, lock-guard lifetimes, file-durability events, and raw
//! arithmetic on caller-supplied time/sequence integers.
//!
//! It is deliberately *not* a Rust grammar: expressions are never
//! built into trees. Everything downstream (the call graph in
//! [`crate::graph`], the reachability engine in [`crate::reach`])
//! only needs items, calls and a handful of per-statement facts, so a
//! single forward pass with a block stack is enough — and it keeps the
//! linter dependency-free and fast (the whole workspace parses in
//! well under a second).

use crate::scan::SourceModel;

/// One lexed token of the (literal-blanked) code layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (any base/suffix).
    Num,
    /// A blanked string or char literal.
    Lit,
    /// Punctuation. Multi-char only for `::`, `->` and `=>`; shifts
    /// stay as two tokens so `Vec<Vec<T>>`'s `>>` closes two angles.
    Op(&'static str),
}

/// A token with its 0-based source line.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    pub line: usize,
    pub tok: Tok,
}

/// A call expression found inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line of the callee name.
    pub line: usize,
    /// Callee name (last path segment / method name / macro name).
    pub name: String,
    /// Full path segments for qualified calls (`fs::rename` →
    /// `["fs", "rename"]`); single-element for bare calls; empty for
    /// method calls.
    pub path: Vec<String>,
    /// `receiver.name(..)` method syntax.
    pub method: bool,
    /// Method receiver token was literally `self`.
    pub recv_self: bool,
    /// Number of top-level arguments (commas + 1, 0 for `()`).
    pub arity: usize,
    /// The call sits inside a `catch_unwind(..)` argument: a panic
    /// below this edge is contained, not a crash.
    pub caught: bool,
    /// `name!(..)` macro invocation.
    pub is_macro: bool,
}

/// What a file-durability statement does (DUR001 evidence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// `OpenOptions::…append(true)…` — an append-mode journal open.
    AppendOpen,
    /// `File::create` / `OpenOptions::…create(…)…open` — a fresh write
    /// handle.
    CreateFile,
    /// `write_all` / `write_fmt` — bytes entered the kernel buffer.
    Write,
    /// `sync_all` / `sync_data` — bytes were forced to the device.
    Sync,
    /// `fs::rename` — the atomic publish step.
    Rename,
}

/// A durability-relevant event, in body order.
#[derive(Debug, Clone, Copy)]
pub struct IoEvent {
    /// 1-based line.
    pub line: usize,
    pub kind: IoKind,
}

/// A lock-discipline event inside a function body (DET008 evidence).
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// 1-based line of the *second* acquisition.
    pub line: usize,
    /// Human-readable description of the overlap.
    pub detail: String,
}

/// Raw (`+`/`-`/`*`) arithmetic on a caller-supplied time/sequence
/// integer parameter (NUM002 evidence).
#[derive(Debug, Clone)]
pub struct ArithSite {
    /// 1-based line.
    pub line: usize,
    /// The tainted parameter involved.
    pub ident: String,
}

/// A parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// `impl Type { … }` type (last path segment), if a method/assoc fn.
    pub self_ty: Option<String>,
    /// `impl Trait for Type { … }` trait name, if any.
    pub trait_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive body range (equal to `line` for bodiless fns).
    pub body_start: usize,
    pub body_end: usize,
    /// Inside `#[cfg(test)]` or annotated `#[test]`.
    pub is_test: bool,
    pub is_pub: bool,
    /// `self`/`&self`/`&mut self` receiver present.
    pub has_self: bool,
    /// Parameter count excluding the receiver.
    pub arity: usize,
    pub param_names: Vec<String>,
    /// Flattened type text per parameter (tokens joined by spaces).
    pub param_types: Vec<String>,
    pub calls: Vec<CallSite>,
    pub io_events: Vec<IoEvent>,
    pub lock_overlaps: Vec<LockEvent>,
    pub arith_sites: Vec<ArithSite>,
}

/// A `use` import: local binding name → full path segments.
#[derive(Debug, Clone)]
pub struct Import {
    pub alias: String,
    pub path: Vec<String>,
}

/// The item-level model of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path (unix separators).
    pub path: String,
    pub fns: Vec<FnDef>,
    /// `mod name;` declarations (child files of this module).
    pub mod_decls: Vec<String>,
    pub imports: Vec<Import>,
    /// 1-based lines declaring a `Vec<Mutex<…>>` (or array of
    /// mutexes) — marks the file as using the sharded-lock pattern
    /// DET008 audits.
    pub mutex_vec_lines: Vec<usize>,
}

impl ParsedFile {
    /// The innermost function whose body covers 1-based `line`.
    pub fn fn_at(&self, line: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.body_start <= line && line <= f.body_end {
                let tighter = match best {
                    Some(b) => {
                        let prev = &self.fns[b];
                        (f.body_end - f.body_start) < (prev.body_end - prev.body_start)
                    }
                    None => true,
                };
                if tighter {
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// Tokenizes the code layer of a scanned file.
pub fn tokenize(model: &SourceModel) -> Vec<SpannedTok> {
    let mut out = Vec::new();
    let mut in_str = false;
    for (lineno, line) in model.lines.iter().enumerate() {
        let bytes = line.code.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if in_str {
                // Inside a (blanked, possibly multi-line) string: skip
                // to the closing quote.
                if c == '"' {
                    in_str = false;
                    out.push(SpannedTok { line: lineno, tok: Tok::Lit });
                }
                i += 1;
                continue;
            }
            match c {
                ' ' | '\t' => i += 1,
                '"' => {
                    // Contents are blanked; find the close (maybe on a
                    // later line).
                    let rest = &line.code[i + 1..];
                    match rest.find('"') {
                        Some(off) => {
                            out.push(SpannedTok { line: lineno, tok: Tok::Lit });
                            i += off + 2;
                        }
                        None => {
                            in_str = true;
                            i = bytes.len();
                        }
                    }
                }
                '\'' => {
                    // Char literal (blanked to spaces) vs lifetime.
                    let rest = &line.code[i + 1..];
                    let close = rest.find('\'');
                    let is_char = close
                        .is_some_and(|off| rest[..off].chars().all(|c| c == ' '));
                    if let (true, Some(off)) = (is_char, close) {
                        out.push(SpannedTok { line: lineno, tok: Tok::Lit });
                        i += off + 2;
                    } else {
                        i += 1; // lifetime tick; the ident lexes next
                    }
                }
                'a'..='z' | 'A'..='Z' | '_' => {
                    let start = i;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.push(SpannedTok {
                        line: lineno,
                        tok: Tok::Ident(line.code[start..i].to_string()),
                    });
                }
                '0'..='9' => {
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric()
                            || bytes[i] == b'_'
                            || (bytes[i] == b'.'
                                && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)))
                    {
                        i += 1;
                    }
                    out.push(SpannedTok { line: lineno, tok: Tok::Num });
                }
                ':' if bytes.get(i + 1) == Some(&b':') => {
                    out.push(SpannedTok { line: lineno, tok: Tok::Op("::") });
                    i += 2;
                }
                '-' if bytes.get(i + 1) == Some(&b'>') => {
                    out.push(SpannedTok { line: lineno, tok: Tok::Op("->") });
                    i += 2;
                }
                '=' if bytes.get(i + 1) == Some(&b'>') => {
                    out.push(SpannedTok { line: lineno, tok: Tok::Op("=>") });
                    i += 2;
                }
                _ => {
                    out.push(SpannedTok {
                        line: lineno,
                        tok: Tok::Op(op_str(c)),
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Interns single-char punctuation as `&'static str`.
fn op_str(c: char) -> &'static str {
    match c {
        '(' => "(",
        ')' => ")",
        '{' => "{",
        '}' => "}",
        '[' => "[",
        ']' => "]",
        '<' => "<",
        '>' => ">",
        ',' => ",",
        ';' => ";",
        '.' => ".",
        '!' => "!",
        '&' => "&",
        '|' => "|",
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '=' => "=",
        '#' => "#",
        ':' => ":",
        '?' => "?",
        '@' => "@",
        '%' => "%",
        '^' => "^",
        '~' => "~",
        _ => "·",
    }
}

fn ident_of(t: &Tok) -> Option<&str> {
    match t {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_op(t: &Tok, s: &str) -> bool {
    matches!(t, Tok::Op(o) if *o == s)
}

/// What kind of block the parser is inside.
#[derive(Debug, Clone)]
enum BlockKind {
    Plain,
    Mod,
    Impl {
        self_ty: Option<String>,
        trait_ty: Option<String>,
    },
    Fn {
        fn_idx: usize,
        /// Guard bindings made directly in each open sub-block
        /// (index 0 = the fn body itself).
        guards: Vec<usize>,
    },
}

/// Parses a scanned file into its item-level model. `path` is the
/// workspace-relative path stored on the result.
pub fn parse_file(path: &str, model: &SourceModel) -> ParsedFile {
    let toks = tokenize(model);
    let mut out = ParsedFile {
        path: path.to_string(),
        ..ParsedFile::default()
    };
    detect_mutex_vecs(model, &mut out);

    let mut blocks: Vec<BlockKind> = Vec::new();
    // Innermost enclosing fn, as an index into the `blocks` stack.
    let mut fn_stack: Vec<usize> = Vec::new();
    let mut pending_test_attr = false;
    let mut pending_pub = false;
    // Open `catch_unwind(`-argument paren depths.
    let mut catch_parens: Vec<usize> = Vec::new();
    let mut paren_depth = 0usize;
    // Per-statement durability context, reset at `;`.
    let mut stmt_has_openoptions = false;
    let mut stmt_has_file = false;
    let mut stmt_io: Vec<IoEvent> = Vec::new();
    // `let` statement lock tracking: Some(lock_seen) while between
    // `let` and its `;`.
    let mut let_lock: Option<bool> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let line0 = toks[i].line;
        match &toks[i].tok {
            Tok::Ident(w) if w == "pub" => {
                pending_pub = true;
                i += 1;
            }
            Tok::Op("#") => {
                // Attribute: `#[…]` or `#![…]`; record `#[test]`.
                let mut j = i + 1;
                if j < toks.len() && is_op(&toks[j].tok, "!") {
                    j += 1;
                }
                if j < toks.len() && is_op(&toks[j].tok, "[") {
                    let mut depth = 1;
                    let mut k = j + 1;
                    if let Some(Tok::Ident(a)) = toks.get(k).map(|t| &t.tok) {
                        if a == "test" {
                            pending_test_attr = true;
                        }
                    }
                    while k < toks.len() && depth > 0 {
                        if is_op(&toks[k].tok, "[") {
                            depth += 1;
                        } else if is_op(&toks[k].tok, "]") {
                            depth -= 1;
                        }
                        k += 1;
                    }
                    i = k;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(w) if w == "mod" => {
                if let Some(name) = toks.get(i + 1).and_then(|t| ident_of(&t.tok)) {
                    let name = name.to_string();
                    match toks.get(i + 2).map(|t| &t.tok) {
                        Some(t) if is_op(t, ";") => {
                            out.mod_decls.push(name);
                            i += 3;
                        }
                        Some(t) if is_op(t, "{") => {
                            blocks.push(BlockKind::Mod);
                            i += 3;
                        }
                        _ => i += 2,
                    }
                } else {
                    i += 1;
                }
                pending_pub = false;
            }
            Tok::Ident(w) if w == "use" => {
                i = parse_use(&toks, i + 1, &mut out.imports);
                pending_pub = false;
            }
            Tok::Ident(w) if w == "impl" => {
                i = parse_impl_header(&toks, i + 1, &mut blocks);
                pending_pub = false;
            }
            Tok::Ident(w) if w == "fn" => {
                let in_test_region = model
                    .lines
                    .get(line0)
                    .is_some_and(|l| l.in_test);
                let (next, parsed) = parse_fn(
                    &toks,
                    i + 1,
                    &blocks,
                    pending_test_attr || in_test_region,
                    pending_pub,
                );
                pending_test_attr = false;
                pending_pub = false;
                i = next;
                if let Some(fndef) = parsed {
                    let has_body = i < toks.len() && is_op(&toks[i].tok, "{");
                    out.fns.push(fndef);
                    if has_body {
                        blocks.push(BlockKind::Fn {
                            fn_idx: out.fns.len() - 1,
                            guards: vec![0],
                        });
                        fn_stack.push(blocks.len() - 1);
                        i += 1;
                    } else {
                        // Bodiless (trait decl / extern): close it out.
                        let f = out.fns.last_mut().filter(|f| f.body_end == 0);
                        if let Some(f) = f {
                            f.body_end = f.body_start;
                        }
                    }
                }
            }
            Tok::Op("{") => {
                blocks.push(BlockKind::Plain);
                if let Some(&fi) = fn_stack.last() {
                    if let BlockKind::Fn { guards, .. } = &mut blocks[fi] {
                        guards.push(0);
                    }
                }
                i += 1;
            }
            Tok::Op("}") => {
                // Settle a tail expression's durability events (no `;`
                // before the block closes).
                if let Some(&fi) = fn_stack.last() {
                    if let BlockKind::Fn { fn_idx, .. } = &blocks[fi] {
                        settle_statement(&mut out.fns[*fn_idx], &mut stmt_io);
                    }
                }
                stmt_has_openoptions = false;
                stmt_has_file = false;
                stmt_io.clear();
                let_lock = None;
                pending_pub = false;
                match blocks.pop() {
                    Some(BlockKind::Fn { fn_idx, .. }) => {
                        fn_stack.pop();
                        out.fns[fn_idx].body_end = line0 + 1;
                    }
                    Some(BlockKind::Plain) => {
                        if let Some(&fi) = fn_stack.last() {
                            if let BlockKind::Fn { guards, .. } = &mut blocks[fi] {
                                guards.pop();
                            }
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            Tok::Op("(") => {
                paren_depth += 1;
                i += 1;
            }
            Tok::Op(")") => {
                paren_depth = paren_depth.saturating_sub(1);
                while catch_parens.last().is_some_and(|&d| d > paren_depth) {
                    catch_parens.pop();
                }
                i += 1;
            }
            Tok::Op(";") => {
                // Statement boundary: settle durability + let/lock
                // context.
                if let Some(&fi) = fn_stack.last() {
                    if let BlockKind::Fn { fn_idx, .. } = &blocks[fi] {
                        settle_statement(&mut out.fns[*fn_idx], &mut stmt_io);
                    }
                    if let_lock == Some(true) {
                        note_guard_bind(&mut blocks, &fn_stack, &mut out.fns, line0 + 1);
                    }
                }
                stmt_has_openoptions = false;
                stmt_has_file = false;
                stmt_io.clear();
                let_lock = None;
                pending_pub = false;
                i += 1;
            }
            Tok::Ident(w) if w == "let" && !fn_stack.is_empty() => {
                let_lock = Some(false);
                i += 1;
            }
            Tok::Ident(_) => {
                let consumed = scan_body_ident(
                    &toks,
                    i,
                    &mut out,
                    &blocks,
                    &fn_stack,
                    &mut catch_parens,
                    &mut paren_depth,
                    &mut stmt_has_openoptions,
                    &mut stmt_has_file,
                    &mut stmt_io,
                    &mut let_lock,
                );
                i += consumed;
            }
            _ => {
                i += 1;
            }
        }
    }
    // Unclosed fns at EOF (truncated input): close at last line.
    let last = model.lines.len();
    for f in &mut out.fns {
        if f.body_end == 0 {
            f.body_end = last;
        }
    }
    out
}

/// Lexical sweep for `Vec<Mutex<` / `[Mutex<` declarations.
fn detect_mutex_vecs(model: &SourceModel, out: &mut ParsedFile) {
    for (idx, line) in model.lines.iter().enumerate() {
        let compact: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.contains("Vec<Mutex<") || compact.contains("[Mutex<") {
            out.mutex_vec_lines.push(idx + 1);
        }
    }
}

/// Parses a `use` tree starting after the `use` keyword; returns the
/// index after the terminating `;`.
fn parse_use(toks: &[SpannedTok], mut i: usize, imports: &mut Vec<Import>) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    // Prefix length to restore when each open `{` group closes.
    let mut group_marks: Vec<usize> = Vec::new();
    let mut segs: Vec<String> = Vec::new();
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(s) => {
                if s == "as" {
                    // `path as alias`
                    if let Some(alias) = toks.get(i + 1).and_then(|t| ident_of(&t.tok)) {
                        let mut full = prefix.clone();
                        full.append(&mut segs);
                        imports.push(Import {
                            alias: alias.to_string(),
                            path: full,
                        });
                        i += 2;
                        continue;
                    }
                }
                segs.push(s.clone());
                i += 1;
            }
            Tok::Op("::") => {
                i += 1;
            }
            Tok::Op("{") => {
                group_marks.push(prefix.len());
                prefix.append(&mut segs);
                i += 1;
            }
            Tok::Op("}") => {
                finish_use_leaf(imports, &prefix, &mut segs);
                if let Some(mark) = group_marks.pop() {
                    prefix.truncate(mark);
                }
                i += 1;
            }
            Tok::Op(",") => {
                finish_use_leaf(imports, &prefix, &mut segs);
                i += 1;
            }
            Tok::Op("*") => {
                segs.clear(); // glob: nothing nameable to bind
                i += 1;
            }
            Tok::Op(";") => {
                finish_use_leaf(imports, &prefix, &mut segs);
                return i + 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    i
}

fn finish_use_leaf(imports: &mut Vec<Import>, prefix: &[String], segs: &mut Vec<String>) {
    let Some(last) = segs.last().cloned() else {
        return;
    };
    if last == "self" {
        // `use a::b::{self, …}` binds the module name `b`.
        let mut full = prefix.to_vec();
        full.extend(segs[..segs.len() - 1].iter().cloned());
        if let Some(alias) = full.last().cloned() {
            imports.push(Import { alias, path: full });
        }
    } else {
        let mut full = prefix.to_vec();
        full.extend(segs.iter().cloned());
        imports.push(Import { alias: last, path: full });
    }
    segs.clear();
}

/// Parses an `impl` header (after the keyword) up to its `{`, pushing
/// an `Impl` block; returns the index after the `{`.
fn parse_impl_header(toks: &[SpannedTok], mut i: usize, blocks: &mut Vec<BlockKind>) -> usize {
    let mut angle = 0i32;
    let mut segs_before_for: Vec<String> = Vec::new();
    let mut segs_after_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    let mut saw_where = false;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Op("<") => angle += 1,
            Tok::Op(">") => angle -= 1,
            Tok::Op("->") => {}
            Tok::Ident(s) if s == "for" && angle == 0 && !saw_where => saw_for = true,
            Tok::Ident(s) if s == "where" && angle == 0 => {
                // Stop collecting: where-clause bounds (including HRTB
                // `for<'a>`) must not perturb the resolved names.
                saw_where = true;
            }
            Tok::Ident(s) if angle == 0 && !saw_where => {
                if saw_for {
                    segs_after_for.push(s.clone());
                } else {
                    segs_before_for.push(s.clone());
                }
            }
            Tok::Op("{") => {
                let (trait_ty, self_ty) = if saw_for {
                    (
                        segs_before_for.last().cloned(),
                        segs_after_for.last().cloned(),
                    )
                } else {
                    (None, segs_before_for.last().cloned())
                };
                blocks.push(BlockKind::Impl { self_ty, trait_ty });
                return i + 1;
            }
            Tok::Op(";") => return i + 1, // `impl Trait for Type;` — malformed, bail
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses a fn signature (after the `fn` keyword) up to but not
/// including the body `{` (or past the `;` for bodiless decls).
/// Returns (next index, parsed def).
fn parse_fn(
    toks: &[SpannedTok],
    mut i: usize,
    blocks: &[BlockKind],
    is_test: bool,
    is_pub: bool,
) -> (usize, Option<FnDef>) {
    let Some(name) = toks.get(i).and_then(|t| ident_of(&t.tok)).map(String::from) else {
        return (i, None);
    };
    let line = toks[i].line + 1;
    i += 1;
    // Generic params.
    if toks.get(i).is_some_and(|t| is_op(&t.tok, "<")) {
        let mut depth = 0i32;
        while i < toks.len() {
            if is_op(&toks[i].tok, "<") {
                depth += 1;
            } else if is_op(&toks[i].tok, ">") {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Parameter list.
    let mut has_self = false;
    let mut param_names = Vec::new();
    let mut param_types = Vec::new();
    if toks.get(i).is_some_and(|t| is_op(&t.tok, "(")) {
        let close = matching_paren(toks, i);
        let params = split_top_level(&toks[i + 1..close]);
        for (pi, p) in params.iter().enumerate() {
            if p.is_empty() {
                continue;
            }
            let idents: Vec<&str> =
                p.iter().filter_map(|t| ident_of(&t.tok)).collect();
            let receiver = idents
                .iter()
                .find(|s| **s != "mut" && **s != "ref")
                .copied();
            if pi == 0 && receiver == Some("self") {
                has_self = true;
                continue;
            }
            // Split at the top-level `:` between pattern and type.
            let mut angle = 0i32;
            let mut colon = None;
            for (k, t) in p.iter().enumerate() {
                match &t.tok {
                    Tok::Op("<") => angle += 1,
                    Tok::Op(">") => angle -= 1,
                    Tok::Op(":") if angle == 0 => {
                        colon = Some(k);
                        break;
                    }
                    _ => {}
                }
            }
            let (pat, ty) = match colon {
                Some(k) => (&p[..k], &p[k + 1..]),
                None => (&p[..], &p[..0]),
            };
            let name = pat
                .iter()
                .filter_map(|t| ident_of(&t.tok))
                .find(|s| *s != "mut" && *s != "ref")
                .unwrap_or("_")
                .to_string();
            let ty_text = ty
                .iter()
                .map(|t| match &t.tok {
                    Tok::Ident(s) => s.as_str(),
                    Tok::Op(o) => o,
                    Tok::Num => "0",
                    Tok::Lit => "\"\"",
                })
                .collect::<Vec<_>>()
                .join(" ");
            param_names.push(name);
            param_types.push(ty_text);
        }
        i = close + 1;
    }
    // Skip return type / where clause until `{` or `;`. Angle depth
    // guards `Result<T, E>`-style commas; brace depth never opens here
    // except for the body itself.
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Op("{") | Tok::Op(";") => break,
            _ => i += 1,
        }
    }
    let (self_ty, trait_ty) = blocks
        .iter()
        .rev()
        .find_map(|b| match b {
            BlockKind::Impl { self_ty, trait_ty } => {
                Some((self_ty.clone(), trait_ty.clone()))
            }
            _ => None,
        })
        .unwrap_or((None, None));
    let bodiless = toks.get(i).is_some_and(|t| is_op(&t.tok, ";"));
    let body_start = line;
    let def = FnDef {
        arity: param_names.len(),
        name,
        self_ty,
        trait_ty,
        line,
        body_start,
        body_end: if bodiless { line } else { 0 },
        is_test,
        is_pub,
        has_self,
        param_names,
        param_types,
        calls: Vec::new(),
        io_events: Vec::new(),
        lock_overlaps: Vec::new(),
        arith_sites: Vec::new(),
    };
    if bodiless {
        return (i + 1, Some(def));
    }
    (i, Some(def))
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if is_op(&toks[i].tok, "(") {
            depth += 1;
        } else if is_op(&toks[i].tok, ")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Splits a token slice at top-level commas (outside `()`/`[]`/`<>`).
fn split_top_level(toks: &[SpannedTok]) -> Vec<Vec<SpannedTok>> {
    let mut out = vec![Vec::new()];
    let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
    for t in toks {
        match &t.tok {
            Tok::Op("(") => paren += 1,
            Tok::Op(")") => paren -= 1,
            Tok::Op("[") => bracket += 1,
            Tok::Op("]") => bracket -= 1,
            Tok::Op("<") => angle += 1,
            Tok::Op(">") => angle = (angle - 1).max(0),
            Tok::Op(",") if paren == 0 && bracket == 0 && angle == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        if let Some(v) = out.last_mut() {
            v.push(t.clone());
        }
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

/// Counts the top-level arguments of the call whose `(` is at `open`.
fn call_arity(toks: &[SpannedTok], open: usize) -> usize {
    let close = matching_paren(toks, open);
    if close <= open + 1 {
        return 0;
    }
    // Angle brackets are comparison operators in expression position,
    // so only `()`/`[]`/`{}` nesting shields commas here — plus `|…|`
    // closure parameter lists, tracked as a toggle (a bitwise-or in an
    // argument merely fuzzes the arity, which resolution tolerates).
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    let mut in_closure_params = false;
    let mut args = 1usize;
    let mut trailing_comma = false;
    for t in &toks[open + 1..close] {
        let top = paren == 0 && bracket == 0 && brace == 0;
        let mut is_top_comma = false;
        match &t.tok {
            Tok::Op("(") => paren += 1,
            Tok::Op(")") => paren -= 1,
            Tok::Op("[") => bracket += 1,
            Tok::Op("]") => bracket -= 1,
            Tok::Op("{") => brace += 1,
            Tok::Op("}") => brace -= 1,
            Tok::Op("|") if top => in_closure_params = !in_closure_params,
            Tok::Op(",") if top && !in_closure_params => {
                args += 1;
                is_top_comma = true;
            }
            _ => {}
        }
        trailing_comma = is_top_comma;
    }
    if trailing_comma {
        args -= 1;
    }
    args
}

const TIME_SEQ_SUFFIXES: &[&str] = &["_ns", "_nanos", "_seq"];
const TIME_SEQ_EXACT: &[&str] = &["nanos", "ns", "seq", "seq_no", "seqno"];

/// Is `name: ty` a caller-supplied raw time/sequence integer (NUM002)?
fn tainted_param(name: &str, ty: &str) -> bool {
    let name_hit = TIME_SEQ_EXACT.contains(&name)
        || TIME_SEQ_SUFFIXES.iter().any(|s| name.ends_with(s))
        || name.contains("nanos");
    if !name_hit {
        return false;
    }
    // SimTime/SimDuration carry checked operator impls; raw machine
    // integers (or unknown/generic types) are the hazard.
    !(ty.contains("SimTime") || ty.contains("SimDuration") || ty.contains("f64"))
}

/// Handles an identifier inside (or outside) a fn body: call sites,
/// durability facts, lock events, tainted arithmetic. Returns how many
/// tokens were consumed (≥1).
#[allow(clippy::too_many_arguments)]
fn scan_body_ident(
    toks: &[SpannedTok],
    i: usize,
    out: &mut ParsedFile,
    blocks: &[BlockKind],
    fn_stack: &[usize],
    catch_parens: &mut Vec<usize>,
    paren_depth: &mut usize,
    stmt_has_openoptions: &mut bool,
    stmt_has_file: &mut bool,
    stmt_io: &mut Vec<IoEvent>,
    let_lock: &mut Option<bool>,
) -> usize {
    let Tok::Ident(name) = &toks[i].tok else {
        return 1;
    };
    let line1 = toks[i].line + 1;
    if name == "OpenOptions" {
        *stmt_has_openoptions = true;
    }
    if name == "File" {
        *stmt_has_file = true;
    }

    let fn_idx = fn_stack.last().and_then(|&fi| match &blocks[fi] {
        BlockKind::Fn { fn_idx, .. } => Some(*fn_idx),
        _ => None,
    });

    // NUM002: tainted-param adjacency to raw arithmetic.
    if let Some(fi) = fn_idx {
        let f = &out.fns[fi];
        let tainted = f
            .param_names
            .iter()
            .zip(&f.param_types)
            .any(|(n, t)| n == name && tainted_param(n, t));
        if tainted {
            let prev = i.checked_sub(1).map(|p| &toks[p].tok);
            let next = toks.get(i + 1).map(|t| &t.tok);
            let next_op_arith = matches!(next, Some(Tok::Op(o)) if matches!(*o, "+" | "-" | "*"));
            // `ident OP …` is always arithmetic; `… OP ident` only
            // when the OP has a left operand (else it is deref/neg/ref).
            let prev_op_arith = matches!(prev, Some(Tok::Op(o)) if matches!(*o, "+" | "-" | "*"))
                && i >= 2
                && matches!(
                    &toks[i - 2].tok,
                    Tok::Ident(_) | Tok::Num | Tok::Op(")") | Tok::Op("]")
                );
            // `ident - >` never happens (`->` is one token); `ident *`
            // can be a glob only in use trees, which never get here.
            if next_op_arith || prev_op_arith {
                out.fns[fi].arith_sites.push(ArithSite {
                    line: line1,
                    ident: name.clone(),
                });
            }
        }
    }

    // Call expression?
    let mut j = i + 1;
    // Turbofish: `name::<T>(…)`.
    if toks.get(j).is_some_and(|t| is_op(&t.tok, "::"))
        && toks.get(j + 1).is_some_and(|t| is_op(&t.tok, "<"))
    {
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < toks.len() {
            if is_op(&toks[k].tok, "<") {
                depth += 1;
            } else if is_op(&toks[k].tok, ">") {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
        j = k;
    }
    let is_macro = toks.get(j).is_some_and(|t| is_op(&t.tok, "!"));
    if is_macro {
        j += 1;
    }
    let opens_call = toks.get(j).is_some_and(|t| {
        is_op(&t.tok, "(") || (is_macro && (is_op(&t.tok, "[") || is_op(&t.tok, "{")))
    });
    if !opens_call {
        return 1;
    }
    // Path/method context.
    let prev = i.checked_sub(1).map(|p| &toks[p].tok);
    let method = matches!(prev, Some(t) if is_op(t, "."));
    let mut path: Vec<String> = Vec::new();
    let mut recv_self = false;
    if method {
        recv_self = i >= 2 && matches!(&toks[i - 2].tok, Tok::Ident(s) if s == "self");
    } else {
        path.push(name.clone());
        let mut back = i;
        while back >= 2 && is_op(&toks[back - 1].tok, "::") {
            if let Tok::Ident(seg) = &toks[back - 2].tok {
                path.insert(0, seg.clone());
                back -= 2;
            } else {
                break;
            }
        }
    }
    let arity = if toks.get(j).is_some_and(|t| is_op(&t.tok, "(")) {
        call_arity(toks, j)
    } else {
        0
    };
    let caught = !catch_parens.is_empty();
    if name == "lock" || name == "try_lock" {
        match let_lock {
            Some(seen) => {
                if *seen {
                    // Two locks in one binding init: immediate overlap.
                    note_overlap(out, blocks, fn_stack, line1, "two lock acquisitions in one initializer");
                } else {
                    *let_lock = Some(true);
                }
            }
            None => {
                // Temporary guard: overlaps if any bound guard lives.
                if any_live_guard(blocks, fn_stack) {
                    note_overlap(
                        out,
                        blocks,
                        fn_stack,
                        line1,
                        "lock acquired while another shard guard is live in this scope",
                    );
                }
            }
        }
    }
    if name == "catch_unwind" {
        catch_parens.push(*paren_depth + 1);
    }
    // Durability facts.
    if fn_idx.is_some() {
        let io_kind = match name.as_str() {
            "append" if *stmt_has_openoptions => Some(IoKind::AppendOpen),
            "create" if *stmt_has_file || *stmt_has_openoptions || path.first().map(String::as_str) == Some("File") => {
                Some(IoKind::CreateFile)
            }
            "write_all" | "write_fmt" => Some(IoKind::Write),
            "sync_all" | "sync_data" => Some(IoKind::Sync),
            "rename" if !method => Some(IoKind::Rename),
            _ => None,
        };
        if let Some(kind) = io_kind {
            stmt_io.push(IoEvent { line: line1, kind });
        }
    }
    if let Some(fi) = fn_idx {
        out.fns[fi].calls.push(CallSite {
            line: line1,
            name: name.clone(),
            path,
            method,
            recv_self,
            arity,
            caught,
            is_macro,
        });
    }
    1
}

/// True when any enclosing block of the current fn holds a live bound
/// guard.
fn any_live_guard(blocks: &[BlockKind], fn_stack: &[usize]) -> bool {
    fn_stack.last().is_some_and(|&fi| match &blocks[fi] {
        BlockKind::Fn { guards, .. } => guards.iter().any(|&g| g > 0),
        _ => false,
    })
}

fn note_overlap(
    out: &mut ParsedFile,
    blocks: &[BlockKind],
    fn_stack: &[usize],
    line: usize,
    detail: &str,
) {
    if let Some(&fi) = fn_stack.last() {
        if let BlockKind::Fn { fn_idx, .. } = &blocks[fi] {
            out.fns[*fn_idx].lock_overlaps.push(LockEvent {
                line,
                detail: detail.to_string(),
            });
        }
    }
}

/// Registers a guard binding (`let g = …lock(…)…;`) in the innermost
/// open block of the current fn; flags an overlap when one is already
/// live.
fn note_guard_bind(
    blocks: &mut [BlockKind],
    fn_stack: &[usize],
    fns: &mut [FnDef],
    line: usize,
) {
    let Some(&fi) = fn_stack.last() else { return };
    if let BlockKind::Fn { fn_idx, guards } = &mut blocks[fi] {
        if guards.iter().any(|&g| g > 0) {
            fns[*fn_idx].lock_overlaps.push(LockEvent {
                line,
                detail: "second shard guard bound while one is already live".to_string(),
            });
        }
        if let Some(last) = guards.last_mut() {
            *last += 1;
        }
    }
}

/// Flushes one statement's durability events into the fn.
fn settle_statement(f: &mut FnDef, stmt_io: &mut Vec<IoEvent>) {
    f.io_events.append(stmt_io);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/lib.rs", &scan(src))
    }

    #[test]
    fn fn_signatures_and_impls() {
        let src = "\
impl Engine<W> {
    pub fn run_events(&mut self, budget: u64) -> u64 { budget }
}
impl Clone for Widget {
    fn clone(&self) -> Widget { Widget }
}
fn free(a: u64, b: SimTime) {}
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 3);
        let run = &p.fns[0];
        assert_eq!(run.name, "run_events");
        assert_eq!(run.self_ty.as_deref(), Some("Engine"));
        assert!(run.has_self && run.is_pub);
        assert_eq!(run.arity, 1);
        let clone = &p.fns[1];
        assert_eq!(clone.trait_ty.as_deref(), Some("Clone"));
        assert_eq!(clone.self_ty.as_deref(), Some("Widget"));
        let free = &p.fns[2];
        assert_eq!(free.self_ty, None);
        assert_eq!(free.param_names, vec!["a", "b"]);
        assert_eq!(free.param_types[1], "SimTime");
    }

    #[test]
    fn calls_paths_methods_arity() {
        let src = "\
fn caller(x: u64) {
    helper(x, 2);
    fs::rename(a, b);
    self.step();
    obj.observe(1, 2, 3);
    Engine::new(w);
    vec![1, 2];
}
";
        let p = parse(src);
        let calls = &p.fns[0].calls;
        let by_name = |n: &str| calls.iter().find(|c| c.name == n).expect(n);
        assert_eq!(by_name("helper").arity, 2);
        assert_eq!(by_name("rename").path, vec!["fs", "rename"]);
        assert!(by_name("step").method && by_name("step").recv_self);
        assert_eq!(by_name("observe").arity, 3);
        assert!(!by_name("observe").recv_self);
        assert_eq!(by_name("new").path, vec!["Engine", "new"]);
        assert!(by_name("vec").is_macro);
    }

    #[test]
    fn multiline_call_arity_counts_top_level_commas() {
        let src = "\
fn f() {
    builder(
        one(a, b),
        [x, y, z],
        |acc, item| acc,
    );
}
";
        let p = parse(src);
        let c = p.fns[0].calls.iter().find(|c| c.name == "builder").unwrap();
        assert_eq!(c.arity, 3);
    }

    #[test]
    fn catch_unwind_marks_contained_calls() {
        let src = "\
fn f() {
    let r = std::panic::catch_unwind(|| risky(1));
    after(r);
}
";
        let p = parse(src);
        let risky = p.fns[0].calls.iter().find(|c| c.name == "risky").unwrap();
        let after = p.fns[0].calls.iter().find(|c| c.name == "after").unwrap();
        assert!(risky.caught);
        assert!(!after.caught);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "\
fn lib_fn() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {}
}
";
        let p = parse(src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn use_trees_bind_leaves() {
        let src = "use std::fs::{self, File, OpenOptions as OO};\nuse treadmill_core::run_sweep;\n";
        let p = parse(src);
        let find = |a: &str| p.imports.iter().find(|i| i.alias == a);
        assert!(find("File").is_some());
        assert_eq!(find("OO").unwrap().path.last().unwrap(), "OpenOptions");
        assert_eq!(
            find("run_sweep").unwrap().path,
            vec!["treadmill_core", "run_sweep"]
        );
        assert!(find("fs").is_some(), "use a::b::{{self}} binds the module");
    }

    #[test]
    fn lock_overlap_detected_and_sequential_locks_pass() {
        let overlapping = "\
fn bad(shards: &[Mutex<u32>]) {
    let a = shards[0].lock();
    let b = shards[1].lock();
}
";
        let p = parse(overlapping);
        assert_eq!(p.fns[0].lock_overlaps.len(), 1, "{:?}", p.fns[0].lock_overlaps);
        assert_eq!(p.fns[0].lock_overlaps[0].line, 3);

        let sequential = "\
fn good(shards: &[Mutex<u32>]) {
    for s in shards {
        let g = s.lock();
    }
    for s in shards {
        let g = s.lock();
    }
}
";
        let p = parse(sequential);
        assert!(p.fns[0].lock_overlaps.is_empty(), "{:?}", p.fns[0].lock_overlaps);
    }

    #[test]
    fn temp_lock_while_guard_live_is_overlap() {
        let src = "\
fn bad(shards: &[Mutex<u32>]) {
    let a = lock(&shards[0]);
    touch(lock(&shards[1]));
}
";
        let p = parse(src);
        assert_eq!(p.fns[0].lock_overlaps.len(), 1);
    }

    #[test]
    fn io_events_in_order() {
        let src = "\
fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut file = File::create(&tmp)?;
    file.write_all(contents)?;
    file.sync_all()?;
    fs::rename(&tmp, path)?;
    Ok(())
}
";
        let p = parse(src);
        let kinds: Vec<IoKind> = p.fns[0].io_events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![IoKind::CreateFile, IoKind::Write, IoKind::Sync, IoKind::Rename]
        );
    }

    #[test]
    fn append_open_requires_openoptions() {
        let src = "\
fn journal(&self) {
    let mut f = OpenOptions::new().create(true).append(true).open(&p);
    f.write_all(b\"x\");
}
fn vec_append(&self, other: &mut Vec<u32>) {
    self.items.append(other);
}
";
        let p = parse(src);
        assert!(p.fns[0].io_events.iter().any(|e| e.kind == IoKind::AppendOpen));
        assert!(p.fns[1].io_events.is_empty());
    }

    #[test]
    fn tainted_arith_on_time_params() {
        let src = "\
fn bump(deadline_ns: u64, delta_ns: u64) -> u64 {
    deadline_ns + delta_ns
}
fn safe(deadline_ns: u64, delta_ns: u64) -> u64 {
    deadline_ns.saturating_add(delta_ns)
}
fn typed(at: SimTime, delta_nanos: SimDuration) -> SimTime {
    at
}
";
        let p = parse(src);
        assert_eq!(p.fns[0].arith_sites.len(), 2, "{:?}", p.fns[0].arith_sites);
        assert!(p.fns[1].arith_sites.is_empty());
        assert!(p.fns[2].arith_sites.is_empty());
    }

    #[test]
    fn deref_is_not_arithmetic() {
        let src = "\
fn f(seq: u64, p: &u64) -> u64 {
    let x = *p;
    x
}
";
        let p = parse(src);
        assert!(p.fns[0].arith_sites.is_empty());
    }

    #[test]
    fn fn_at_maps_lines_to_innermost() {
        let src = "\
fn outer() {
    fn inner() {
        work();
    }
    other();
}
";
        let p = parse(src);
        let inner = p.fn_at(3).map(|i| p.fns[i].name.clone());
        let outer = p.fn_at(5).map(|i| p.fns[i].name.clone());
        assert_eq!(inner.as_deref(), Some("inner"));
        assert_eq!(outer.as_deref(), Some("outer"));
    }

    #[test]
    fn mutex_vec_detection() {
        let p = parse("struct S { shards: Vec<Mutex<Engine>> }\n");
        assert_eq!(p.mutex_vec_lines, vec![1]);
    }
}
