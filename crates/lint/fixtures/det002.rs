// Fixture for DET002: wall-clock reads in simulated code.
use std::time::Instant;

fn positive_instant() -> Instant {
    Instant::now()
}

fn positive_system_time() -> u64 {
    let _t = std::time::SystemTime::now();
    0
}

fn suppressed_instant() -> Instant {
    // tml-lint: allow(DET002, fixture: harness timing that never feeds simulated state)
    Instant::now()
}

fn negative_sim_clock(now: u64) -> u64 {
    // Simulated time threaded as a value is the sanctioned pattern.
    now + 17
}

fn negative_in_string() -> &'static str {
    "Instant::now() and SystemTime in a string must not fire"
}
