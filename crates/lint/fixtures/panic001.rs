// Fixture for PANIC001: panics in non-test library code.
fn positive_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn positive_expect(x: Option<u32>) -> u32 {
    x.expect("fixture invariant")
}

fn positive_panic(flag: bool) {
    if flag {
        panic!("fixture abort");
    }
}

fn suppressed_unwrap(x: Option<u32>) -> u32 {
    // tml-lint: allow(PANIC001, fixture: checked invariant documented at the call site)
    x.unwrap()
}

fn negative_unwrap_or(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

fn negative_unwrap_or_default(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_test_code_may_unwrap() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let y: Result<u32, ()> = Ok(2);
        y.expect("tests are exempt");
    }
}
