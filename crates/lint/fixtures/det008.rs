// Fixture for DET008: overlapping shard-mutex guards.
use std::sync::Mutex;

pub struct Pool {
    shards: Vec<Mutex<u64>>,
}

impl Pool {
    fn positive_overlap(&self) {
        let first = self.shards[0].lock();
        let second = self.shards[1].lock();
        let _ = (first, second);
    }

    fn suppressed_overlap(&self) {
        let outer = self.shards[2].lock();
        // tml-lint: allow(DET008, fixture: indices 2 and 3 are disjoint by construction)
        let inner = self.shards[3].lock();
        let _ = (outer, inner);
    }

    fn negative_sequential(&self) {
        for shard in &self.shards {
            let guard = shard.lock();
            let _ = guard;
        }
        for shard in &self.shards {
            let guard = shard.lock();
            let _ = guard;
        }
    }
}
