// Fixture for NUM001: narrowing casts on sim-time/queue-depth values.
fn positive_time_cast(t_nanos: u64) -> u32 {
    t_nanos as u32
}

fn positive_depth_cast(queue_depth: usize) -> u16 {
    queue_depth as u16
}

fn suppressed_depth(depth: usize) -> u8 {
    // tml-lint: allow(NUM001, fixture: depth bounded by config at 255)
    depth as u8
}

fn negative_widening(t_nanos: u32) -> u64 {
    u64::from(t_nanos)
}

fn negative_unrelated_cast(core_index: usize) -> u8 {
    // Narrowing, but not a sim-time/queue-depth quantity.
    core_index as u8
}

fn negative_try_from(queue_depth: usize) -> Option<u16> {
    u16::try_from(queue_depth).ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_tests_exempt() {
        let t_nanos: u64 = 5;
        assert_eq!(t_nanos as u32, 5);
    }
}
