// Fixture for DUR001: fsync-before-publish discipline.
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

fn positive_rename_unsynced(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    let mut f = File::create(tmp)?;
    f.write_all(b"payload")?;
    fs::rename(tmp, dst)?;
    Ok(())
}

fn suppressed_scratch(p: &Path) -> std::io::Result<()> {
    let mut f = File::create(p)?;
    // tml-lint: allow(DUR001, fixture: scratch file regenerated on every run)
    f.write_all(b"scratch")?;
    Ok(())
}

fn negative_synced_publish(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    let mut f = File::create(tmp)?;
    f.write_all(b"payload")?;
    f.sync_all()?;
    fs::rename(tmp, dst)?;
    Ok(())
}
