// Fixture for DET007: unordered cross-thread result collection.
type Shared = std::sync::Mutex<Vec<u64>>;

fn positive_push(out: &Shared, v: u64) {
    out.lock().unwrap().push(v);
}

// tml-lint: allow(DET007, fixture: slots pre-sized and index-assigned by job id)
fn suppressed_decl(n: usize) -> std::sync::Mutex<Vec<u64>> {
    std::sync::Mutex::new(vec![0; n])
}

fn negative_vec_of_mutexes(n: usize) -> Vec<std::sync::Mutex<u64>> {
    (0..n).map(|_| std::sync::Mutex::new(0)).collect()
}

fn negative_lock_then_slot_assign(out: &Shared, i: usize, v: u64) {
    if let Ok(mut slots) = out.lock() {
        slots[i] = v;
    }
}
