// Fixture for DET003: unseeded RNG.
fn positive_thread_rng() {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
}

fn positive_from_entropy() {
    let rng = SmallRng::from_entropy();
    let _ = rng;
}

fn positive_os_rng() {
    let mut rng = rand::rngs::OsRng;
    let _ = &mut rng;
}

fn suppressed_entropy() {
    // tml-lint: allow(DET003, fixture: entropy deliberately outside the replayed region)
    let rng = SmallRng::from_entropy();
    let _ = rng;
}

fn negative_seeded(seed: u64) {
    let rng = SmallRng::seed_from_u64(seed);
    let _ = rng;
}

fn negative_derived(parent: &mut SmallRng) {
    // from_rng on a seeded parent stream is deterministic and fine.
    let child = SmallRng::from_rng(parent);
    let _ = child;
}
