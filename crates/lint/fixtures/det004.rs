// Fixture for DET004: float ordering hazards.
fn positive_sort_comparator(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn positive_bare_comparator(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

fn positive_float_key() {
    let m: BTreeMap<f64, u32> = BTreeMap::new();
    let _ = m;
}

fn suppressed_sort(v: &mut [f64]) {
    // tml-lint: allow(DET004, fixture: inputs proven NaN-free by construction upstream)
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn negative_total_cmp(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

fn negative_int_sort(v: &mut [u64]) {
    v.sort_by(|a, b| a.cmp(b));
}

fn negative_partial_cmp_handled(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}
