// Fixture for PANIC002 (driver half): the service executor calls into
// the core fixture, once bare and once contained.
pub fn executor() {
    run_job();
    audited_job();
}

pub fn safe_executor() {
    let _ = std::panic::catch_unwind(|| contained_job());
}
