// Fixture for PANIC002 (library half): panic sites whose containing
// functions the service fixture reaches.
pub fn run_job() {
    boom();
}

pub fn contained_job() {
    contained_boom();
}

pub fn audited_job() {
    audited_boom();
}

fn boom() {
    inner().unwrap();
}

fn contained_boom() {
    inner().unwrap();
}

fn audited_boom() {
    // tml-lint: allow(PANIC002, fixture: documented invariant abort audited at the job boundary)
    inner().expect("invariant");
}

fn inner() -> Option<u32> {
    None
}
