// Fixture for NUM002: unchecked arithmetic on raw time/seq parameters.

fn positive_advance(now_ns: u64, delta_ns: u64) -> u64 {
    now_ns + delta_ns
}

fn positive_scale(base_nanos: u64) -> u64 {
    base_nanos * 3
}

fn suppressed_wrap(tick_seq: u64) -> u64 {
    // tml-lint: allow(NUM002, fixture: sequence numbers wrap modularly by design)
    tick_seq + 1
}

fn negative_checked(now_ns: u64, delta_ns: u64) -> Option<u64> {
    now_ns.checked_add(delta_ns)
}

fn negative_untainted(count: u64) -> u64 {
    count + 1
}
