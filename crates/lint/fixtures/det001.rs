// Fixture for DET001: hash collections in deterministic crates.
// Deliberate violations — this directory is excluded from workspace
// scans and from compilation; only the fixture tests read it.
use std::collections::HashMap;
use std::collections::BTreeMap;

fn positive_construction() {
    let m: HashMap<u32, u32> = HashMap::new();
    drop(m);
}

fn negative_ordered() {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    drop(m);
}

fn suppressed_set(bits: u8) -> usize {
    // tml-lint: allow(DET001, fixture: keyed membership only; order never escapes)
    let s: std::collections::HashSet<u8> = [bits].into_iter().collect();
    s.len()
}

fn negative_in_string() -> &'static str {
    "HashMap and HashSet in a string literal must not fire"
}

fn negative_identifier_boundary() {
    // Identifier *containing* the pattern must not fire.
    let my_hash_map_like = 0;
    let _ = my_hash_map_like;
}
