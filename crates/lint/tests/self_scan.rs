//! Workspace self-scan: the repository itself must be clean.
//!
//! This is the same gate CI runs (`tml-lint --check`): any unsuppressed
//! finding, malformed suppression, or baseline ratchet mismatch
//! anywhere in the workspace fails this test. It is what makes
//! nondeterminism a merge blocker instead of a golden-test postmortem.

use std::path::Path;

use treadmill_lint::{analyze_workspace, baseline};

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is checked in at the workspace root");
    let baseline = baseline::parse(&baseline_text).expect("baseline parses");

    let analysis = analyze_workspace(&root, &baseline).expect("scan succeeds");

    assert!(
        analysis.files_scanned > 100,
        "suspiciously few files scanned ({}) — walker broken?",
        analysis.files_scanned
    );
    assert!(
        analysis.failures.is_empty(),
        "unsuppressed findings:\n{}",
        analysis
            .failures
            .iter()
            .map(|f| format!("  {} {}:{} — {}", f.rule, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        analysis.ratchet_errors.is_empty(),
        "baseline ratchet violations:\n  {}",
        analysis.ratchet_errors.join("\n  ")
    );

    // The semantic rules ship with zero grandfathered debt: not even a
    // budgeted finding may exist for them. (Failures were asserted
    // empty above, so scanning the budgeted list completes the pin.)
    for rule in ["DET008", "DUR001", "PANIC002", "NUM002"] {
        let hits: Vec<String> = analysis
            .budgeted
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| format!("{}:{}", f.file, f.line))
            .collect();
        assert!(hits.is_empty(), "budgeted {rule} debt crept in: {hits:?}");
    }

    // The workspace pass produced a reachability model of plausible
    // size — the whole-workspace graph, not a stub.
    let sem = analysis.semantics.as_ref().expect("semantics computed");
    assert!(sem.graph.fn_count() > 1000, "graph too small: {}", sem.graph.fn_count());
    assert!(sem.entry_count > 10, "too few named entry points: {}", sem.entry_count);
    assert!(sem.svc_root_count > 10, "too few service roots: {}", sem.svc_root_count);
}
