//! Fixture tests for the semantic (workspace-level) rules: each new
//! rule must flag its deliberate positives at the exact lines, stay
//! silent on the negatives, and honor a justified suppression — and
//! the reachability gate for the determinism rules must keep/drop
//! lexical findings by proof.

use std::collections::BTreeMap;

use treadmill_lint::baseline::Baseline;
use treadmill_lint::{analyze_files, Analysis};

/// Runs `analyze_files` over in-memory fixtures with an empty baseline
/// (so every kept finding is a failure) and the given crate deps.
fn analyze(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> Analysis {
    let files = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    let deps: BTreeMap<String, Vec<String>> = deps
        .iter()
        .map(|(k, v)| (k.to_string(), v.iter().map(|s| s.to_string()).collect()))
        .collect();
    analyze_files(files, &deps, &Baseline::default())
}

fn lines_for(analysis: &Analysis, rule: &str, file: &str) -> Vec<usize> {
    analysis
        .failures
        .iter()
        .chain(&analysis.budgeted)
        .filter(|f| f.rule == rule && f.file == file)
        .map(|f| f.line)
        .collect()
}

#[test]
fn det008_shard_lock_overlap() {
    let src = include_str!("../fixtures/det008.rs");
    let path = "crates/cluster/src/fixture.rs";
    let a = analyze(&[(path, src)], &[("treadmill-cluster", &[])]);
    // The overlapping pair in positive_overlap; the suppressed pair and
    // the sequential loops stay silent.
    assert_eq!(lines_for(&a, "DET008", path), vec![11]);
    assert!(a.suppressed >= 1, "suppressed allow not counted");

    // The same source outside the deterministic crates is not DET008's
    // business (scheduler-ordered locking is allowed there).
    let path = "crates/stats/src/fixture.rs";
    let a = analyze(&[(path, src)], &[("treadmill-stats", &[])]);
    assert!(lines_for(&a, "DET008", path).is_empty());
}

#[test]
fn dur001_fsync_before_publish() {
    let src = include_str!("../fixtures/dur001.rs");
    let path = "crates/server/src/fixture.rs";
    let a = analyze(&[(path, src)], &[("treadmill-server", &[])]);
    // Line 9: rename publishes a never-synced file. Line 8: the handle
    // opened in positive_rename_unsynced is written but never fsynced.
    assert_eq!(lines_for(&a, "DUR001", path), vec![8, 9]);
    assert!(a.suppressed >= 1, "suppressed allow not counted");

    // Outside the journal/artifact scope the same pattern is silent.
    let path = "crates/stats/src/fixture.rs";
    let a = analyze(&[(path, src)], &[("treadmill-stats", &[])]);
    assert!(lines_for(&a, "DUR001", path).is_empty());
}

#[test]
fn num002_tainted_integer_arithmetic() {
    let src = include_str!("../fixtures/num002.rs");
    let path = "crates/sim-core/src/fixture.rs";
    let a = analyze(&[(path, src)], &[("treadmill-sim-core", &[])]);
    assert_eq!(lines_for(&a, "NUM002", path), vec![4, 8]);
    assert!(a.suppressed >= 1, "suppressed allow not counted");
}

#[test]
fn panic002_service_reachability() {
    let server = include_str!("../fixtures/panic002_server.rs");
    let core = include_str!("../fixtures/panic002_core.rs");
    let server_path = "crates/server/src/fixture.rs";
    let core_path = "crates/core/src/fixture.rs";
    let a = analyze(
        &[(server_path, server), (core_path, core)],
        &[("treadmill-server", &["treadmill-core"]), ("treadmill-core", &[])],
    );
    // boom's unwrap (line 16) is service-reachable through executor →
    // run_job. contained_boom's unwrap is only reachable through
    // catch_unwind; audited_boom's expect carries a justified allow.
    assert_eq!(lines_for(&a, "PANIC002", core_path), vec![16]);
    assert!(a.suppressed >= 1, "suppressed allow not counted");

    // The explain chain names the concrete path.
    let sem = a.semantics.as_ref().expect("workspace pass ran");
    let explain = sem.explain("PANIC002", core_path, 16);
    assert!(explain.contains("reachable from the service"), "{explain}");
    assert!(explain.contains("fn executor"), "{explain}");
    let silent = sem.explain("PANIC002", core_path, 20);
    assert!(silent.contains("NOT service-reachable"), "{silent}");
}

#[test]
fn det_rules_gated_by_reachability_outside_det_crates() {
    // Two stats helpers use HashMap: one is called from a deterministic
    // entry point (`run_sweep` lives in core, a det crate), the other is
    // only called from a bench binary. The first must fire, the second
    // is proven unreachable and dropped.
    let core = "pub fn run_sweep() { treadmill_stats::reached(); }\n";
    let stats = "\
use std::collections::HashMap;
pub fn reached() {
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m;
}
pub fn unreached() {
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m;
}
";
    let a = analyze(
        &[
            ("crates/core/src/sweep_driver.rs", core),
            ("crates/stats/src/maps.rs", stats),
        ],
        &[("treadmill-core", &["treadmill-stats"]), ("treadmill-stats", &[])],
    );
    let lines = lines_for(&a, "DET001", "crates/stats/src/maps.rs");
    assert_eq!(lines, vec![3], "only the det-reachable HashMap fires: {lines:?}");

    // The proof is printable in both directions.
    let sem = a.semantics.as_ref().expect("workspace pass ran");
    let fires = sem.explain("DET001", "crates/stats/src/maps.rs", 3);
    assert!(fires.contains("reachable from a deterministic entry point"), "{fires}");
    let proof = sem.explain("DET001", "crates/stats/src/maps.rs", 7);
    assert!(proof.contains("proven unreachable"), "{proof}");
}
