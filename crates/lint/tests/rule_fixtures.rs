//! Per-rule fixture tests: every rule must flag its deliberate
//! positives at the exact lines, stay silent on the negatives, and
//! honor a justified suppression.

use treadmill_lint::analyze_source;

/// Path that puts a fixture in scope for the determinism rules.
const DET_PATH: &str = "crates/cluster/src/fixture.rs";
/// Path outside the deterministic-crate set.
const NON_DET_PATH: &str = "crates/stats/src/fixture.rs";

fn lines_for(rule: &str, path: &str, src: &str) -> Vec<usize> {
    analyze_source(path, src)
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

fn assert_fixture(rule: &str, path: &str, src: &str, expect_lines: &[usize]) {
    let report = analyze_source(path, src);
    let got: Vec<usize> = report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect();
    assert_eq!(got, expect_lines, "{rule} positives in {path}");
    // Rules compose: a fixture line may legitimately trip other rules
    // too (e.g. DET004's `.unwrap()` comparators also count toward
    // PANIC001), so only the target rule's findings are pinned here.
    assert_eq!(report.suppressed, 1, "{rule} suppressed count");
}

#[test]
fn det001_hash_collections() {
    let src = include_str!("../fixtures/det001.rs");
    assert_fixture("DET001", DET_PATH, src, &[4, 8]);
    // The lexical pass fires everywhere; outside the deterministic
    // crates the workspace analysis keeps a hit only when the site is
    // det-reachable (see sem_fixtures.rs for the gating).
    assert_eq!(lines_for("DET001", NON_DET_PATH, src), vec![4, 8]);
}

#[test]
fn det002_wall_clock() {
    let src = include_str!("../fixtures/det002.rs");
    assert_fixture("DET002", DET_PATH, src, &[5, 9]);
    // DET002 applies outside the deterministic set too.
    assert_eq!(lines_for("DET002", NON_DET_PATH, src), vec![5, 9]);
}

#[test]
fn det003_unseeded_rng() {
    let src = include_str!("../fixtures/det003.rs");
    assert_fixture("DET003", DET_PATH, src, &[3, 8, 13]);
}

#[test]
fn det004_float_ordering() {
    let src = include_str!("../fixtures/det004.rs");
    assert_fixture("DET004", DET_PATH, src, &[3, 7, 11]);
}

#[test]
fn panic001_library_panics() {
    let src = include_str!("../fixtures/panic001.rs");
    assert_fixture("PANIC001", NON_DET_PATH, src, &[3, 7, 12]);
    // Bins and integration tests are not library code.
    assert!(lines_for("PANIC001", "crates/stats/src/bin/tool.rs", src).is_empty());
    assert!(lines_for("PANIC001", "tests/integration.rs", src).is_empty());
}

#[test]
fn num001_narrowing_casts() {
    let src = include_str!("../fixtures/num001.rs");
    assert_fixture("NUM001", DET_PATH, src, &[3, 7]);
    // NUM001 is scoped to the deterministic crates.
    assert!(lines_for("NUM001", NON_DET_PATH, src).is_empty());
}

#[test]
fn det007_unordered_collection() {
    let src = include_str!("../fixtures/det007.rs");
    assert_fixture("DET007", DET_PATH, src, &[2, 5]);
    // DET007 is scoped to the deterministic crates: elsewhere a shared
    // results vector is allowed to be scheduler-ordered.
    assert!(lines_for("DET007", NON_DET_PATH, src).is_empty());
}
