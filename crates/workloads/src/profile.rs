//! The workload trait and per-request resource profiles.

use rand::RngCore;
use std::fmt;

/// Broad classification of an operation, used by reports and by the
/// server model's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// A read (e.g. Memcached GET): small request, value-sized response.
    Read,
    /// A write (e.g. Memcached SET): value-sized request, small response.
    Write,
    /// A routing/forwarding operation (mcrouter).
    Route,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpClass::Read => write!(f, "read"),
            OpClass::Write => write!(f, "write"),
            OpClass::Route => write!(f, "route"),
        }
    }
}

/// The simulator-facing resource demand of one request.
///
/// All the latency-relevant behaviour of a service process is captured
/// by four quantities: wire sizes in each direction, CPU work (which
/// scales with core frequency), and memory-bound work (which does *not*
/// scale with frequency but is inflated by remote-NUMA placement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestProfile {
    /// Operation class.
    pub class: OpClass,
    /// Bytes on the wire, client → server.
    pub request_bytes: u32,
    /// Bytes on the wire, server → client.
    pub response_bytes: u32,
    /// Frequency-scalable CPU work, in nanoseconds at the reference
    /// (base) frequency.
    pub cpu_ns: f64,
    /// Memory-bound work in nanoseconds; multiplied by the remote-access
    /// penalty when the connection's buffer lives on the other NUMA node.
    pub mem_ns: f64,
}

impl RequestProfile {
    /// Total service demand at base frequency with local memory, in
    /// nanoseconds.
    pub fn base_service_ns(&self) -> f64 {
        self.cpu_ns + self.mem_ns
    }
}

/// Closed-form moments of a workload's service-demand and wire-size
/// distributions — the input to the analytic fast-path estimator
/// (`treadmill_inference::analytic`), which needs second moments and a
/// CPU/memory split that [`Workload::mean_service_ns`] alone cannot
/// provide.
///
/// All quantities are at base frequency with local memory (the same
/// reference point as [`RequestProfile`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceMoments {
    /// Mean total service demand, ns. Implementations may compute this
    /// exactly even when `mean_service_ns()` is an approximation.
    pub mean_ns: f64,
    /// Squared coefficient of variation of total service demand,
    /// Var[S]/E[S]².
    pub cv2: f64,
    /// Fraction of the mean demand that is frequency-scalable CPU work
    /// (the remainder is memory-bound and NUMA-sensitive).
    pub cpu_fraction: f64,
    /// Mean request size on the wire, client → server, bytes.
    pub request_bytes: f64,
    /// Mean response size on the wire, server → client, bytes.
    pub response_bytes: f64,
    /// Log-scale sigma of the per-request multiplicative noise (0 when
    /// the workload draws none) — shapes the analytic tail quantiles.
    pub noise_sigma: f64,
    /// Fraction of requests on a slow path (0 when none).
    pub slow_fraction: f64,
    /// Service multiplier on the slow path (1 when none).
    pub slow_multiplier: f64,
}

/// A service workload: something that can generate request profiles.
///
/// Implementations should be cheap to sample (called once per simulated
/// request) and deterministic given the RNG. This is the "less than 200
/// lines of code" integration surface the paper advertises — see
/// [`crate::Memcached`] and [`crate::Mcrouter`].
pub trait Workload: fmt::Debug + Send + Sync {
    /// A short display name (e.g. `"memcached"`).
    fn name(&self) -> &str;

    /// Draws the resource profile of the next request.
    fn sample_request(&self, rng: &mut dyn RngCore) -> RequestProfile;

    /// Mean total service demand in nanoseconds at base frequency; used
    /// to translate a target utilisation into a request rate.
    fn mean_service_ns(&self) -> f64;

    /// Closed-form moments for the analytic estimator. The default is a
    /// conservative stand-in (exponential-like variability, even
    /// CPU/memory split, small messages); workloads with exact forms
    /// should override it.
    fn service_moments(&self) -> ServiceMoments {
        ServiceMoments {
            mean_ns: self.mean_service_ns(),
            cv2: 1.0,
            cpu_fraction: 0.5,
            request_bytes: 128.0,
            response_bytes: 256.0,
            noise_sigma: 0.0,
            slow_fraction: 0.0,
            slow_multiplier: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_display() {
        assert_eq!(OpClass::Read.to_string(), "read");
        assert_eq!(OpClass::Write.to_string(), "write");
        assert_eq!(OpClass::Route.to_string(), "route");
    }

    #[test]
    fn base_service_sums_components() {
        let p = RequestProfile {
            class: OpClass::Read,
            request_bytes: 64,
            response_bytes: 256,
            cpu_ns: 9_000.0,
            mem_ns: 3_000.0,
        };
        assert_eq!(p.base_service_ns(), 12_000.0);
    }
}
