//! Configurable size distributions for keys, values and payloads.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use treadmill_stats::distribution::{sample_lognormal, sample_pareto};

/// A distribution over byte sizes, configurable from JSON (the paper's
/// "request size distribution" knob, §III-A).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treadmill_workloads::SizeDistribution;
///
/// let dist: SizeDistribution =
///     serde_json::from_str(r#"{ "kind": "pareto", "minimum": 64, "shape": 1.5, "cap": 8192 }"#)?;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let size = dist.sample(&mut rng);
/// assert!((64..=8192).contains(&size));
/// # Ok::<(), serde_json::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "lowercase")]
pub enum SizeDistribution {
    /// Every draw returns the same size.
    Fixed {
        /// The constant size in bytes.
        bytes: u32,
    },
    /// Uniform over `[low, high]` inclusive.
    Uniform {
        /// Smallest size.
        low: u32,
        /// Largest size.
        high: u32,
    },
    /// Pareto (heavy-tailed) with a hard cap; matches the published
    /// Memcached value-size measurements (Atikoglu et al., SIGMETRICS'12).
    Pareto {
        /// Scale (minimum) in bytes.
        minimum: u32,
        /// Tail index; smaller is heavier.
        shape: f64,
        /// Hard upper bound in bytes.
        cap: u32,
    },
    /// Lognormal parameterised by the underlying normal, with a cap.
    Lognormal {
        /// Mean of ln(size).
        mu: f64,
        /// Std dev of ln(size).
        sigma: f64,
        /// Hard upper bound in bytes.
        cap: u32,
    },
    /// A discrete mixture of other distributions with proportional
    /// weights.
    Mixture {
        /// `(weight, distribution)` components; weights need not sum to 1.
        components: Vec<(f64, SizeDistribution)>,
    },
}

impl SizeDistribution {
    /// Draws one size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is malformed (e.g. empty mixture,
    /// uniform with `low > high`).
    // Heavy-tail draws saturate into the configured `cap` right after
    // the f64→u32 cast; truncation of the unbounded tail is the point.
    #[allow(clippy::cast_possible_truncation)]
    pub fn sample(&self, rng: &mut dyn RngCore) -> u32 {
        match self {
            SizeDistribution::Fixed { bytes } => *bytes,
            SizeDistribution::Uniform { low, high } => {
                assert!(low <= high, "uniform with low > high");
                rng.gen_range(*low..=*high)
            }
            SizeDistribution::Pareto { minimum, shape, cap } => {
                let draw = sample_pareto(rng, f64::from(*minimum), *shape);
                (draw as u32).min(*cap).max(*minimum)
            }
            SizeDistribution::Lognormal { mu, sigma, cap } => {
                let draw = sample_lognormal(rng, *mu, *sigma);
                (draw as u32).min(*cap).max(1)
            }
            SizeDistribution::Mixture { components } => {
                assert!(!components.is_empty(), "empty mixture");
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                assert!(total > 0.0, "mixture weights sum to zero");
                let mut pick = rng.gen_range(0.0..total);
                for (weight, dist) in components {
                    if pick < *weight {
                        return dist.sample(rng);
                    }
                    pick -= weight;
                }
                components[components.len() - 1].1.sample(rng)
            }
        }
    }

    /// The exact or approximate mean of the distribution, in bytes.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDistribution::Fixed { bytes } => f64::from(*bytes),
            SizeDistribution::Uniform { low, high } => {
                (f64::from(*low) + f64::from(*high)) / 2.0
            }
            SizeDistribution::Pareto { minimum, shape, cap } => {
                if *shape > 1.0 {
                    let uncapped = *shape * f64::from(*minimum) / (*shape - 1.0);
                    uncapped.min(f64::from(*cap))
                } else {
                    // Infinite-mean regime: the cap dominates; use a
                    // crude capped estimate.
                    (f64::from(*minimum) * f64::from(*cap)).sqrt()
                }
            }
            SizeDistribution::Lognormal { mu, sigma, cap } => {
                (mu + sigma * sigma / 2.0).exp().min(f64::from(*cap))
            }
            SizeDistribution::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                components
                    .iter()
                    .map(|(w, d)| w * d.mean())
                    .sum::<f64>()
                    / total
            }
        }
    }

    /// The exact or approximate second moment E[X²] of the distribution,
    /// in bytes². Exact for `Fixed`, discrete `Uniform`, capped `Pareto`
    /// (the analytic form of E[min(X, cap)²]) and `Mixture`; for
    /// `Lognormal` the uncapped moment is clipped at `cap²`.
    pub fn mean_square(&self) -> f64 {
        match self {
            SizeDistribution::Fixed { bytes } => {
                let b = f64::from(*bytes);
                b * b
            }
            SizeDistribution::Uniform { low, high } => {
                // Discrete uniform on [low, high]: E[X²] = Σx²/n via the
                // square-pyramidal closed form.
                let sum_sq = |n: f64| n * (n + 1.0) * (2.0 * n + 1.0) / 6.0;
                let (l, h) = (f64::from(*low), f64::from(*high));
                (sum_sq(h) - sum_sq(l - 1.0)) / (h - l + 1.0)
            }
            SizeDistribution::Pareto { minimum, shape, cap } => {
                // E[min(X, c)²] = ∫_m^c x² a m^a x^{-a-1} dx + c² (m/c)^a.
                let (m, c, a) = (f64::from(*minimum), f64::from(*cap), *shape);
                if c <= m {
                    return c * c;
                }
                let tail = c * c * (m / c).powf(a);
                let body = if (a - 2.0).abs() < 1e-9 {
                    // a = 2: the integral degenerates to a logarithm.
                    a * m.powf(a) * (c / m).ln()
                } else {
                    a * m.powf(a) / (2.0 - a) * (c.powf(2.0 - a) - m.powf(2.0 - a))
                };
                body + tail
            }
            SizeDistribution::Lognormal { mu, sigma, cap } => {
                let uncapped = (2.0 * mu + 2.0 * sigma * sigma).exp();
                uncapped.min(f64::from(*cap) * f64::from(*cap))
            }
            SizeDistribution::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                components
                    .iter()
                    .map(|(w, d)| w * d.mean_square())
                    .sum::<f64>()
                    / total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let d = SizeDistribution::Fixed { bytes: 100 };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 100);
        }
        assert_eq!(d.mean(), 100.0);
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let d = SizeDistribution::Uniform { low: 10, high: 20 };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((10..=20).contains(&s));
            sum += f64::from(s);
        }
        assert!((sum / f64::from(n) - 15.0).abs() < 0.1);
        assert_eq!(d.mean(), 15.0);
    }

    #[test]
    fn pareto_respects_cap_and_minimum() {
        let d = SizeDistribution::Pareto {
            minimum: 64,
            shape: 1.2,
            cap: 4096,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let s = d.sample(&mut rng);
            assert!((64..=4096).contains(&s));
        }
    }

    #[test]
    fn pareto_mean_formula() {
        let d = SizeDistribution::Pareto {
            minimum: 100,
            shape: 2.0,
            cap: 1_000_000,
        };
        // shape/(shape-1) * min = 200.
        assert_eq!(d.mean(), 200.0);
    }

    #[test]
    fn mixture_draws_from_all_components() {
        let d = SizeDistribution::Mixture {
            components: vec![
                (1.0, SizeDistribution::Fixed { bytes: 1 }),
                (1.0, SizeDistribution::Fixed { bytes: 1_000 }),
            ],
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let mut small = 0;
        let mut large = 0;
        for _ in 0..2_000 {
            match d.sample(&mut rng) {
                1 => small += 1,
                1_000 => large += 1,
                other => panic!("unexpected draw {other}"),
            }
        }
        assert!(small > 800 && large > 800, "small {small}, large {large}");
        assert!((d.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn mean_square_closed_forms() {
        assert_eq!(SizeDistribution::Fixed { bytes: 7 }.mean_square(), 49.0);
        // Discrete uniform on [1, 3]: (1 + 4 + 9)/3.
        let u = SizeDistribution::Uniform { low: 1, high: 3 };
        assert!((u.mean_square() - 14.0 / 3.0).abs() < 1e-9);
        // Mixture: weighted average of component second moments.
        let m = SizeDistribution::Mixture {
            components: vec![
                (1.0, SizeDistribution::Fixed { bytes: 2 }),
                (3.0, SizeDistribution::Fixed { bytes: 4 }),
            ],
        };
        assert!((m.mean_square() - (4.0 + 3.0 * 16.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn mean_square_matches_empirical_pareto() {
        let d = SizeDistribution::Pareto {
            minimum: 512,
            shape: 1.6,
            cap: 16_384,
        };
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 400_000;
        let sum_sq: f64 = (0..n)
            .map(|_| {
                let s = f64::from(d.sample(&mut rng));
                s * s
            })
            .sum();
        let empirical = sum_sq / f64::from(n);
        let declared = d.mean_square();
        assert!(
            (empirical / declared - 1.0).abs() < 0.1,
            "empirical {empirical} vs declared {declared}"
        );
    }

    #[test]
    fn json_round_trip() {
        let d = SizeDistribution::Mixture {
            components: vec![
                (0.9, SizeDistribution::Fixed { bytes: 64 }),
                (
                    0.1,
                    SizeDistribution::Pareto {
                        minimum: 128,
                        shape: 1.5,
                        cap: 8192,
                    },
                ),
            ],
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: SizeDistribution = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    #[should_panic(expected = "empty mixture")]
    fn empty_mixture_panics() {
        let d = SizeDistribution::Mixture { components: vec![] };
        let mut rng = SmallRng::seed_from_u64(5);
        d.sample(&mut rng);
    }
}
