//! The mcrouter workload model.
//!
//! mcrouter is "a configurable protocol router that turns individual
//! cache servers into massive-scale distributed systems" (§V-C). The
//! paper's Finding 8 explains its resource character: "a large fraction
//! of the computation mcrouter needs to do is to deserialize the request
//! structure from network packets, which is CPU-intensive and can easily
//! be accelerated by frequency up-scaling". We therefore model mcrouter
//! with a high CPU share (frequency-sensitive, so Turbo Boost matters
//! most) and a small memory-bound share, with per-byte deserialisation
//! cost.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use treadmill_stats::distribution::sample_lognormal;

use crate::profile::{OpClass, RequestProfile, Workload};
use crate::sizes::SizeDistribution;

/// A configurable mcrouter service model.
///
/// # Examples
///
/// ```
/// use treadmill_workloads::{Mcrouter, Workload};
///
/// let workload = Mcrouter::default();
/// assert_eq!(workload.name(), "mcrouter");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mcrouter {
    /// Routed message size distribution.
    pub message_size: SizeDistribution,
    /// Fixed CPU cost per routed request (deserialise + route lookup),
    /// ns at base frequency.
    pub base_cpu_ns: f64,
    /// Deserialisation CPU per message byte, ns.
    pub cpu_ns_per_byte: f64,
    /// Fixed memory-bound cost (route table, connection state), ns.
    pub base_mem_ns: f64,
    /// Log-scale sigma of multiplicative service-time noise.
    pub service_noise_sigma: f64,
    /// Fraction of requests hitting a slow path (route-map reloads,
    /// connection maintenance).
    pub slow_fraction: f64,
    /// Service-time multiplier on the slow path.
    pub slow_multiplier: f64,
}

impl Default for Mcrouter {
    fn default() -> Self {
        Mcrouter {
            message_size: SizeDistribution::Mixture {
                components: vec![
                    (0.7, SizeDistribution::Uniform { low: 64, high: 512 }),
                    (
                        0.3,
                        SizeDistribution::Pareto {
                            minimum: 512,
                            shape: 1.8,
                            cap: 8_192,
                        },
                    ),
                ],
            },
            base_cpu_ns: 8_000.0,
            cpu_ns_per_byte: 6.0,
            base_mem_ns: 1_200.0,
            service_noise_sigma: 0.40,
            slow_fraction: 0.01,
            slow_multiplier: 5.0,
        }
    }
}

impl Workload for Mcrouter {
    fn name(&self) -> &str {
        "mcrouter"
    }

    fn sample_request(&self, rng: &mut dyn RngCore) -> RequestProfile {
        let message = self.message_size.sample(rng);
        let mut noise = sample_lognormal(
            rng,
            -self.service_noise_sigma * self.service_noise_sigma / 2.0,
            self.service_noise_sigma,
        );
        {
            use rand::Rng;
            if rng.gen::<f64>() < self.slow_fraction {
                noise *= self.slow_multiplier;
            }
        }
        const OVERHEAD: u32 = 64;
        RequestProfile {
            class: OpClass::Route,
            request_bytes: OVERHEAD + message,
            response_bytes: OVERHEAD + message / 4,
            cpu_ns: (self.base_cpu_ns + self.cpu_ns_per_byte * f64::from(message)) * noise,
            mem_ns: self.base_mem_ns * noise,
        }
    }

    fn mean_service_ns(&self) -> f64 {
        let slow_scale = 1.0 + self.slow_fraction * (self.slow_multiplier - 1.0);
        (self.base_cpu_ns + self.cpu_ns_per_byte * self.message_size.mean()
            + self.base_mem_ns)
            * slow_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mcrouter_is_cpu_dominated() {
        let w = Mcrouter::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cpu = 0.0;
        let mut mem = 0.0;
        for _ in 0..10_000 {
            let p = w.sample_request(&mut rng);
            assert_eq!(p.class, OpClass::Route);
            cpu += p.cpu_ns;
            mem += p.mem_ns;
        }
        // Finding 8's mechanism requires the CPU share to dominate.
        assert!(cpu > mem * 5.0, "cpu {cpu} vs mem {mem}");
    }

    #[test]
    fn cpu_scales_with_message_size() {
        let small = Mcrouter {
            message_size: SizeDistribution::Fixed { bytes: 64 },
            service_noise_sigma: 1e-9,
            ..Default::default()
        };
        let big = Mcrouter {
            message_size: SizeDistribution::Fixed { bytes: 4_096 },
            service_noise_sigma: 1e-9,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let ps = small.sample_request(&mut rng);
        let pb = big.sample_request(&mut rng);
        assert!(pb.cpu_ns > ps.cpu_ns * 3.0);
    }

    #[test]
    fn empirical_mean_matches_declared() {
        let w = Mcrouter::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| w.sample_request(&mut rng).base_service_ns())
            .sum();
        let empirical = total / f64::from(n);
        let declared = w.mean_service_ns();
        assert!(
            (empirical / declared - 1.0).abs() < 0.15,
            "empirical {empirical} vs declared {declared}"
        );
    }

    #[test]
    fn responses_smaller_than_requests() {
        let w = Mcrouter::default();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let p = w.sample_request(&mut rng);
            assert!(p.response_bytes <= p.request_bytes);
        }
    }

    #[test]
    fn json_round_trip() {
        let w = Mcrouter::default();
        let json = serde_json::to_string(&w).unwrap();
        let back: Mcrouter = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
