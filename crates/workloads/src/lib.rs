//! Workload models for the Treadmill reproduction.
//!
//! The paper stresses two properties of Treadmill's workload handling
//! (§III-A): **generality** — "each integration takes less than 200
//! lines of code" — and **configurable workload characteristics** — "a
//! JSON formatted configuration file can be used to describe the
//! workload characteristics (e.g., request size distribution)".
//!
//! This crate provides both:
//!
//! * the [`Workload`] trait — the small surface a new service model must
//!   implement,
//! * [`Memcached`] and [`Mcrouter`] — the two Facebook workloads the
//!   paper evaluates,
//! * [`SizeDistribution`] — composable request/value size distributions,
//! * [`WorkloadSpec`] — the serde/JSON configuration layer that builds a
//!   workload from a config file.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use treadmill_workloads::{Memcached, Workload};
//!
//! let workload = Memcached::default();
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let profile = workload.sample_request(&mut rng);
//! assert!(profile.cpu_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
// Unit tests unwrap freely and assert exact float equality: bit-exact
// reproducibility is the property under test. Library code is held to
// the workspace lint table (see DESIGN.md, "Static analysis").
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)
)]
#![warn(missing_docs)]

mod mcrouter;
mod memcached;
mod popularity;
mod profile;
mod sizes;
mod spec;
mod synthetic;

pub use mcrouter::Mcrouter;
pub use popularity::ZipfSampler;
pub use memcached::{Memcached, MemcachedOp};
pub use profile::{OpClass, RequestProfile, ServiceMoments, Workload};
pub use sizes::SizeDistribution;
pub use spec::{SpecError, WorkloadSpec};
pub use synthetic::Synthetic;
