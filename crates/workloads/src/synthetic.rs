//! A fully deterministic synthetic workload for calibration and tests.
//!
//! Real workload models are stochastic; when calibrating the simulator
//! or writing tests that must isolate one mechanism, a fixed-profile
//! workload removes service-time noise entirely.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::profile::{OpClass, RequestProfile, Workload};

/// A workload where every request is identical.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treadmill_workloads::{Synthetic, Workload};
///
/// let workload = Synthetic::fixed(10_000.0, 2_000.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let a = workload.sample_request(&mut rng);
/// let b = workload.sample_request(&mut rng);
/// assert_eq!(a, b, "every request is identical");
/// assert_eq!(workload.mean_service_ns(), 12_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Synthetic {
    /// CPU work per request, ns at base frequency.
    pub cpu_ns: f64,
    /// Memory-bound work per request, ns.
    pub mem_ns: f64,
    /// Request size on the wire, bytes.
    pub request_bytes: u32,
    /// Response size on the wire, bytes.
    pub response_bytes: u32,
}

impl Synthetic {
    /// A fixed-profile workload with the given CPU and memory demand.
    ///
    /// # Panics
    ///
    /// Panics if both components are zero or either is negative.
    pub fn fixed(cpu_ns: f64, mem_ns: f64) -> Self {
        assert!(cpu_ns >= 0.0 && mem_ns >= 0.0, "negative service demand");
        assert!(cpu_ns + mem_ns > 0.0, "zero service demand");
        Synthetic {
            cpu_ns,
            mem_ns,
            request_bytes: 128,
            response_bytes: 128,
        }
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn sample_request(&self, _rng: &mut dyn RngCore) -> RequestProfile {
        RequestProfile {
            class: OpClass::Read,
            request_bytes: self.request_bytes,
            response_bytes: self.response_bytes,
            cpu_ns: self.cpu_ns,
            mem_ns: self.mem_ns,
        }
    }

    fn mean_service_ns(&self) -> f64 {
        self.cpu_ns + self.mem_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn profile_is_constant() {
        let w = Synthetic::fixed(5_000.0, 1_000.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = w.sample_request(&mut rng);
            assert_eq!(p.cpu_ns, 5_000.0);
            assert_eq!(p.mem_ns, 1_000.0);
        }
        assert_eq!(w.name(), "synthetic");
    }

    #[test]
    fn mean_service_is_the_sum_of_components() {
        assert_eq!(Synthetic::fixed(10_000.0, 0.0).mean_service_ns(), 10_000.0);
        assert_eq!(Synthetic::fixed(0.0, 3_000.0).mean_service_ns(), 3_000.0);
        // The full-pipeline constant-latency check lives in
        // tests/end_to_end.rs (the workloads crate cannot depend on the
        // cluster simulator).
    }

    #[test]
    #[should_panic(expected = "zero service demand")]
    fn zero_demand_rejected() {
        Synthetic::fixed(0.0, 0.0);
    }

    #[test]
    fn json_round_trip() {
        let w = Synthetic::fixed(1_000.0, 2_000.0);
        let json = serde_json::to_string(&w).unwrap();
        let back: Synthetic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
