//! The Memcached workload model.
//!
//! Memcached is "the pervasive key-value server" the paper evaluates
//! first (§III-C). Its latency-relevant behaviour: a GET/SET mix
//! (Facebook traffic is read-dominated; Atikoglu et al. report ≳90%
//! GETs on most pools), small keys, heavy-tailed values, a short
//! frequency-scalable protocol-parsing CPU component, and a memory-bound
//! hash-table + item-copy component that is sensitive to NUMA placement.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use treadmill_stats::distribution::sample_lognormal;

use crate::profile::{OpClass, RequestProfile, ServiceMoments, Workload};
use crate::sizes::SizeDistribution;

/// Memcached operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemcachedOp {
    /// Read an item.
    Get,
    /// Store an item.
    Set,
}

/// A configurable Memcached service model.
///
/// # Examples
///
/// ```
/// use treadmill_workloads::{Memcached, Workload};
///
/// let workload = Memcached::default();
/// assert_eq!(workload.name(), "memcached");
/// // Mean service demand is in the ~15µs range that makes 1M RPS ≈
/// // full utilisation of a 16-core server.
/// assert!(workload.mean_service_ns() > 8_000.0);
/// assert!(workload.mean_service_ns() < 25_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Memcached {
    /// Fraction of operations that are GETs.
    pub get_fraction: f64,
    /// Key size distribution.
    pub key_size: SizeDistribution,
    /// Value size distribution.
    pub value_size: SizeDistribution,
    /// Fixed CPU cost per request (protocol parse, hash, dispatch), ns
    /// at base frequency.
    pub base_cpu_ns: f64,
    /// Extra CPU per payload byte (copy in/out), ns.
    pub cpu_ns_per_byte: f64,
    /// Fixed memory-bound cost (hash-table walk, item header), ns.
    pub base_mem_ns: f64,
    /// Extra memory-bound cost per payload byte touched, ns.
    pub mem_ns_per_byte: f64,
    /// Log-scale sigma of the multiplicative service-time noise.
    pub service_noise_sigma: f64,
    /// Fraction of requests hitting a slow path (hash-table expansion,
    /// slab reassignment, LRU maintenance) — the heavy-tail component
    /// of real Memcached service times.
    pub slow_fraction: f64,
    /// Service-time multiplier on the slow path.
    pub slow_multiplier: f64,
    /// Fraction of GETs that hit the cache. Misses skip the value copy
    /// (cheap response) but still pay the lookup. Derive it from a key
    /// popularity distribution with [`Memcached::with_popularity`].
    pub hit_rate: f64,
}

impl Default for Memcached {
    /// The configuration used throughout the reproduction: 90% GETs,
    /// short keys, heavy-tailed values, ≈15µs mean total demand.
    fn default() -> Self {
        Memcached {
            get_fraction: 0.9,
            key_size: SizeDistribution::Uniform { low: 16, high: 40 },
            value_size: SizeDistribution::Mixture {
                components: vec![
                    (0.8, SizeDistribution::Uniform { low: 16, high: 512 }),
                    (
                        0.2,
                        SizeDistribution::Pareto {
                            minimum: 512,
                            shape: 1.6,
                            cap: 16_384,
                        },
                    ),
                ],
            },
            base_cpu_ns: 6_600.0,
            cpu_ns_per_byte: 2.0,
            base_mem_ns: 3_200.0,
            mem_ns_per_byte: 2.0,
            service_noise_sigma: 0.45,
            slow_fraction: 0.012,
            slow_multiplier: 6.0,
            hit_rate: 0.97,
        }
    }
}

impl Memcached {
    /// A read-heavy variant (99% GETs), matching Facebook's hottest
    /// pools.
    pub fn read_heavy() -> Self {
        Memcached {
            get_fraction: 0.99,
            ..Default::default()
        }
    }

    /// A write-heavy variant (50% SETs), the stress case for value
    /// copies.
    pub fn write_heavy() -> Self {
        Memcached {
            get_fraction: 0.5,
            ..Default::default()
        }
    }

    /// Derives the hit rate from a Zipf key-popularity model: `keys`
    /// distinct keys with skew `exponent`, of which the hottest
    /// `cached_keys` fit in memory.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or `exponent` is negative.
    pub fn with_popularity(keys: u64, exponent: f64, cached_keys: u64) -> Self {
        let zipf = crate::popularity::ZipfSampler::new(keys, exponent);
        Memcached {
            hit_rate: zipf.hit_rate(cached_keys),
            ..Default::default()
        }
    }

    fn sample_op(&self, rng: &mut dyn RngCore) -> MemcachedOp {
        use rand::Rng;
        if rng.gen::<f64>() < self.get_fraction {
            MemcachedOp::Get
        } else {
            MemcachedOp::Set
        }
    }
}

impl Workload for Memcached {
    fn name(&self) -> &str {
        "memcached"
    }

    fn sample_request(&self, rng: &mut dyn RngCore) -> RequestProfile {
        let op = self.sample_op(rng);
        let key = self.key_size.sample(rng);
        let value = self.value_size.sample(rng);
        let payload = f64::from(value);
        let mut noise = sample_lognormal(
            rng,
            -self.service_noise_sigma * self.service_noise_sigma / 2.0,
            self.service_noise_sigma,
        );
        {
            use rand::Rng;
            if rng.gen::<f64>() < self.slow_fraction {
                noise *= self.slow_multiplier;
            }
        }
        let cpu_ns = (self.base_cpu_ns + self.cpu_ns_per_byte * payload) * noise;
        let mem_ns = (self.base_mem_ns + self.mem_ns_per_byte * payload) * noise;
        // Protocol overhead per message ≈ 48 bytes of headers + framing.
        const OVERHEAD: u32 = 48;
        match op {
            MemcachedOp::Get => {
                use rand::Rng;
                let hit = rng.gen::<f64>() < self.hit_rate;
                if hit {
                    RequestProfile {
                        class: OpClass::Read,
                        request_bytes: OVERHEAD + key,
                        response_bytes: OVERHEAD + value,
                        cpu_ns,
                        mem_ns,
                    }
                } else {
                    // Miss: hash walk but no item copy, tiny response.
                    RequestProfile {
                        class: OpClass::Read,
                        request_bytes: OVERHEAD + key,
                        response_bytes: OVERHEAD,
                        cpu_ns: cpu_ns * 0.6,
                        mem_ns: mem_ns * 0.4,
                    }
                }
            }
            MemcachedOp::Set => RequestProfile {
                class: OpClass::Write,
                request_bytes: OVERHEAD + key + value,
                response_bytes: OVERHEAD,
                cpu_ns: cpu_ns * 1.15, // item allocation on the write path
                mem_ns: mem_ns * 1.25,
            },
        }
    }

    fn mean_service_ns(&self) -> f64 {
        let payload = self.value_size.mean();
        let cpu = self.base_cpu_ns + self.cpu_ns_per_byte * payload;
        let mem = self.base_mem_ns + self.mem_ns_per_byte * payload;
        let set_scale = 1.0 - self.get_fraction;
        let slow_scale = 1.0 + self.slow_fraction * (self.slow_multiplier - 1.0);
        let miss_discount =
            1.0 - self.get_fraction * (1.0 - self.hit_rate) * 0.5;
        (cpu + mem) * (1.0 + set_scale * 0.2) * slow_scale * miss_discount
    }

    /// Exact first and second moments of the sampled service demand.
    ///
    /// The demand is `T = (k_c·A_c + k_m·A_m)·N·S` with `A_c/A_m` affine
    /// in the value size `V`, class multipliers `(k_c, k_m)` over the
    /// hit/miss/set mix, lognormal noise `N` (`E[N]=1`,
    /// `E[N²]=e^{σ²}`), and the slow-path factor `S`. Class, `V`, `N`,
    /// `S` are drawn independently, so the moments factor — except that
    /// `A_c` and `A_m` share the same `V` draw, which the cross term
    /// below accounts for.
    fn service_moments(&self) -> ServiceMoments {
        let g = self.get_fraction;
        let h = self.hit_rate;
        let ev = self.value_size.mean();
        let ev2 = self.value_size.mean_square();
        let (bc, cc) = (self.base_cpu_ns, self.cpu_ns_per_byte);
        let (bm, cm) = (self.base_mem_ns, self.mem_ns_per_byte);

        let e_ac = bc + cc * ev;
        let e_am = bm + cm * ev;
        let e_ac2 = bc * bc + 2.0 * bc * cc * ev + cc * cc * ev2;
        let e_am2 = bm * bm + 2.0 * bm * cm * ev + cm * cm * ev2;
        let e_acam = bc * bm + (bc * cm + bm * cc) * ev + cc * cm * ev2;

        // (weight, cpu multiplier, mem multiplier): hit / miss / set,
        // mirroring `sample_request`.
        let classes = [
            (g * h, 1.0, 1.0),
            (g * (1.0 - h), 0.6, 0.4),
            (1.0 - g, 1.15, 1.25),
        ];
        let mut e_b = 0.0;
        let mut e_b2 = 0.0;
        let mut e_b_cpu = 0.0;
        for (w, kc, km) in classes {
            e_b += w * (kc * e_ac + km * e_am);
            e_b_cpu += w * kc * e_ac;
            e_b2 += w
                * (kc * kc * e_ac2
                    + 2.0 * kc * km * e_acam
                    + km * km * e_am2);
        }

        let sigma2 = self.service_noise_sigma * self.service_noise_sigma;
        let e_n2 = sigma2.exp();
        let e_s = 1.0 + self.slow_fraction * (self.slow_multiplier - 1.0);
        let e_s2 = 1.0
            + self.slow_fraction * (self.slow_multiplier * self.slow_multiplier - 1.0);

        let mean = e_b * e_s;
        let second = e_b2 * e_n2 * e_s2;
        let cv2 = if mean > 0.0 { second / (mean * mean) - 1.0 } else { 0.0 };

        ServiceMoments {
            mean_ns: mean,
            cv2: cv2.max(0.0),
            cpu_fraction: if e_b > 0.0 { e_b_cpu / e_b } else { 0.5 },
            request_bytes: 48.0 + self.key_size.mean() + (1.0 - g) * ev,
            response_bytes: 48.0 + g * h * ev,
            noise_sigma: self.service_noise_sigma,
            slow_fraction: self.slow_fraction,
            slow_multiplier: self.slow_multiplier,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn get_set_mix_matches_fraction() {
        let w = Memcached::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let reads = (0..n)
            .filter(|_| w.sample_request(&mut rng).class == OpClass::Read)
            .count();
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01, "read fraction {frac}");
    }

    #[test]
    fn gets_have_value_sized_responses() {
        let w = Memcached::default();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let p = w.sample_request(&mut rng);
            match p.class {
                OpClass::Read => {
                    assert!(p.request_bytes < 150, "GET request {}", p.request_bytes);
                    // Hits carry the value; misses only the header.
                    assert!(p.response_bytes == 48 || p.response_bytes >= 48 + 16);
                }
                OpClass::Write => {
                    assert!(p.request_bytes > p.response_bytes);
                    assert_eq!(p.response_bytes, 48);
                }
                OpClass::Route => panic!("memcached never routes"),
            }
        }
    }

    #[test]
    fn empirical_mean_matches_declared_mean() {
        let w = Memcached::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| w.sample_request(&mut rng).base_service_ns())
            .sum();
        let empirical = total / f64::from(n);
        let declared = w.mean_service_ns();
        assert!(
            (empirical / declared - 1.0).abs() < 0.15,
            "empirical {empirical} vs declared {declared}"
        );
    }

    #[test]
    fn service_time_is_variable() {
        let w = Memcached::default();
        let mut rng = SmallRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| w.sample_request(&mut rng).base_service_ns())
            .collect();
        let stats: treadmill_stats::StreamingStats = samples.iter().copied().collect();
        let cv = stats.sample_stddev() / stats.mean();
        assert!(cv > 0.3, "coefficient of variation {cv} too low");
        assert!(cv < 2.0, "coefficient of variation {cv} implausibly high");
    }

    #[test]
    fn variants_shift_the_mix() {
        let mut rng = SmallRng::seed_from_u64(5);
        let heavy = Memcached::write_heavy();
        let writes = (0..10_000)
            .filter(|_| heavy.sample_request(&mut rng).class == OpClass::Write)
            .count();
        assert!((writes as f64 / 10_000.0 - 0.5).abs() < 0.02);
        assert!(Memcached::read_heavy().get_fraction > 0.98);
    }

    #[test]
    fn json_round_trip() {
        let w = Memcached::default();
        let json = serde_json::to_string(&w).unwrap();
        let back: Memcached = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn misses_are_cheap_and_small() {
        let all_miss = Memcached {
            hit_rate: 0.0,
            get_fraction: 1.0,
            ..Default::default()
        };
        let all_hit = Memcached {
            hit_rate: 1.0,
            get_fraction: 1.0,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let mut miss_mem = 0.0;
        let mut hit_mem = 0.0;
        for _ in 0..5_000 {
            let m = all_miss.sample_request(&mut rng);
            assert_eq!(m.response_bytes, 48, "miss carries no value");
            miss_mem += m.mem_ns;
            hit_mem += all_hit.sample_request(&mut rng).mem_ns;
        }
        assert!(miss_mem < hit_mem * 0.6, "misses must be cheaper");
    }

    #[test]
    fn moments_match_empirical_distribution() {
        let w = Memcached::default();
        let m = w.service_moments();
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let s = w.sample_request(&mut rng).base_service_ns();
            sum += s;
            sum_sq += s * s;
        }
        let mean = sum / f64::from(n);
        let second = sum_sq / f64::from(n);
        let cv2 = second / (mean * mean) - 1.0;
        assert!(
            (mean / m.mean_ns - 1.0).abs() < 0.05,
            "empirical mean {mean} vs closed form {}",
            m.mean_ns
        );
        // The second moment is tail-dominated (Pareto values + slow
        // path), so the sampling error bound is looser.
        assert!(
            (cv2 / m.cv2 - 1.0).abs() < 0.25,
            "empirical cv² {cv2} vs closed form {}",
            m.cv2
        );
        assert!(m.cpu_fraction > 0.5 && m.cpu_fraction < 0.8, "{}", m.cpu_fraction);
    }

    #[test]
    fn moments_wire_sizes_match_empirical() {
        let w = Memcached::default();
        let m = w.service_moments();
        let mut rng = SmallRng::seed_from_u64(12);
        let n = 100_000;
        let mut req = 0.0;
        let mut resp = 0.0;
        for _ in 0..n {
            let p = w.sample_request(&mut rng);
            req += f64::from(p.request_bytes);
            resp += f64::from(p.response_bytes);
        }
        assert!((req / f64::from(n) / m.request_bytes - 1.0).abs() < 0.05);
        assert!((resp / f64::from(n) / m.response_bytes - 1.0).abs() < 0.05);
    }

    #[test]
    fn popularity_derived_hit_rate() {
        // A tiny cache over a skewed key space still catches most
        // traffic; a huge cache catches ~all of it.
        let small = Memcached::with_popularity(1_000_000, 1.0, 10_000);
        let large = Memcached::with_popularity(1_000_000, 1.0, 1_000_000);
        assert!(small.hit_rate > 0.5 && small.hit_rate < 0.95, "{}", small.hit_rate);
        assert!(large.hit_rate > 0.99);
    }
}
