//! JSON workload configuration (the paper's §III-A "Configurable
//! workload": "a JSON formatted configuration file can be used to
//! describe the workload characteristics … and fed into Treadmill").

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::mcrouter::Mcrouter;
use crate::memcached::Memcached;
use crate::profile::Workload;

/// Errors from parsing a workload specification.
#[derive(Debug)]
pub enum SpecError {
    /// The JSON was syntactically or structurally invalid.
    Json(serde_json::Error),
    /// The configuration parsed but is semantically invalid.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid workload JSON: {e}"),
            SpecError::Invalid(msg) => write!(f, "invalid workload configuration: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Json(e) => Some(e),
            SpecError::Invalid(_) => None,
        }
    }
}

impl From<serde_json::Error> for SpecError {
    fn from(e: serde_json::Error) -> Self {
        SpecError::Json(e)
    }
}

/// A declarative workload description, loadable from JSON.
///
/// # Examples
///
/// ```
/// use treadmill_workloads::WorkloadSpec;
///
/// let spec = WorkloadSpec::from_json(
///     r#"{ "workload": "memcached", "config": { "get_fraction": 0.95 } }"#,
/// )?;
/// let workload = spec.build()?;
/// assert_eq!(workload.name(), "memcached");
/// # Ok::<(), treadmill_workloads::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which workload to build: `"memcached"` or `"mcrouter"`.
    pub workload: String,
    /// Workload-specific overrides, merged over the defaults.
    #[serde(default)]
    pub config: serde_json::Value,
}

impl WorkloadSpec {
    /// Parses a spec from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Json`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Builds the configured workload.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for unknown workload names and
    /// [`SpecError::Json`] for config fields that don't match the
    /// workload's schema.
    pub fn build(&self) -> Result<Arc<dyn Workload>, SpecError> {
        match self.workload.as_str() {
            "memcached" => {
                let w: Memcached = merge_over_default(&self.config, &Memcached::default())?;
                validate_fraction("get_fraction", w.get_fraction)?;
                Ok(Arc::new(w))
            }
            "mcrouter" => {
                let w: Mcrouter = merge_over_default(&self.config, &Mcrouter::default())?;
                Ok(Arc::new(w))
            }
            other => Err(SpecError::Invalid(format!(
                "unknown workload {other:?}; expected \"memcached\" or \"mcrouter\""
            ))),
        }
    }
}

fn merge_over_default<T>(overrides: &serde_json::Value, default: &T) -> Result<T, SpecError>
where
    T: Serialize + for<'de> Deserialize<'de>,
{
    let mut base = serde_json::to_value(default)?;
    if let (Some(base_map), Some(over_map)) = (base.as_object_mut(), overrides.as_object()) {
        for (k, v) in over_map {
            base_map.insert(k.clone(), v.clone());
        }
    } else if !overrides.is_null() {
        return Err(SpecError::Invalid(
            "workload config must be a JSON object".to_string(),
        ));
    }
    Ok(serde_json::from_value(base)?)
}

fn validate_fraction(name: &str, value: f64) -> Result<(), SpecError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(SpecError::Invalid(format!(
            "{name} must lie in [0, 1], got {value}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_default_memcached() {
        let spec = WorkloadSpec::from_json(r#"{ "workload": "memcached" }"#).unwrap();
        let w = spec.build().unwrap();
        assert_eq!(w.name(), "memcached");
    }

    #[test]
    fn builds_mcrouter_with_overrides() {
        let spec = WorkloadSpec::from_json(
            r#"{ "workload": "mcrouter", "config": { "base_cpu_ns": 12000.0 } }"#,
        )
        .unwrap();
        let w = spec.build().unwrap();
        assert_eq!(w.name(), "mcrouter");
        // Mean reflects the override: 12000 + per-byte + mem.
        assert!(w.mean_service_ns() > 12_000.0);
    }

    #[test]
    fn overrides_merge_over_defaults() {
        let spec = WorkloadSpec::from_json(
            r#"{ "workload": "memcached", "config": { "get_fraction": 0.5 } }"#,
        )
        .unwrap();
        let value = serde_json::to_value(&spec.config).unwrap();
        assert_eq!(value["get_fraction"], 0.5);
        let w = spec.build().unwrap();
        assert_eq!(w.name(), "memcached");
    }

    #[test]
    fn size_distribution_override() {
        let spec = WorkloadSpec::from_json(
            r#"{
                "workload": "memcached",
                "config": {
                    "value_size": { "kind": "fixed", "bytes": 100 }
                }
            }"#,
        )
        .unwrap();
        assert!(spec.build().is_ok());
    }

    #[test]
    fn unknown_workload_rejected() {
        let spec = WorkloadSpec::from_json(r#"{ "workload": "mysql" }"#).unwrap();
        let err = spec.build().unwrap_err();
        assert!(err.to_string().contains("mysql"));
    }

    #[test]
    fn invalid_fraction_rejected() {
        let spec = WorkloadSpec::from_json(
            r#"{ "workload": "memcached", "config": { "get_fraction": 1.5 } }"#,
        )
        .unwrap();
        assert!(matches!(spec.build(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            WorkloadSpec::from_json("{ nope"),
            Err(SpecError::Json(_))
        ));
    }

    #[test]
    fn non_object_config_rejected() {
        let spec = WorkloadSpec::from_json(
            r#"{ "workload": "memcached", "config": [1, 2, 3] }"#,
        )
        .unwrap();
        assert!(matches!(spec.build(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn error_display_is_informative() {
        let err = SpecError::Invalid("boom".to_string());
        assert!(err.to_string().contains("boom"));
    }
}
