//! Key-popularity modelling.
//!
//! Production key-value traffic is heavily skewed (Atikoglu et al.
//! report Zipf-like key popularity in Facebook's Memcached pools). The
//! [`ZipfSampler`] draws key *ranks* from a Zipf(s) distribution over a
//! finite key space, and provides the analytic hit rate of an LRU-like
//! cache that can hold the hottest `c` keys — which is how the
//! Memcached model derives its miss fraction from workload shape
//! instead of hard-coding it.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A Zipf(s) distribution over ranks `0..keys`, sampled by inverse CDF
/// with a precomputed cumulative table (exact, O(log n) per draw).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfSampler {
    keys: u64,
    exponent: f64,
    #[serde(skip, default)]
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `keys` keys with skew `exponent` (s = 0
    /// is uniform; Facebook pools are typically s ≈ 0.9–1.1).
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or the exponent is negative.
    pub fn new(keys: u64, exponent: f64) -> Self {
        assert!(keys > 0, "need at least one key");
        assert!(exponent >= 0.0, "negative Zipf exponent");
        let mut sampler = ZipfSampler {
            keys,
            exponent,
            cdf: Vec::new(),
        };
        sampler.build_cdf();
        sampler
    }

    // Table sizes are capped at 1e6 so the u64→usize casts cannot
    // truncate; `exponent != 1.0` is an exact sentinel (the harmonic
    // closed form divides by 1 - s), not a tolerance comparison.
    #[allow(clippy::cast_possible_truncation, clippy::float_cmp)]
    fn build_cdf(&mut self) {
        // Cap the table: beyond ~1M keys the tail contributes uniformly
        // enough that we bucket it.
        let table = self.keys.min(1_000_000) as usize;
        let mut cdf = Vec::with_capacity(table);
        let mut total = 0.0;
        for rank in 0..table {
            total += 1.0 / ((rank + 1) as f64).powf(self.exponent);
            cdf.push(total);
        }
        // Remaining mass for keys beyond the table (approximated by the
        // integral of x^-s).
        if self.keys as usize > table && self.exponent != 1.0 {
            let a = table as f64;
            let b = self.keys as f64;
            let tail = (b.powf(1.0 - self.exponent) - a.powf(1.0 - self.exponent))
                / (1.0 - self.exponent);
            total += tail.max(0.0);
        }
        for v in &mut cdf {
            *v /= total;
        }
        self.cdf = cdf;
    }

    /// Number of keys.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// The skew exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws a key rank (0 = hottest).
    pub fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        use rand::Rng;
        debug_assert!(!self.cdf.is_empty(), "sampler not initialised");
        let u: f64 = rng.gen::<f64>();
        let idx = self.cdf.partition_point(|&c| c < u);
        if idx < self.cdf.len() {
            idx as u64
        } else {
            // Tail bucket: uniform over the untabulated cold keys.
            let table = self.cdf.len() as u64;
            table + rng.gen_range(0..self.keys - table + 1).min(self.keys - table)
        }
    }

    /// The fraction of requests that hit the hottest `capacity` keys —
    /// the analytic hit rate of a cache holding exactly the head of the
    /// popularity distribution.
    // `capacity as usize` is immediately min-clamped to the table size.
    #[allow(clippy::cast_possible_truncation)]
    pub fn hit_rate(&self, capacity: u64) -> f64 {
        if capacity == 0 {
            return 0.0;
        }
        let idx = (capacity as usize).min(self.cdf.len());
        self.cdf[idx - 1].min(1.0)
    }

    /// Rebuilds internal tables after deserialisation (serde skips the
    /// CDF).
    pub fn ensure_initialized(&mut self) {
        if self.cdf.is_empty() {
            self.build_cdf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn hot_keys_dominate() {
        let zipf = ZipfSampler::new(100_000, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let hot = (0..n).filter(|_| zipf.sample(&mut rng) < 100).count();
        let frac = hot as f64 / n as f64;
        // Zipf(1) over 100k keys: top 100 keys ≈ ln(100)/ln(100000) ≈ 40%.
        assert!(frac > 0.3 && frac < 0.5, "hot fraction {frac}");
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let zipf = ZipfSampler::new(1_000, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 50_000;
        let top_half = (0..n).filter(|_| zipf.sample(&mut rng) < 500).count();
        let frac = top_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "top-half fraction {frac}");
    }

    #[test]
    fn hit_rate_is_monotone_in_capacity() {
        let zipf = ZipfSampler::new(10_000, 0.9);
        let mut last = 0.0;
        for capacity in [1, 10, 100, 1_000, 10_000] {
            let rate = zipf.hit_rate(capacity);
            assert!(rate >= last, "hit rate must grow with capacity");
            last = rate;
        }
        assert!((zipf.hit_rate(10_000) - 1.0).abs() < 0.05);
        assert_eq!(zipf.hit_rate(0), 0.0);
    }

    #[test]
    fn empirical_hit_rate_matches_analytic() {
        let zipf = ZipfSampler::new(50_000, 1.0);
        let capacity = 5_000;
        let analytic = zipf.hit_rate(capacity);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 200_000;
        let hits = (0..n).filter(|_| zipf.sample(&mut rng) < capacity).count();
        let empirical = hits as f64 / n as f64;
        assert!(
            (empirical - analytic).abs() < 0.02,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn serde_round_trip_rebuilds_tables() {
        let zipf = ZipfSampler::new(1_000, 1.0);
        let json = serde_json::to_string(&zipf).unwrap();
        let mut back: ZipfSampler = serde_json::from_str(&json).unwrap();
        back.ensure_initialized();
        assert_eq!(back.keys(), 1_000);
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = back.sample(&mut rng);
        assert!((back.hit_rate(1_000) - zipf.hit_rate(1_000)).abs() < 1e-12);
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = ZipfSampler::new(500, 1.2);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 500);
        }
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_rejected() {
        ZipfSampler::new(0, 1.0);
    }
}
