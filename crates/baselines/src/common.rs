//! Shared machinery for baseline load testers.
//!
//! Every baseline is described by how it differs from Treadmill:
//! control loop (open vs closed), client count, per-operation client
//! CPU cost (implementation efficiency), and how it aggregates latency
//! samples (exact, or statically binned).

use std::sync::Arc;

use treadmill_cluster::{
    ClientSpec, ClusterBuilder, HardwareConfig, PacketCapture, RunResult, TrafficSource,
};
use treadmill_core::{
    ClosedLoopSource, InterArrival, OpenLoopSource, RateLimitedClosedLoopSource,
};
use treadmill_sim_core::{SimDuration, SimTime};
use treadmill_stats::{LatencySummary, StaticHistogram};
use treadmill_workloads::Workload;

/// Which control loop a tester uses (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlLoop {
    /// Precisely-timed sends regardless of responses.
    Open,
    /// One outstanding request per worker connection, paced against a
    /// target-rate schedule (Mutilate/YCSB QPS targets) — falls behind
    /// under load (coordinated omission).
    Closed,
    /// One outstanding request per worker, resent immediately on
    /// response: drives the server as hard as the workers allow.
    ClosedSaturating,
}

/// How a tester aggregates latency samples (§II-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeasurementStyle {
    /// Keeps every sample (no binning error).
    RawSamples,
    /// A statically configured histogram: samples outside the bounds
    /// are clamped, truncating the tail at high utilisation.
    StaticHistogram {
        /// Lower bound, µs.
        lower_us: f64,
        /// Upper bound, µs.
        upper_us: f64,
        /// Number of bins.
        bins: usize,
    },
}

/// The shape of a baseline load tester.
#[derive(Debug, Clone, PartialEq)]
pub struct TesterProfile {
    /// Display name.
    pub name: &'static str,
    /// Number of client machines it deploys.
    pub clients: usize,
    /// Worker connections (threads) per client.
    pub connections_per_client: u32,
    /// Per-send client CPU cost, ns (implementation efficiency).
    pub send_cpu_ns: f64,
    /// Per-response client CPU cost, ns.
    pub recv_cpu_ns: f64,
    /// Control loop.
    pub control: ControlLoop,
    /// Sample aggregation.
    pub measurement: MeasurementStyle,
}

/// What one baseline run measured, alongside the ground truth.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Tester name.
    pub name: &'static str,
    /// The latency summary the tester itself would report (including
    /// any binning/clipping error).
    pub measured: LatencySummary,
    /// Latency samples as the tester recorded them (post-binning they
    /// are reconstructed bin values).
    pub measured_latencies_us: Vec<f64>,
    /// Samples clipped by a static histogram (0 for raw testers).
    pub clipped_samples: u64,
    /// tcpdump ground truth for the same run.
    pub ground_truth: PacketCapture,
    /// Achieved throughput over the sending window, RPS.
    pub achieved_rps: f64,
    /// The raw simulation result.
    pub run: RunResult,
}

/// Runs a baseline tester profile against the simulated cluster.
///
/// # Panics
///
/// Panics if the tester collects no measurement samples.
pub fn run_profile(
    profile: &TesterProfile,
    workload: Arc<dyn Workload>,
    target_rps: f64,
    hardware: HardwareConfig,
    duration: SimDuration,
    warmup: SimDuration,
    seed: u64,
) -> BaselineReport {
    let mut builder = ClusterBuilder::new(workload)
        .hardware(hardware)
        .seed(seed)
        .duration(duration);
    let per_client_rate = target_rps / profile.clients as f64;
    for _ in 0..profile.clients {
        let spec = ClientSpec {
            connections: profile.connections_per_client,
            send_cpu_ns: profile.send_cpu_ns,
            recv_cpu_ns: profile.recv_cpu_ns,
            ..Default::default()
        };
        let source: Box<dyn TrafficSource> = match profile.control {
            ControlLoop::Open => Box::new(OpenLoopSource::new(
                InterArrival::Exponential {
                    rate_rps: per_client_rate,
                },
                profile.connections_per_client,
            )),
            ControlLoop::Closed => Box::new(RateLimitedClosedLoopSource::new(
                InterArrival::Exponential {
                    rate_rps: per_client_rate,
                },
                profile.connections_per_client,
            )),
            ControlLoop::ClosedSaturating => {
                Box::new(ClosedLoopSource::new(profile.connections_per_client))
            }
        };
        builder = builder.client(spec, source);
    }
    let run = builder.run();
    let warmup_time = SimTime::ZERO + warmup;

    // Pool across clients (holistic aggregation — every baseline does
    // this; it is pitfall §II-B but faithful to the originals).
    let raw: Vec<f64> = run.user_latencies_us(warmup_time);
    assert!(!raw.is_empty(), "{} collected no samples", profile.name);

    let (measured_latencies_us, clipped) = match profile.measurement {
        MeasurementStyle::RawSamples => (raw.clone(), 0),
        MeasurementStyle::StaticHistogram {
            lower_us,
            upper_us,
            bins,
        } => {
            let mut hist = StaticHistogram::new(lower_us, upper_us, bins);
            for &v in &raw {
                hist.record(v);
            }
            // Reconstruct what the tester believes its samples were:
            // quantile readout through the clipped bins.
            let n = raw.len();
            let values = (0..n)
                .map(|i| hist.quantile((i as f64 + 0.5) / n as f64))
                .collect();
            (values, hist.clipped())
        }
    };
    let measured = LatencySummary::from_samples(&measured_latencies_us);
    let ground_truth = PacketCapture::from_records(run.all_records(), warmup_time);
    let window_s = duration.as_secs_f64() - warmup.as_secs_f64();
    // Throughput the tester actually sustained: responses delivered
    // within the sending window (a backlogged client delivers the rest
    // long after the test ends, which must not count).
    let stop = run.sending_stopped_at;
    let delivered_in_window = run
        .all_records()
        .filter(|r| r.t_delivered <= stop)
        .count();
    let _ = window_s;
    let achieved_rps = delivered_in_window as f64 / stop.as_secs_f64();
    BaselineReport {
        name: profile.name,
        measured,
        measured_latencies_us,
        clipped_samples: clipped,
        ground_truth,
        achieved_rps,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_workloads::Memcached;

    fn profile(control: ControlLoop, measurement: MeasurementStyle) -> TesterProfile {
        TesterProfile {
            name: "test",
            clients: 2,
            connections_per_client: 8,
            send_cpu_ns: 1_000.0,
            recv_cpu_ns: 1_000.0,
            control,
            measurement,
        }
    }

    fn run(profile: &TesterProfile, rps: f64) -> BaselineReport {
        run_profile(
            profile,
            Arc::new(Memcached::default()),
            rps,
            HardwareConfig::default(),
            SimDuration::from_millis(80),
            SimDuration::from_millis(20),
            3,
        )
    }

    #[test]
    fn open_loop_raw_profile_measures() {
        let report = run(
            &profile(ControlLoop::Open, MeasurementStyle::RawSamples),
            100_000.0,
        );
        assert!(report.measured.count > 1_000);
        assert_eq!(report.clipped_samples, 0);
        assert!((report.achieved_rps / 100_000.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn static_histogram_clips_the_tail() {
        let report = run(
            &profile(
                ControlLoop::Open,
                MeasurementStyle::StaticHistogram {
                    lower_us: 0.0,
                    upper_us: 80.0,
                    bins: 80,
                },
            ),
            400_000.0,
        );
        assert!(report.clipped_samples > 0, "bound chosen below the tail");
        assert!(report.measured.p99 <= 80.0, "clipped p99 cannot exceed bound");
        // Ground truth is unaffected by the tester's histogram.
        assert!(report.ground_truth.quantile_us(0.99) > 30.0);
    }

    #[test]
    fn closed_loop_throughput_is_response_gated() {
        let report = run(
            &profile(ControlLoop::Closed, MeasurementStyle::RawSamples),
            100_000.0,
        );
        assert!(report.measured.count > 1_000);
        // At 100k target with ample connections the schedule is mostly
        // respected.
        assert!((report.achieved_rps / 100_000.0 - 1.0).abs() < 0.15,
            "achieved {}", report.achieved_rps);
    }
}
