//! The four baseline load testers the paper surveys (§II, Table I),
//! each reproducing the design of the original tool as the paper
//! describes it.

use crate::common::{ControlLoop, MeasurementStyle, TesterProfile};

/// YCSB-like tester: **single client**, **closed-loop** worker threads,
/// heavyweight per-operation cost (a JVM-based framework), and a
/// statically configured histogram (YCSB's classic 1 ms-bucket
/// histogram truncates microsecond-scale tails entirely; we give it a
/// generous but still static range).
pub fn ycsb() -> TesterProfile {
    TesterProfile {
        name: "YCSB",
        clients: 1,
        connections_per_client: 32,
        send_cpu_ns: 3_000.0,
        recv_cpu_ns: 3_000.0,
        control: ControlLoop::Closed,
        measurement: MeasurementStyle::StaticHistogram {
            lower_us: 0.0,
            upper_us: 1_000.0,
            bins: 1_000,
        },
    }
}

/// Faban-like tester: **multi-client** agents but a **closed-loop**
/// driver model, moderate per-op cost, statically binned response-time
/// histograms.
pub fn faban() -> TesterProfile {
    TesterProfile {
        name: "Faban",
        clients: 4,
        connections_per_client: 16,
        send_cpu_ns: 2_000.0,
        recv_cpu_ns: 2_000.0,
        control: ControlLoop::Closed,
        measurement: MeasurementStyle::StaticHistogram {
            lower_us: 0.0,
            upper_us: 2_000.0,
            bins: 1_000,
        },
    }
}

/// CloudSuite-like tester: a proper **open-loop** generator, but a
/// **single client** with a heavy per-operation cost — the paper shows
/// it "measures a drastically higher tail latency … because of heavy
/// client-side queueing bias" at 10% server utilisation and "is not
/// efficient enough" to reach 80% at all (§III-C).
pub fn cloudsuite() -> TesterProfile {
    TesterProfile {
        name: "CloudSuite",
        clients: 1,
        connections_per_client: 16,
        send_cpu_ns: 4_000.0,
        recv_cpu_ns: 4_000.0,
        control: ControlLoop::Open,
        measurement: MeasurementStyle::StaticHistogram {
            lower_us: 0.0,
            upper_us: 5_000.0,
            bins: 2_000,
        },
    }
}

/// Mutilate-like tester: **8 agent clients** (efficient C++
/// implementation, fine-grained sampling — its aggregation is sound)
/// but a **closed-loop** controller, which "artificially limits the
/// maximum number of outstanding requests … therefore heavily
/// underestimates the 99th-percentile latency by more than 2×" at high
/// utilisation (§III-C).
pub fn mutilate() -> TesterProfile {
    TesterProfile {
        name: "Mutilate",
        clients: 8,
        connections_per_client: 8,
        send_cpu_ns: 1_200.0,
        recv_cpu_ns: 1_200.0,
        control: ControlLoop::Closed,
        measurement: MeasurementStyle::RawSamples,
    }
}

/// Treadmill's own shape, expressed in the same vocabulary for
/// side-by-side comparison: 8 lightly-loaded clients, open loop,
/// lock-free per-op cost, adaptive aggregation (represented as raw
/// samples here; the real adaptive histogram lives in
/// `treadmill-core`).
pub fn treadmill_shape() -> TesterProfile {
    TesterProfile {
        name: "Treadmill",
        clients: 8,
        connections_per_client: 16,
        send_cpu_ns: 800.0,
        recv_cpu_ns: 800.0,
        control: ControlLoop::Open,
        measurement: MeasurementStyle::RawSamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_profile;
    use std::sync::Arc;
    use treadmill_cluster::HardwareConfig;
    use treadmill_sim_core::SimDuration;
    use treadmill_workloads::Memcached;

    fn run(profile: &TesterProfile, rps: f64, seed: u64) -> crate::common::BaselineReport {
        run_profile(
            profile,
            Arc::new(Memcached::default()),
            rps,
            HardwareConfig::default(),
            SimDuration::from_millis(100),
            SimDuration::from_millis(25),
            seed,
        )
    }

    #[test]
    fn profiles_match_paper_descriptions() {
        assert_eq!(ycsb().clients, 1);
        assert_eq!(ycsb().control, ControlLoop::Closed);
        assert_eq!(cloudsuite().clients, 1);
        assert_eq!(cloudsuite().control, ControlLoop::Open);
        assert_eq!(mutilate().clients, 8);
        assert_eq!(mutilate().control, ControlLoop::Closed);
        assert_eq!(treadmill_shape().control, ControlLoop::Open);
    }

    #[test]
    fn cloudsuite_overestimates_tail_at_low_utilization() {
        // §III-C / Figure 5: at 10% server utilisation CloudSuite's
        // heavy single client adds client-side queueing that inflates
        // its measured tail far above the ground truth.
        let cs = run(&cloudsuite(), 100_000.0, 1);
        let tm = run(&treadmill_shape(), 100_000.0, 1);
        let cs_error = cs.measured.p99 - cs.ground_truth.quantile_us(0.99);
        let tm_error = tm.measured.p99 - tm.ground_truth.quantile_us(0.99);
        assert!(
            cs_error > tm_error * 2.0,
            "CloudSuite p99 error {cs_error}us vs Treadmill {tm_error}us"
        );
    }

    #[test]
    fn mutilate_underestimates_tail_at_high_utilization() {
        // §III-C / Figure 6: the closed loop caps outstanding requests,
        // so at high load Mutilate's own ground truth tail is far below
        // what an open-loop tester drives and measures.
        let mu = run(&mutilate(), 950_000.0, 2);
        let tm = run(&treadmill_shape(), 950_000.0, 2);
        assert!(
            tm.measured.p99 > mu.measured.p99 * 1.15,
            "open loop should expose a heavier tail: treadmill {} vs mutilate {}",
            tm.measured.p99,
            mu.measured.p99
        );
        // The closed loop also cannot sustain the offered rate: its
        // workers fall behind the schedule (coordinated omission).
        assert!(
            mu.achieved_rps < 0.9 * 950_000.0,
            "mutilate sustained {} RPS, expected a shortfall",
            mu.achieved_rps
        );
        assert!(
            tm.achieved_rps > 0.95 * 950_000.0,
            "treadmill sustained only {} RPS",
            tm.achieved_rps
        );
    }

    #[test]
    fn treadmill_matches_ground_truth_shape() {
        let tm = run(&treadmill_shape(), 100_000.0, 3);
        let gap50 = tm.measured.p50 - tm.ground_truth.quantile_us(0.50);
        let gap99 = tm.measured.p99 - tm.ground_truth.quantile_us(0.99);
        // Constant offset (kernel interrupt handling), similar at both
        // quantiles (§III-C: "maintains a constant gap … even at high
        // quantiles").
        assert!(gap50 > 15.0 && gap50 < 45.0, "gap50 {gap50}");
        assert!((gap99 - gap50).abs() < 20.0, "gap grew: {gap50} → {gap99}");
    }
}
