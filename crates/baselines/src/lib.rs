//! Baseline load testers for the comparison experiments (§II, §III-C).
//!
//! The paper demonstrates Treadmill's accuracy by running prior load
//! testers on the same setup and comparing each against tcpdump ground
//! truth. This crate reproduces those comparators as [`TesterProfile`]s
//! that run against the simulated cluster:
//!
//! * [`ycsb`] — single-client, closed-loop, static histogram;
//! * [`faban`] — multi-agent but closed-loop, static histogram;
//! * [`cloudsuite`] — open-loop but single heavy client;
//! * [`mutilate`] — 8 efficient agents but closed-loop;
//! * [`treadmill_shape`] — Treadmill expressed in the same vocabulary.
//!
//! [`feature_table`] regenerates Table I.
//!
//! # Examples
//!
//! ```
//! use treadmill_baselines::feature_table;
//!
//! let table = feature_table();
//! assert_eq!(table.len(), 5);
//! ```

#![forbid(unsafe_code)]
// Unit tests unwrap freely and assert exact float equality: bit-exact
// reproducibility is the property under test. Library code is held to
// the workspace lint table (see DESIGN.md, "Static analysis").
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)
)]
#![warn(missing_docs)]

mod common;
mod features;
mod testers;

pub use common::{run_profile, BaselineReport, ControlLoop, MeasurementStyle, TesterProfile};
pub use features::{feature_table, FeatureRow, FeatureSupport};
pub use testers::{cloudsuite, faban, mutilate, treadmill_shape, ycsb};
