//! The load-tester feature matrix (Table I).

/// Which of the paper's five requirements a load tester satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSupport {
    /// Proper open-loop query inter-arrival generation (§II-A).
    pub query_interarrival: bool,
    /// Sound statistical aggregation — adaptive histograms, per-client
    /// metric extraction (§II-B).
    pub statistical_aggregation: bool,
    /// Avoids client-side queueing bias via multiple lightly-utilised
    /// clients (§II-C).
    pub client_side_queueing: bool,
    /// Handles performance hysteresis via repeated experiments (§II-D).
    pub performance_hysteresis: bool,
    /// General: new workloads integrate without invasive changes.
    pub generality: bool,
}

impl FeatureSupport {
    /// Number of requirements satisfied.
    pub fn score(&self) -> u8 {
        u8::from(self.query_interarrival)
            + u8::from(self.statistical_aggregation)
            + u8::from(self.client_side_queueing)
            + u8::from(self.performance_hysteresis)
            + u8::from(self.generality)
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureRow {
    /// Tester name.
    pub name: &'static str,
    /// Its feature support.
    pub support: FeatureSupport,
}

/// The full Table I: which load tester satisfies which requirement, as
/// the paper assesses them.
pub fn feature_table() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            name: "YCSB",
            support: FeatureSupport {
                query_interarrival: false,     // closed loop
                statistical_aggregation: false, // static histogram
                client_side_queueing: false,   // single client
                performance_hysteresis: false,
                generality: true, // pluggable DB bindings
            },
        },
        FeatureRow {
            name: "Faban",
            support: FeatureSupport {
                query_interarrival: false, // closed-loop driver
                statistical_aggregation: false,
                client_side_queueing: true, // multi-agent
                performance_hysteresis: false,
                generality: true, // workload creation framework
            },
        },
        FeatureRow {
            name: "CloudSuite",
            support: FeatureSupport {
                query_interarrival: true, // open loop
                statistical_aggregation: false,
                client_side_queueing: false, // single client
                performance_hysteresis: false,
                generality: false, // fixed benchmark set
            },
        },
        FeatureRow {
            name: "Mutilate",
            support: FeatureSupport {
                query_interarrival: false, // closed loop
                statistical_aggregation: true, // fine-grained sampling
                client_side_queueing: true,    // 8 agents + master
                performance_hysteresis: false,
                generality: false, // memcached-only
            },
        },
        FeatureRow {
            name: "Treadmill",
            support: FeatureSupport {
                query_interarrival: true,
                statistical_aggregation: true,
                client_side_queueing: true,
                performance_hysteresis: true,
                generality: true,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treadmill_satisfies_everything() {
        let table = feature_table();
        let treadmill = table.iter().find(|r| r.name == "Treadmill").unwrap();
        assert_eq!(treadmill.support.score(), 5);
    }

    #[test]
    fn no_baseline_satisfies_everything() {
        for row in feature_table() {
            if row.name != "Treadmill" {
                assert!(row.support.score() < 5, "{} scores full marks", row.name);
            }
        }
    }

    #[test]
    fn only_treadmill_handles_hysteresis() {
        let with_hysteresis: Vec<&str> = feature_table()
            .iter()
            .filter(|r| r.support.performance_hysteresis)
            .map(|r| r.name)
            .collect();
        assert_eq!(with_hysteresis, vec!["Treadmill"]);
    }

    #[test]
    fn closed_loop_testers_fail_interarrival() {
        let table = feature_table();
        for name in ["YCSB", "Faban", "Mutilate"] {
            let row = table.iter().find(|r| r.name == name).unwrap();
            assert!(!row.support.query_interarrival, "{name}");
        }
    }

    #[test]
    fn single_client_testers_fail_queueing() {
        let table = feature_table();
        for name in ["YCSB", "CloudSuite"] {
            let row = table.iter().find(|r| r.name == name).unwrap();
            assert!(!row.support.client_side_queueing, "{name}");
        }
    }
}
