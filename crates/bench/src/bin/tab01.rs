//! Table I: summary of load-tester features.

use treadmill_baselines::{feature_table, FeatureSupport};
use treadmill_bench::{banner, row, BenchArgs};

type FeatureCheck = fn(&FeatureSupport) -> bool;

fn main() {
    let args = BenchArgs::parse();
    banner("Table I", "Summary of load tester features", &args);
    let table = feature_table();
    let mark = |b: bool| if b { "yes" } else { "-" };
    row(["Requirement"]
        .into_iter()
        .chain(table.iter().map(|r| r.name)));
    let rows: [(&str, FeatureCheck); 5] = [
        ("Query Interarrival Generation", |s| s.query_interarrival),
        ("Statistical Aggregation", |s| s.statistical_aggregation),
        ("Client-side Queueing Bias", |s| s.client_side_queueing),
        ("Performance Hysteresis", |s| s.performance_hysteresis),
        ("Generality", |s| s.generality),
    ];
    for (label, get) in rows {
        row([label.to_string()]
            .into_iter()
            .chain(table.iter().map(|r| mark(get(&r.support)).to_string())));
    }
}
