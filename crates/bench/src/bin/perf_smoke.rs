//! Performance smoke test: times the four hot-path layers and writes
//! `BENCH_treadmill.json` so the perf trajectory is tracked per commit.
//!
//! Stages (one per optimized layer):
//!
//! 1. `engine_events` — raw discrete-event engine throughput
//!    (events/sec) on self-rescheduling chains, exercising the 4-ary
//!    indexed queue's schedule/pop path with dense time collisions;
//! 2. `single_run` — one `LoadTest::run`, exercising the whole
//!    simulate-then-measure record pipeline;
//! 3. `checkpointed_run` — the same run driven through `ResumableRun`
//!    with a checkpoint every `DEFAULT_CKPT_EVENTS` events, proving the
//!    snapshot path stays within its overhead budget (time spent
//!    checkpointing ≤5% of the stage-2 wall) and reproduces the plain
//!    run's bits;
//! 4. `collect_tiny` — a reduced factorial `collect()`, exercising the
//!    parallel experiment layer and the O(k) subsampler.
//!
//! Usage: `perf_smoke [--check] [--out PATH] [--seed N]`
//!
//! `--check` runs each stage at smoke scale and fails (non-zero exit)
//! if the JSON report cannot be produced or re-parsed — timings are
//! informational, so CI stays load-insensitive.

use std::sync::Arc;
use std::time::Instant;

use serde_json::{Map, Value};
use treadmill_core::LoadTest;
use treadmill_inference::CollectionPlan;
use treadmill_sim_core::{Engine, EventQueue, SimDuration, SimTime, World};
use treadmill_workloads::Memcached;

/// A world of independent event chains: each event reschedules itself a
/// pseudo-random (but deterministic) delay ahead until its hop budget
/// runs out. Many chains keep the queue deep; small delays collide
/// often, stressing the FIFO tie-break path.
struct Chains {
    state: u64,
}

#[derive(Clone, Copy)]
struct Hop {
    remaining: u32,
}

impl World for Chains {
    type Event = Hop;

    fn handle(&mut self, now: SimTime, event: Hop, queue: &mut EventQueue<Hop>) {
        if event.remaining == 0 {
            return;
        }
        // xorshift64 keeps delays varied without an RNG dependency.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let delay = SimDuration::from_nanos(self.state % 512);
        queue.schedule(
            now + delay,
            Hop {
                remaining: event.remaining - 1,
            },
        );
    }
}

fn bench_engine(chains: u64, hops: u32) -> (u64, f64) {
    let mut engine = Engine::with_queue_capacity(
        Chains {
            state: 0x9E37_79B9_7F4A_7C15,
        },
        chains as usize + 16,
    );
    for i in 0..chains {
        engine.schedule(SimTime::from_nanos(i % 64), Hop { remaining: hops });
    }
    // tml-lint: allow(DET002, bench harness measures real wall time around the deterministic engine run; the timing never feeds back into simulated state)
    let start = Instant::now();
    engine.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    (engine.events_executed(), wall)
}

/// Results of the paired plain-vs-checkpointed run measurement.
struct RunPair {
    responses: usize,
    run_wall: f64,
    ckpts: u64,
    snapshot_bytes: usize,
    ckpt_wall: f64,
    /// Best-of-reps total time spent inside checkpoint serialisation
    /// during one checkpointed run.
    ckpt_secs: f64,
}

/// Measures stage 2 (one plain `LoadTest::run`) and stage 3 (the same
/// workload through `ResumableRun`, checkpointing every `ckpt_events`
/// events like the `run_sweep` crash-tolerance loop) as interleaved
/// best-of-`reps` pairs.
///
/// The checkpoint cost being judged is a couple of milliseconds, well
/// below run-to-run scheduler jitter on a ~100 ms run, so the overhead
/// budget is computed from `ckpt_secs` — the checkpoint calls timed
/// directly — over the plain run's wall, not by differencing two noisy
/// whole-run walls. The runs are deterministic, so per-variant minima
/// strip the noise; interleaving keeps a load spike from biasing one
/// variant. The checkpoint scratch buffer is recycled across reps
/// exactly as `run_sweep` recycles it across checkpoints — steady
/// state, not the one-off first-allocation cost, is what the budget
/// bounds. The checkpointed run's report must match the plain run
/// bit-for-bit.
fn bench_run_pair(seed: u64, duration_ms: u64, ckpt_events: u64, reps: u32) -> RunPair {
    use treadmill_core::ResumableRun;

    let test = LoadTest::new(Arc::new(Memcached::default()), 250_000.0)
        .clients(4)
        .duration(SimDuration::from_millis(duration_ms))
        .warmup(SimDuration::from_millis(duration_ms / 4))
        .seed(seed);
    let mut run_wall = f64::INFINITY;
    let mut ckpt_wall = f64::INFINITY;
    let mut ckpt_secs = f64::INFINITY;
    let mut responses = 0usize;
    let mut p99 = 0f64;
    let mut ckpts = 0u64;
    let mut snapshot_bytes = 0usize;
    let mut ckpt_buf = Vec::new();
    for _ in 0..reps {
        // tml-lint: allow(DET002, wall-clock timing of seeded deterministic runs; results go to BENCH_treadmill.json only)
        let start = Instant::now();
        let report = test.clone().run(0);
        run_wall = run_wall.min(start.elapsed().as_secs_f64());
        responses = report.run.total_responses();
        p99 = report.aggregated.p99;

        // tml-lint: allow(DET002, wall-clock timing of the seeded checkpoint path; informational perf numbers only)
        let start = Instant::now();
        let mut run = ResumableRun::new(test.clone(), 0);
        ckpts = 0;
        let mut in_ckpt = 0.0;
        while run.step(ckpt_events) > 0 {
            if run.is_finished() {
                break;
            }
            // tml-lint: allow(DET002, times the checkpoint call itself for the overhead budget)
            let c = Instant::now();
            run.checkpoint_into(&mut ckpt_buf);
            in_ckpt += c.elapsed().as_secs_f64();
            snapshot_bytes = ckpt_buf.len();
            ckpts += 1;
        }
        let ck_report = run.finish();
        ckpt_wall = ckpt_wall.min(start.elapsed().as_secs_f64());
        ckpt_secs = ckpt_secs.min(in_ckpt);
        assert!(ckpts > 0, "checkpoint stage took no checkpoints");
        assert_eq!(
            ck_report.aggregated.p99.to_bits(),
            p99.to_bits(),
            "checkpointed run drifted from the plain run"
        );
    }
    assert!(p99 > 0.0, "run produced no latencies");
    RunPair {
        responses,
        run_wall,
        ckpts,
        snapshot_bytes,
        ckpt_wall,
        ckpt_secs,
    }
}

fn bench_collect(seed: u64, runs_per_config: usize, duration_ms: u64) -> (usize, f64) {
    let mut plan = CollectionPlan::new(Arc::new(Memcached::default()), 300_000.0);
    plan.runs_per_config = runs_per_config;
    plan.samples_per_run = 2_000;
    plan.clients = 2;
    plan.duration = SimDuration::from_millis(duration_ms);
    plan.warmup = SimDuration::from_millis(duration_ms / 4);
    plan.seed = seed;
    // tml-lint: allow(DET002, wall-clock timing of the seeded factorial collect stage; informational perf numbers only)
    let start = Instant::now();
    let dataset = treadmill_inference::collect(&plan);
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(dataset.cells.len(), 16, "factorial collect lost cells");
    (dataset.total_samples(), wall)
}

fn stage(name: &str, unit: &str, items: u64, wall_secs: f64) -> Value {
    let mut obj = Map::new();
    obj.insert("name".to_string(), Value::String(name.to_string()));
    obj.insert("unit".to_string(), Value::String(unit.to_string()));
    obj.insert("items".to_string(), Value::UInt(items));
    obj.insert("wall_ms".to_string(), Value::Float(wall_secs * 1e3));
    obj.insert(
        "items_per_sec".to_string(),
        Value::Float(items as f64 / wall_secs),
    );
    println!(
        "{name}: {items} {unit} in {:.1} ms ({:.0} {unit}/s)",
        wall_secs * 1e3,
        items as f64 / wall_secs
    );
    Value::Object(obj)
}

fn main() {
    let mut check = false;
    let mut out = "BENCH_treadmill.json".to_string();
    let mut seed = 2016u64;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out = iter.next().expect("--out needs a path"),
            "--seed" => {
                seed = iter
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be a u64");
            }
            other => panic!("unknown argument {other}; expected --check/--out PATH/--seed N"),
        }
    }

    // Check mode shrinks every stage so CI finishes in seconds; the
    // full mode is sized to make run-to-run noise small relative to
    // real regressions.
    let (chains, hops) = if check { (256, 2_000) } else { (1_024, 8_000) };
    let (run_ms, collect_runs, collect_ms) = if check { (60, 1, 40) } else { (400, 3, 80) };
    // Best-of-N repetitions for the two stages whose walls are compared
    // against each other; check mode keeps a single rep for speed.
    let reps = if check { 1 } else { 5 };

    let (events, engine_wall) = bench_engine(chains, hops);
    let engine_stage = stage("engine_events", "events", events, engine_wall);

    // Full mode measures the production default interval; check mode's
    // tiny run has fewer events than the default, so it shrinks the
    // interval to still exercise a mid-run snapshot.
    let ckpt_events = if check {
        50_000
    } else {
        treadmill_core::sweep::DEFAULT_CKPT_EVENTS
    };
    let pair = bench_run_pair(seed, run_ms, ckpt_events, reps);
    let run_stage = stage(
        "single_run",
        "responses",
        pair.responses as u64,
        pair.run_wall,
    );

    let overhead_pct = pair.ckpt_secs / pair.run_wall * 100.0;
    let mut ckpt_stage = stage("checkpointed_run", "checkpoints", pair.ckpts, pair.ckpt_wall);
    if let Value::Object(obj) = &mut ckpt_stage {
        obj.insert("overhead_pct".to_string(), Value::Float(overhead_pct));
        obj.insert(
            "ckpt_ms".to_string(),
            Value::Float(pair.ckpt_secs * 1e3),
        );
        obj.insert(
            "snapshot_bytes".to_string(),
            Value::UInt(pair.snapshot_bytes as u64),
        );
    }
    let (ckpts, snapshot_bytes) = (pair.ckpts, pair.snapshot_bytes);
    println!(
        "checkpointed_run: {ckpts} checkpoints ({snapshot_bytes} B each), \
         {:.2} ms checkpointing = {overhead_pct:+.1}% of single_run",
        pair.ckpt_secs * 1e3
    );
    // The ≤5% budget is asserted only at full scale: check mode's tiny
    // run makes the delta mostly scheduler noise, and CI must stay
    // load-insensitive.
    assert!(
        check || overhead_pct <= 5.0,
        "checkpoint overhead {overhead_pct:.1}% exceeds the 5% budget"
    );

    let (samples, collect_wall) = bench_collect(seed, collect_runs, collect_ms);
    let collect_stage = stage("collect_tiny", "samples", samples as u64, collect_wall);

    let mut root = Map::new();
    root.insert("schema".to_string(), Value::UInt(1));
    root.insert(
        "mode".to_string(),
        Value::String(if check { "check" } else { "full" }.to_string()),
    );
    root.insert("seed".to_string(), Value::UInt(seed));
    root.insert(
        "benchmarks".to_string(),
        Value::Array(vec![engine_stage, run_stage, ckpt_stage, collect_stage]),
    );
    let json =
        serde_json::to_string_pretty(&Value::Object(root)).expect("serialize benchmark report");
    std::fs::write(&out, &json).expect("write benchmark report");

    // The report must round-trip: a malformed file would silently break
    // downstream trend tracking, so treat it as a hard failure.
    let parsed: Value = serde_json::from_str(&json).expect("report must re-parse");
    let benchmarks = parsed["benchmarks"]
        .as_array()
        .expect("report has a benchmarks array");
    assert_eq!(benchmarks.len(), 4, "expected one entry per stage");
    println!("wrote {out}");
}
