//! Performance smoke test: times the eight hot-path layers and writes
//! `BENCH_treadmill.json` so the perf trajectory is tracked per commit.
//!
//! Stages (one per optimized layer):
//!
//! 1. `engine_events` — raw discrete-event engine throughput
//!    (events/sec) on self-rescheduling chains, exercising the 4-ary
//!    indexed queue's schedule/pop path with dense time collisions;
//! 2. `single_run` — one `LoadTest::run`, exercising the whole
//!    simulate-then-measure record pipeline;
//! 3. `checkpointed_run` — the same run driven through `ResumableRun`
//!    with a checkpoint every `DEFAULT_CKPT_EVENTS` events, proving the
//!    snapshot path stays within its overhead budget (time spent
//!    checkpointing ≤5% of the stage-2 wall) and reproduces the plain
//!    run's bits;
//! 4. `collect_tiny` — a reduced factorial `collect()`, exercising the
//!    parallel experiment layer and the O(k) subsampler;
//! 5. `engine_events_sharded` — a multi-server world on the sharded
//!    parallel executor, run once at 1 worker thread and once at the
//!    host's hardware parallelism; the event counts must match (the
//!    determinism guarantee) and the wall-clock ratio is reported as
//!    `speedup_vs_1`;
//! 6. `million_world` — the scale stage: at full scale a 100-server,
//!    one-million-connection cluster (100 shards × 8 clients × 1250
//!    connections) advanced by the windowed executor;
//! 7. `screened_sweep` — the two-stage factorial path: the analytic
//!    screen ranks all 16 hardware cells and DES runs are spent only on
//!    the flagged ones; the stage records cells screened out, cells
//!    simulated, and the measured wall-clock speedup over the full
//!    factorial it replaces;
//! 8. `lint_workspace` — the static-analysis gate itself: a full
//!    workspace scan + parse + call-graph + reachability pass through
//!    `treadmill-lint`, pinned under 2 s so the lint stays an
//!    interactive pre-commit habit rather than a CI-only tax.
//!
//! Every benchmark entry records the worker `threads` and world
//! `shards` it ran with (schema 2).
//!
//! Usage: `perf_smoke [--check] [--out PATH] [--seed N]`
//!
//! `--check` runs each stage at smoke scale and fails (non-zero exit)
//! if the JSON report cannot be produced or re-parsed — timings are
//! informational, so CI stays load-insensitive.

use std::sync::Arc;
use std::time::Instant;

use serde_json::{Map, Value};
use treadmill_core::LoadTest;
use treadmill_inference::CollectionPlan;
use treadmill_sim_core::{Engine, EventQueue, SimDuration, SimTime, World};
use treadmill_workloads::Memcached;

/// A world of independent event chains: each event reschedules itself a
/// pseudo-random (but deterministic) delay ahead until its hop budget
/// runs out. Many chains keep the queue deep; small delays collide
/// often, stressing the FIFO tie-break path.
struct Chains {
    state: u64,
}

#[derive(Clone, Copy)]
struct Hop {
    remaining: u32,
}

impl World for Chains {
    type Event = Hop;

    fn handle(&mut self, now: SimTime, event: Hop, queue: &mut EventQueue<Hop>) {
        if event.remaining == 0 {
            return;
        }
        // xorshift64 keeps delays varied without an RNG dependency.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let delay = SimDuration::from_nanos(self.state % 512);
        queue.schedule(
            now + delay,
            Hop {
                remaining: event.remaining - 1,
            },
        );
    }
}

fn bench_engine(chains: u64, hops: u32) -> (u64, f64) {
    let mut engine = Engine::with_queue_capacity(
        Chains {
            state: 0x9E37_79B9_7F4A_7C15,
        },
        chains as usize + 16,
    );
    for i in 0..chains {
        engine.schedule(SimTime::from_nanos(i % 64), Hop { remaining: hops });
    }
    let start = Instant::now();
    engine.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    (engine.events_executed(), wall)
}

/// Results of the paired plain-vs-checkpointed run measurement.
struct RunPair {
    responses: usize,
    run_wall: f64,
    ckpts: u64,
    snapshot_bytes: usize,
    ckpt_wall: f64,
    /// Best-of-reps total time spent inside checkpoint serialisation
    /// during one checkpointed run.
    ckpt_secs: f64,
}

/// Measures stage 2 (one plain `LoadTest::run`) and stage 3 (the same
/// workload through `ResumableRun`, checkpointing every `ckpt_events`
/// events like the `run_sweep` crash-tolerance loop) as interleaved
/// best-of-`reps` pairs.
///
/// The checkpoint cost being judged is a couple of milliseconds, well
/// below run-to-run scheduler jitter on a ~100 ms run, so the overhead
/// budget is computed from `ckpt_secs` — the checkpoint calls timed
/// directly — over the plain run's wall, not by differencing two noisy
/// whole-run walls. The runs are deterministic, so per-variant minima
/// strip the noise; interleaving keeps a load spike from biasing one
/// variant. The checkpoint scratch buffer is recycled across reps
/// exactly as `run_sweep` recycles it across checkpoints — steady
/// state, not the one-off first-allocation cost, is what the budget
/// bounds. The checkpointed run's report must match the plain run
/// bit-for-bit.
fn bench_run_pair(seed: u64, duration_ms: u64, ckpt_events: u64, reps: u32) -> RunPair {
    use treadmill_core::ResumableRun;

    let test = LoadTest::new(Arc::new(Memcached::default()), 250_000.0)
        .clients(4)
        .duration(SimDuration::from_millis(duration_ms))
        .warmup(SimDuration::from_millis(duration_ms / 4))
        .seed(seed);
    let mut run_wall = f64::INFINITY;
    let mut ckpt_wall = f64::INFINITY;
    let mut ckpt_secs = f64::INFINITY;
    let mut responses = 0usize;
    let mut p99 = 0f64;
    let mut ckpts = 0u64;
    let mut snapshot_bytes = 0usize;
    let mut ckpt_buf = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        let report = test.clone().run(0);
        run_wall = run_wall.min(start.elapsed().as_secs_f64());
        responses = report.run.total_responses();
        p99 = report.aggregated.p99;

        let start = Instant::now();
        let mut run = ResumableRun::new(test.clone(), 0);
        ckpts = 0;
        let mut in_ckpt = 0.0;
        while run.step(ckpt_events) > 0 {
            if run.is_finished() {
                break;
            }
            let c = Instant::now();
            run.checkpoint_into(&mut ckpt_buf);
            in_ckpt += c.elapsed().as_secs_f64();
            snapshot_bytes = ckpt_buf.len();
            ckpts += 1;
        }
        let ck_report = run.finish();
        ckpt_wall = ckpt_wall.min(start.elapsed().as_secs_f64());
        ckpt_secs = ckpt_secs.min(in_ckpt);
        assert!(ckpts > 0, "checkpoint stage took no checkpoints");
        assert_eq!(
            ck_report.aggregated.p99.to_bits(),
            p99.to_bits(),
            "checkpointed run drifted from the plain run"
        );
    }
    assert!(p99 > 0.0, "run produced no latencies");
    RunPair {
        responses,
        run_wall,
        ckpts,
        snapshot_bytes,
        ckpt_wall,
        ckpt_secs,
    }
}

fn bench_collect(seed: u64, runs_per_config: usize, duration_ms: u64) -> (usize, f64) {
    let mut plan = CollectionPlan::new(Arc::new(Memcached::default()), 300_000.0);
    plan.runs_per_config = runs_per_config;
    plan.samples_per_run = 2_000;
    plan.clients = 2;
    plan.duration = SimDuration::from_millis(duration_ms);
    plan.warmup = SimDuration::from_millis(duration_ms / 4);
    plan.seed = seed;
    let start = Instant::now();
    let dataset = treadmill_inference::collect(&plan);
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(dataset.cells.len(), 16, "factorial collect lost cells");
    (dataset.total_samples(), wall)
}

/// Builds a sharded multi-server load test for the parallel stages.
fn sharded_world(
    seed: u64,
    servers: u32,
    clients: usize,
    connections: u32,
    rps: f64,
    duration_ms: u64,
    threads: u32,
) -> LoadTest {
    LoadTest::new(Arc::new(Memcached::default()), rps)
        .clients(clients)
        .connections_per_client(connections)
        .duration(SimDuration::from_millis(duration_ms))
        .warmup(SimDuration::from_millis(duration_ms / 4))
        .seed(seed)
        .servers(servers)
        .remote_every(4)
        .threads(threads)
}

/// Runs one sharded test, returning (events, responses, wall seconds).
fn bench_sharded(test: &LoadTest) -> (u64, usize, f64) {
    let start = Instant::now();
    let report = test.run(0);
    let wall = start.elapsed().as_secs_f64();
    (report.run.events_executed, report.run.total_responses(), wall)
}

/// Stage 7 results: the screened two-stage sweep vs the full factorial
/// on the same config.
struct ScreenedBench {
    simulated: u64,
    screened_out: u64,
    full_wall: f64,
    screened_wall: f64,
}

fn bench_screened_sweep(seed: u64, rps: f64, duration_ms: u64, threshold: f64) -> ScreenedBench {
    use treadmill_core::{run_factorial_sweep, run_screened_sweep, LoadTestConfig, SweepOptions};

    let config = LoadTestConfig::from_json(&format!(
        r#"{{"workload": {{"workload": "memcached"}},
            "target_rps": {rps}, "clients": 2, "connections_per_client": 4,
            "duration_ms": {duration_ms}, "warmup_ms": {warmup}, "seed": {seed}}}"#,
        warmup = duration_ms / 4
    ))
    .expect("screened stage config");
    let opts = SweepOptions {
        runs: 1,
        ..SweepOptions::default()
    };
    let base = std::env::temp_dir().join(format!("tml-perf-screen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let start = Instant::now();
    run_factorial_sweep(&config, &base.join("full"), &opts).expect("full factorial sweep");
    let full_wall = start.elapsed().as_secs_f64();

    // The screened wall includes the analytic screen itself — that cost
    // is part of the two-stage path being sold as a speedup.
    let start = Instant::now();
    let plan = treadmill_inference::screen_hardware(&config, threshold).expect("analytic screen");
    let outcome = run_screened_sweep(&config, &base.join("screened"), &opts, &plan.to_sweep_plan())
        .expect("screened sweep");
    let screened_wall = start.elapsed().as_secs_f64();

    assert!(
        (1..16).contains(&outcome.simulated.len()),
        "screen must keep some cells and drop some: simulated {:?}",
        outcome.simulated
    );
    let _ = std::fs::remove_dir_all(&base);
    ScreenedBench {
        simulated: outcome.simulated.len() as u64,
        screened_out: outcome.screened_out.len() as u64,
        full_wall,
        screened_wall,
    }
}

fn stage(name: &str, unit: &str, items: u64, wall_secs: f64, threads: u64, shards: u64) -> Value {
    let mut obj = Map::new();
    obj.insert("name".to_string(), Value::String(name.to_string()));
    obj.insert("unit".to_string(), Value::String(unit.to_string()));
    obj.insert("items".to_string(), Value::UInt(items));
    obj.insert("wall_ms".to_string(), Value::Float(wall_secs * 1e3));
    obj.insert(
        "items_per_sec".to_string(),
        Value::Float(items as f64 / wall_secs),
    );
    obj.insert("threads".to_string(), Value::UInt(threads));
    obj.insert("shards".to_string(), Value::UInt(shards));
    println!(
        "{name}: {items} {unit} in {:.1} ms ({:.0} {unit}/s, {threads} threads, {shards} shards)",
        wall_secs * 1e3,
        items as f64 / wall_secs
    );
    Value::Object(obj)
}

fn main() {
    let mut check = false;
    let mut out = "BENCH_treadmill.json".to_string();
    let mut seed = 2016u64;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out = iter.next().expect("--out needs a path"),
            "--seed" => {
                seed = iter
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be a u64");
            }
            other => panic!("unknown argument {other}; expected --check/--out PATH/--seed N"),
        }
    }

    // Check mode shrinks every stage so CI finishes in seconds; the
    // full mode is sized to make run-to-run noise small relative to
    // real regressions.
    let (chains, hops) = if check { (256, 2_000) } else { (1_024, 8_000) };
    let (run_ms, collect_runs, collect_ms) = if check { (60, 1, 40) } else { (400, 3, 80) };
    // Best-of-N repetitions for the two stages whose walls are compared
    // against each other; check mode keeps a single rep for speed.
    let reps = if check { 1 } else { 5 };

    let (events, engine_wall) = bench_engine(chains, hops);
    let engine_stage = stage("engine_events", "events", events, engine_wall, 1, 1);

    // Full mode measures the production default interval; check mode's
    // tiny run has fewer events than the default, so it shrinks the
    // interval to still exercise a mid-run snapshot.
    let ckpt_events = if check {
        50_000
    } else {
        treadmill_core::sweep::DEFAULT_CKPT_EVENTS
    };
    let pair = bench_run_pair(seed, run_ms, ckpt_events, reps);
    let run_stage = stage(
        "single_run",
        "responses",
        pair.responses as u64,
        pair.run_wall,
        1,
        1,
    );

    let overhead_pct = pair.ckpt_secs / pair.run_wall * 100.0;
    let mut ckpt_stage = stage(
        "checkpointed_run",
        "checkpoints",
        pair.ckpts,
        pair.ckpt_wall,
        1,
        1,
    );
    if let Value::Object(obj) = &mut ckpt_stage {
        obj.insert("overhead_pct".to_string(), Value::Float(overhead_pct));
        obj.insert(
            "ckpt_ms".to_string(),
            Value::Float(pair.ckpt_secs * 1e3),
        );
        obj.insert(
            "snapshot_bytes".to_string(),
            Value::UInt(pair.snapshot_bytes as u64),
        );
    }
    let (ckpts, snapshot_bytes) = (pair.ckpts, pair.snapshot_bytes);
    println!(
        "checkpointed_run: {ckpts} checkpoints ({snapshot_bytes} B each), \
         {:.2} ms checkpointing = {overhead_pct:+.1}% of single_run",
        pair.ckpt_secs * 1e3
    );
    // The ≤5% budget is asserted only at full scale: check mode's tiny
    // run makes the delta mostly scheduler noise, and CI must stay
    // load-insensitive.
    assert!(
        check || overhead_pct <= 5.0,
        "checkpoint overhead {overhead_pct:.1}% exceeds the 5% budget"
    );

    let (samples, collect_wall) = bench_collect(seed, collect_runs, collect_ms);
    let collect_stage = stage("collect_tiny", "samples", samples as u64, collect_wall, 1, 1);

    // Stage 5: the sharded parallel executor. The same seeded world
    // runs at 1 worker and at the host's hardware parallelism; events
    // must match exactly (determinism) and the wall ratio is the
    // measured speedup. On a single-core host the ratio is honestly ~1.
    let hw_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let hw_threads = u32::try_from(hw_threads).unwrap_or(u32::MAX);
    let (sh_servers, sh_ms) = if check { (4u32, 30u64) } else { (8, 120) };
    let sh_threads = hw_threads.min(sh_servers);
    let (ev_1, _, wall_1) = bench_sharded(&sharded_world(seed, sh_servers, 4, 16, 150_000.0, sh_ms, 1));
    let (ev_n, _, wall_n) = bench_sharded(&sharded_world(
        seed, sh_servers, 4, 16, 150_000.0, sh_ms, sh_threads,
    ));
    assert_eq!(ev_1, ev_n, "thread count changed the executed event count");
    let mut sharded_stage = stage(
        "engine_events_sharded",
        "events",
        ev_n,
        wall_n,
        u64::from(sh_threads),
        u64::from(sh_servers),
    );
    let speedup = wall_1 / wall_n;
    // One-shard tax: the windowless sharded executor wrapping a single
    // world must cost ≈ nothing over the legacy engine. Best-of-3 on
    // each path; the same seed produces the same events either way.
    let solo = sharded_world(seed, 1, 4, 16, 150_000.0, sh_ms, 1);
    let mut legacy_wall = f64::INFINITY;
    let mut solo_wall = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let legacy = solo.run(0);
        legacy_wall = legacy_wall.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let forced = solo.run_sharded(0);
        solo_wall = solo_wall.min(t.elapsed().as_secs_f64());
        assert_eq!(
            forced.run.events_executed, legacy.run.events_executed,
            "one-shard sharded run diverged from the legacy engine"
        );
    }
    let solo_overhead_pct = (solo_wall / legacy_wall - 1.0) * 100.0;
    if let Value::Object(obj) = &mut sharded_stage {
        obj.insert("speedup_vs_1".to_string(), Value::Float(speedup));
        obj.insert("wall_1thread_ms".to_string(), Value::Float(wall_1 * 1e3));
        obj.insert(
            "one_shard_overhead_pct".to_string(),
            Value::Float(solo_overhead_pct),
        );
    }
    println!(
        "engine_events_sharded: {speedup:.2}x speedup at {sh_threads} threads vs 1, \
         {solo_overhead_pct:+.1}% one-shard overhead vs legacy"
    );

    // Stage 6: the scale stage. Full mode builds the paper-scale world:
    // one million connections across 100 single-server shards.
    let (mw_servers, mw_clients, mw_conns, mw_rps, mw_ms) = if check {
        (10u32, 2usize, 50u32, 20_000.0, 15u64)
    } else {
        (100, 8, 1_250, 40_000.0, 30)
    };
    let total_conns = u64::from(mw_servers) * mw_clients as u64 * u64::from(mw_conns);
    assert!(check || total_conns == 1_000_000, "full-scale world must hold 1M connections");
    let mw_threads = hw_threads.min(mw_servers);
    let mw = sharded_world(seed, mw_servers, mw_clients, mw_conns, mw_rps, mw_ms, mw_threads);
    let (mw_events, mw_resp, mw_wall) = bench_sharded(&mw);
    assert!(mw_resp > 0, "million-connection world delivered nothing");
    let mut mw_stage = stage(
        "million_world",
        "events",
        mw_events,
        mw_wall,
        u64::from(mw_threads),
        u64::from(mw_servers),
    );
    if let Value::Object(obj) = &mut mw_stage {
        obj.insert("connections".to_string(), Value::UInt(total_conns));
        obj.insert("responses".to_string(), Value::UInt(mw_resp as u64));
    }
    println!("million_world: {total_conns} connections, {mw_resp} responses");

    // Stage 7: the screened two-stage sweep against the full factorial
    // it replaces. The threshold keeps the high-tail cells (the numa
    // arm and friends) and screens out the quiet ones.
    let (sc_rps, sc_ms) = if check { (120_000.0, 20u64) } else { (250_000.0, 60) };
    let sc = bench_screened_sweep(seed, sc_rps, sc_ms, 0.2);
    let speedup_vs_full = sc.full_wall / sc.screened_wall;
    let mut screen_stage = stage(
        "screened_sweep",
        "cells",
        sc.simulated,
        sc.screened_wall,
        1,
        1,
    );
    if let Value::Object(obj) = &mut screen_stage {
        obj.insert("cells_simulated".to_string(), Value::UInt(sc.simulated));
        obj.insert("cells_screened_out".to_string(), Value::UInt(sc.screened_out));
        obj.insert(
            "full_factorial_wall_ms".to_string(),
            Value::Float(sc.full_wall * 1e3),
        );
        obj.insert("speedup_vs_full".to_string(), Value::Float(speedup_vs_full));
    }
    println!(
        "screened_sweep: {} of 16 cells simulated ({} screened out), \
         {speedup_vs_full:.2}x vs full factorial",
        sc.simulated, sc.screened_out
    );

    // Stage 8: the static-analysis gate. Same entry point as
    // `tml-lint --check`, timed end to end (walk, scan, parse, graph,
    // reachability, reconcile). The 2 s ceiling is the interactivity
    // contract DESIGN.md promises for pre-commit use.
    let lint_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let lint_baseline = std::fs::read_to_string(lint_root.join("lint-baseline.toml"))
        .ok()
        .and_then(|text| treadmill_lint::baseline::parse(&text).ok())
        .unwrap_or_default();
    let lint_start = Instant::now();
    let lint = treadmill_lint::analyze_workspace(&lint_root, &lint_baseline)
        .expect("workspace lint scan succeeds");
    let lint_wall = lint_start.elapsed().as_secs_f64();
    assert!(
        lint.failures.is_empty() && lint.ratchet_errors.is_empty(),
        "workspace must be lint-clean during the perf smoke"
    );
    assert!(
        lint_wall < 2.0,
        "lint_workspace took {lint_wall:.2}s — the 2s interactivity budget is blown"
    );
    let mut lint_stage = stage(
        "lint_workspace",
        "files",
        lint.files_scanned as u64,
        lint_wall,
        1,
        1,
    );
    if let (Value::Object(obj), Some(sem)) = (&mut lint_stage, lint.semantics.as_ref()) {
        obj.insert("graph_fns".to_string(), Value::UInt(sem.graph.fn_count() as u64));
        obj.insert("graph_edges".to_string(), Value::UInt(sem.edge_count as u64));
    }

    let mut root = Map::new();
    root.insert("schema".to_string(), Value::UInt(2));
    root.insert(
        "mode".to_string(),
        Value::String(if check { "check" } else { "full" }.to_string()),
    );
    root.insert("seed".to_string(), Value::UInt(seed));
    root.insert(
        "benchmarks".to_string(),
        Value::Array(vec![
            engine_stage,
            run_stage,
            ckpt_stage,
            collect_stage,
            sharded_stage,
            mw_stage,
            screen_stage,
            lint_stage,
        ]),
    );
    let json =
        serde_json::to_string_pretty(&Value::Object(root)).expect("serialize benchmark report");
    std::fs::write(&out, &json).expect("write benchmark report");

    // The report must round-trip: a malformed file would silently break
    // downstream trend tracking, so treat it as a hard failure.
    let parsed: Value = serde_json::from_str(&json).expect("report must re-parse");
    let benchmarks = parsed["benchmarks"]
        .as_array()
        .expect("report has a benchmarks array");
    assert_eq!(benchmarks.len(), 8, "expected one entry per stage");
    for b in benchmarks {
        assert!(
            b.get("threads").is_some() && b.get("shards").is_some(),
            "schema 2 entries carry threads and shards"
        );
    }
    println!("wrote {out}");
}
