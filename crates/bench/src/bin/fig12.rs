//! Figure 12: tail-latency improvement from tuning the hardware
//! configuration as the attribution recommends — "before" runs random
//! configurations, "after" pins the recommended one. The paper reports
//! p99 −43% and p99 standard deviation −93%.

use treadmill_bench::{
    banner, cell, collect_dataset, memcached, row, BenchArgs, HIGH_LOAD_RPS,
};
use treadmill_inference::{attribute, validate, TuningPlan};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 12",
        "Before/after tuning: 99th-percentile latency and its spread",
        &args,
    );
    eprintln!("# fitting the p99 model ...");
    let dataset = collect_dataset(&args, memcached(), HIGH_LOAD_RPS);
    let model = attribute(&dataset, 0.99, args.bootstrap_replicates(), args.seed);
    let recommended = model.best_config();
    println!("# recommended configuration: {recommended}");

    let plan = TuningPlan {
        experiments: args.tuning_experiments(),
        clients: args.clients(),
        duration: args.duration(),
        warmup: args.warmup(),
        seed: args.seed,
        ..TuningPlan::new(memcached(), HIGH_LOAD_RPS)
    };
    eprintln!("# validating with {} experiments per arm ...", plan.experiments);
    let outcome = validate(&plan, recommended);

    row(["arm", "experiment", "p50_us", "p99_us"]);
    for (i, (p50, p99)) in outcome
        .before
        .p50s
        .iter()
        .zip(&outcome.before.p99s)
        .enumerate()
    {
        row(["before".to_string(), i.to_string(), cell(*p50, 1), cell(*p99, 1)]);
    }
    for (i, (p50, p99)) in outcome
        .after
        .p50s
        .iter()
        .zip(&outcome.after.p99s)
        .enumerate()
    {
        row(["after".to_string(), i.to_string(), cell(*p50, 1), cell(*p99, 1)]);
    }
    let (b_mean, b_sd) = outcome.before.p99_stats();
    let (a_mean, a_sd) = outcome.after.p99_stats();
    let (b50, b50sd) = outcome.before.p50_stats();
    let (a50, a50sd) = outcome.after.p50_stats();
    println!("# p50: {b50:.1}±{b50sd:.1}us → {a50:.1}±{a50sd:.1}us");
    println!("# p99: {b_mean:.1}±{b_sd:.1}us → {a_mean:.1}±{a_sd:.1}us");
    println!(
        "# p99 reduced {:.0}%, p99 stddev reduced {:.0}% (paper: 43% and 93%)",
        outcome.p99_reduction() * 100.0,
        outcome.p99_stddev_reduction() * 100.0
    );
}
