//! Figure 1: CDF of the number of outstanding requests — open-loop vs
//! closed-loop with 4/8/12 concurrent connections, at 80% utilisation.

use std::collections::BTreeMap;

use treadmill_bench::{banner, cell, row, BenchArgs, SATURATING_LOAD_RPS};
use treadmill_cluster::{ClientSpec, ClusterBuilder, TrafficSource};
use treadmill_core::{ClosedLoopSource, InterArrival, OpenLoopSource};

fn outstanding_cdf(
    sources: Vec<Box<dyn TrafficSource>>,
    connections: u32,
    args: &BenchArgs,
) -> Vec<(u32, f64)> {
    let mut builder = ClusterBuilder::new(treadmill_bench::memcached())
        .seed(args.seed)
        .duration(args.duration())
        .sample_outstanding(true);
    for source in sources {
        builder = builder.client(
            ClientSpec {
                connections,
                ..Default::default()
            },
            source,
        );
    }
    let result = builder.run();
    let warmup = treadmill_sim_core::SimTime::ZERO + args.warmup();
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    let mut total = 0u64;
    for &(t, n) in &result.outstanding {
        if t >= warmup {
            *counts.entry(n).or_default() += 1;
            total += 1;
        }
    }
    let mut cumulative = 0u64;
    counts
        .into_iter()
        .map(|(n, c)| {
            cumulative += c;
            (n, cumulative as f64 / total as f64)
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 1",
        "CDF of outstanding requests: open-loop vs closed-loop (4/8/12 connections) at 80% utilisation",
        &args,
    );
    let mut series: Vec<(String, Vec<(u32, f64)>)> = Vec::new();
    // Open loop: 8 lightly-utilised clients splitting 80% load, so the
    // outstanding count reflects server queueing, not client backlog.
    let open_sources: Vec<Box<dyn TrafficSource>> = (0..8)
        .map(|_| -> Box<dyn TrafficSource> {
            Box::new(OpenLoopSource::new(
                InterArrival::Exponential {
                    rate_rps: SATURATING_LOAD_RPS / 8.0,
                },
                16,
            ))
        })
        .collect();
    series.push((
        "open-loop".to_string(),
        outstanding_cdf(open_sources, 16, &args),
    ));
    for conns in [12u32, 8, 4] {
        series.push((
            format!("closed-loop-{conns}"),
            outstanding_cdf(vec![Box::new(ClosedLoopSource::new(conns))], conns, &args),
        ));
    }
    row(["series", "outstanding", "cdf"]);
    for (name, points) in &series {
        for &(n, f) in points {
            row([name.clone(), n.to_string(), cell(f, 4)]);
        }
    }
    // The headline comparison: max outstanding per series.
    for (name, points) in &series {
        let max = points.last().map(|&(n, _)| n).unwrap_or(0);
        println!("# {name}: max outstanding = {max}");
    }
}
