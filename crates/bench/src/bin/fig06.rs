//! Figure 6: latency distributions measured by Mutilate and Treadmill
//! at 80% utilisation. CloudSuite cannot generate this much load
//! (single client) — reported as a throughput shortfall instead.

use treadmill_baselines::{cloudsuite, mutilate, run_profile, treadmill_shape};
use treadmill_bench::{banner, cell, memcached, row, BenchArgs, SATURATING_LOAD_RPS};
use treadmill_cluster::HardwareConfig;
use treadmill_stats::quantile::quantile;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 6",
        "Measured latency CDFs vs tcpdump at ~85% utilisation (950k RPS)",
        &args,
    );
    // CloudSuite first: show it cannot saturate (as in the paper, where
    // it is omitted from the figure for this reason).
    let cs = run_profile(
        &cloudsuite(),
        memcached(),
        SATURATING_LOAD_RPS,
        HardwareConfig::default(),
        args.duration(),
        args.warmup(),
        args.seed,
    );
    println!(
        "# CloudSuite achieved only {:.0} of {} RPS ({:.0}%) — excluded from the figure",
        cs.achieved_rps,
        SATURATING_LOAD_RPS,
        cs.achieved_rps / SATURATING_LOAD_RPS * 100.0
    );
    row(["series", "latency_us", "cdf"]);
    for profile in [mutilate(), treadmill_shape()] {
        let report = run_profile(
            &profile,
            memcached(),
            SATURATING_LOAD_RPS,
            HardwareConfig::default(),
            args.duration(),
            args.warmup(),
            args.seed,
        );
        let mut measured = report.measured_latencies_us.clone();
        measured.sort_by(f64::total_cmp);
        let stride = (measured.len() / 120).max(1);
        for (i, &v) in measured.iter().enumerate().step_by(stride) {
            row([
                profile.name.to_string(),
                cell(v, 1),
                cell((i + 1) as f64 / measured.len() as f64, 4),
            ]);
        }
        for &(v, f) in report.ground_truth.cdf_points(120).iter() {
            row([format!("tcpdump@{}", profile.name), cell(v, 1), cell(f, 4)]);
        }
        let measured_p99 = quantile(&report.measured_latencies_us, 0.99);
        println!(
            "# {}: achieved {:.0} RPS, measured p99 = {measured_p99:.1}us, tcpdump p99 = {:.1}us",
            profile.name,
            report.achieved_rps,
            report.ground_truth.quantile_us(0.99),
        );
    }
}
