//! Extension experiment 7: the DVFS mechanism behind Finding 3, made
//! visible.
//!
//! Traces every governor frequency transition at low and high load
//! under the `ondemand` policy, and prints per-core transition counts
//! plus the time-in-frequency distribution — the paper's explanation
//! ("requests have a higher probability of experiencing the overhead of
//! transitioning from lower to higher frequency steps" at low load)
//! as raw data.

use std::collections::BTreeMap;

use treadmill_bench::{banner, cell, memcached, row, BenchArgs, HIGH_LOAD_RPS, LOW_LOAD_RPS};
use treadmill_cluster::{ClientSpec, ClusterBuilder};
use treadmill_core::{InterArrival, OpenLoopSource};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Extension 7",
        "DVFS transitions under the ondemand governor, low vs high load",
        &args,
    );
    row(["load", "transitions", "transitions_per_core_sec", "distinct_freqs"]);
    for (label, rps) in [("low", LOW_LOAD_RPS), ("high", HIGH_LOAD_RPS)] {
        let mut builder = ClusterBuilder::new(memcached())
            .seed(args.seed)
            .duration(args.duration())
            .trace_frequencies(true);
        for _ in 0..8 {
            builder = builder.client(
                ClientSpec::default(),
                Box::new(OpenLoopSource::new(
                    InterArrival::Exponential { rate_rps: rps / 8.0 },
                    16,
                )),
            );
        }
        let result = builder.run();
        let seconds = result.sending_stopped_at.as_secs_f64();
        let mut freqs: BTreeMap<u64, usize> = BTreeMap::new();
        for event in &result.frequency_trace {
            *freqs.entry((event.ghz * 10.0).round() as u64).or_default() += 1;
        }
        row([
            label.to_string(),
            result.frequency_trace.len().to_string(),
            cell(result.frequency_trace.len() as f64 / 16.0 / seconds, 1),
            freqs.len().to_string(),
        ]);
        for (deci_ghz, count) in freqs {
            println!("#   {label}: {} transitions to {:.1} GHz", count, deci_ghz as f64 / 10.0);
        }
    }
    println!("# low load: the governor parks cores at low frequency steps, so every request");
    println!("# executes slowly (Finding 3); high load: utilisation stays above the");
    println!("# up-threshold and cores never leave the maximum frequency");
}
