//! Table IV: quantile-regression coefficients for Memcached at high
//! utilisation — estimate, bootstrap standard error and p-value at the
//! 50th/95th/99th percentiles for every factor and interaction.

use treadmill_bench::{banner, cell, collect_dataset, memcached, row, BenchArgs, HIGH_LOAD_RPS};
use treadmill_inference::attribution_table;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Table IV",
        "Quantile regression for Memcached at high utilisation",
        &args,
    );
    eprintln!(
        "# collecting {} experiments ...",
        16 * args.runs_per_config()
    );
    let dataset = collect_dataset(&args, memcached(), HIGH_LOAD_RPS);
    let results = attribution_table(&dataset, args.bootstrap_replicates(), args.seed);

    let mut header = vec!["Factor".to_string()];
    for result in &results {
        let pct = (result.tau * 100.0).round();
        header.push(format!("p{pct}-Est(us)"));
        header.push(format!("p{pct}-StdErr"));
        header.push(format!("p{pct}-p-value"));
    }
    row(header);
    let terms = results[0].coefficients.len();
    for t in 0..terms {
        let mut fields = vec![results[0].coefficients[t].term.clone()];
        for result in &results {
            let c = &result.coefficients[t];
            fields.push(cell(c.estimate, 1));
            fields.push(cell(c.std_error, 1));
            let sig = if c.p_value < 0.05 { "*" } else { "" };
            fields.push(format!("{:.2e}{sig}", c.p_value));
        }
        row(fields);
    }
    println!("# '*' marks p < 0.05 (bold rows in the paper)");
}
