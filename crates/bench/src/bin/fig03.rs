//! Figure 3: latency decomposition (server / client / network) vs
//! server utilisation for single-client and multi-client setups.

use treadmill_bench::{banner, cell, row, BenchArgs};
use treadmill_cluster::{ClientSpec, ClusterBuilder, ResponseRecord};
use treadmill_core::{InterArrival, OpenLoopSource};
use treadmill_sim_core::SimTime;

struct Decomposition {
    server: f64,
    client: f64,
    network: f64,
    client_p95: f64,
}

fn run_setup(args: &BenchArgs, rps: f64, clients: usize, per_op_ns: f64) -> Decomposition {
    let mut builder = ClusterBuilder::new(treadmill_bench::memcached())
        .seed(args.seed)
        .duration(args.duration());
    for _ in 0..clients {
        builder = builder.client(
            ClientSpec {
                send_cpu_ns: per_op_ns,
                recv_cpu_ns: per_op_ns,
                ..Default::default()
            },
            Box::new(OpenLoopSource::new(
                InterArrival::Exponential {
                    rate_rps: rps / clients as f64,
                },
                16,
            )),
        );
    }
    let result = builder.run();
    let warmup = SimTime::ZERO + args.warmup();
    let records: Vec<&ResponseRecord> = result
        .all_records()
        .filter(|r| r.t_generated >= warmup)
        .collect();
    let n = records.len() as f64;
    let client_components: Vec<f64> =
        records.iter().map(|r| r.client_time_us()).collect();
    Decomposition {
        server: records.iter().map(|r| r.server_time_us()).sum::<f64>() / n,
        client: client_components.iter().sum::<f64>() / n,
        network: records.iter().map(|r| r.network_time_us()).sum::<f64>() / n,
        client_p95: treadmill_stats::quantile::quantile(&client_components, 0.95),
    }
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 3",
        "Mean latency decomposition vs utilisation: single-client vs multi-client",
        &args,
    );
    row([
        "setup",
        "utilisation",
        "server_us",
        "client_us",
        "client_p95_us",
        "network_us",
    ]);
    for util_pct in [70, 75, 80, 85, 90, 95] {
        let rps = 10_000.0 * f64::from(util_pct);
        // Single-client setup: one machine whose CPU capacity matches the
        // server's (per-op cost such that client util tracks server util).
        let single = run_setup(&args, rps, 1, 500.0);
        row([
            "single-client".to_string(),
            format!("{util_pct}%"),
            cell(single.server, 1),
            cell(single.client, 1),
            cell(single.client_p95, 1),
            cell(single.network, 1),
        ]);
    }
    for util_pct in [70, 75, 80, 85, 90, 95] {
        let rps = 10_000.0 * f64::from(util_pct);
        let multi = run_setup(&args, rps, 8, 800.0);
        row([
            "multi-client".to_string(),
            format!("{util_pct}%"),
            cell(multi.server, 1),
            cell(multi.client, 1),
            cell(multi.client_p95, 1),
            cell(multi.network, 1),
        ]);
    }
}
