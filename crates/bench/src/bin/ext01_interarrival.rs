//! Extension experiment 1: inter-arrival process ablation.
//!
//! The paper chooses exponential inter-arrivals because they match
//! Google production measurements (§III-A). This experiment shows why
//! the choice matters: at the same mean rate, deterministic pacing
//! underestimates queueing (no burstiness) while exponential arrivals
//! exercise the tail the production system would see.

use treadmill_bench::{banner, cell, memcached, row, BenchArgs, SATURATING_LOAD_RPS};
use treadmill_cluster::{ClientSpec, ClusterBuilder};
use treadmill_core::{InterArrival, OpenLoopSource};
use treadmill_sim_core::SimTime;
use treadmill_stats::quantile::quantiles;

type MakeProcess = fn(f64) -> InterArrival;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Extension 1",
        "Tail latency vs inter-arrival process at ~85% utilisation",
        &args,
    );
    row(["process", "p50_us", "p95_us", "p99_us", "p999_us"]);
    let processes: [(&str, MakeProcess); 3] = [
        ("exponential", |r| InterArrival::Exponential { rate_rps: r }),
        ("uniform", |r| InterArrival::Uniform { rate_rps: r }),
        ("deterministic", |r| InterArrival::Deterministic { rate_rps: r }),
    ];
    for (name, make) in processes {
        // A single (very fast) client: superposing many independent
        // paced streams would look Poisson again, hiding the ablation.
        let result = ClusterBuilder::new(memcached())
            .seed(args.seed)
            .duration(args.duration())
            .client(
                ClientSpec {
                    send_cpu_ns: 200.0,
                    recv_cpu_ns: 200.0,
                    connections: 64,
                    ..Default::default()
                },
                Box::new(OpenLoopSource::new(make(SATURATING_LOAD_RPS), 64)),
            )
            .run();
        let lat = result.user_latencies_us(SimTime::ZERO + args.warmup());
        let qs = quantiles(&lat, &[0.5, 0.95, 0.99, 0.999]);
        row([
            name.to_string(),
            cell(qs[0], 1),
            cell(qs[1], 1),
            cell(qs[2], 1),
            cell(qs[3], 1),
        ]);
    }
    println!("# deterministic pacing underestimates the tail the production (Poisson) arrivals produce");
}
