//! Figure 7: estimated Memcached latency for all 16 hardware
//! configurations at the 50/90/95/99th percentiles, under low and high
//! load, from the fitted quantile-regression models.

use treadmill_bench::{
    banner, cell, collect_dataset, memcached, row, BenchArgs, FIGURE_PERCENTILES,
    HIGH_LOAD_RPS, LOW_LOAD_RPS,
};
use treadmill_cluster::HardwareConfig;
use treadmill_inference::attribute;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 7",
        "Estimated Memcached latency per configuration (quantile-regression model)",
        &args,
    );
    row(["load", "percentile", "config", "label", "latency_us"]);
    for (load, rps) in [("low", LOW_LOAD_RPS), ("high", HIGH_LOAD_RPS)] {
        eprintln!("# collecting {load}-load dataset ...");
        let dataset = collect_dataset(&args, memcached(), rps);
        for &tau in &FIGURE_PERCENTILES {
            let model = attribute(&dataset, tau, args.bootstrap_replicates(), args.seed);
            for (i, pred) in model.predictions_all_configs().into_iter().enumerate() {
                row([
                    load.to_string(),
                    format!("p{}", (tau * 100.0).round()),
                    i.to_string(),
                    HardwareConfig::from_index(i).to_string(),
                    cell(pred, 1),
                ]);
            }
        }
    }
}
