//! Extension experiment 4: static vs adaptive histograms under a load
//! ramp.
//!
//! §II-B: "non-adaptive histogram binning will break when the server is
//! highly utilized, because the latency will keep increasing before
//! reaching the steady state thus exceeds the upper bound". This
//! experiment ramps the load across runs and reports each design's p99
//! error against exact sample quantiles.

use treadmill_bench::{banner, cell, memcached, row, BenchArgs};
use treadmill_cluster::{ClientSpec, ClusterBuilder};
use treadmill_core::{InterArrival, OpenLoopSource};
use treadmill_sim_core::SimTime;
use treadmill_stats::quantile::quantile;
use treadmill_stats::{AdaptiveHistogram, StaticHistogram};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Extension 4",
        "p99 error of static vs adaptive histograms as utilisation grows",
        &args,
    );
    // A plausible static configuration, calibrated at low load: 0-180us
    // covers the low-load distribution comfortably.
    row([
        "load_rps",
        "exact_p99",
        "adaptive_p99",
        "adaptive_err",
        "static_p99",
        "static_err",
        "static_clipped",
    ]);
    for rps in [100_000.0, 400_000.0, 700_000.0, 900_000.0, 950_000.0] {
        let mut builder = ClusterBuilder::new(memcached())
            .seed(args.seed)
            .duration(args.duration());
        for _ in 0..8 {
            builder = builder.client(
                ClientSpec::default(),
                Box::new(OpenLoopSource::new(
                    InterArrival::Exponential { rate_rps: rps / 8.0 },
                    16,
                )),
            );
        }
        let result = builder.run();
        let lat = result.user_latencies_us(SimTime::ZERO + args.warmup());
        let exact = quantile(&lat, 0.99);
        let mut adaptive = AdaptiveHistogram::new();
        let mut fixed = StaticHistogram::new(0.0, 180.0, 180);
        for &v in &lat {
            adaptive.record(v);
            fixed.record(v);
        }
        let a = adaptive.quantile(0.99);
        let s = fixed.quantile(0.99);
        row([
            format!("{rps:.0}"),
            cell(exact, 1),
            cell(a, 1),
            cell(a - exact, 1),
            cell(s, 1),
            cell(s - exact, 1),
            fixed.clipped().to_string(),
        ]);
    }
    println!("# the static histogram saturates at its upper bound once the tail outgrows it");
}
