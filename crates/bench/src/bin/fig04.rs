//! Figure 4: performance hysteresis — each run's p99 estimate converges
//! with sample count, but different runs converge to different values.

use treadmill_bench::{banner, cell, row, BenchArgs, HIGH_LOAD_RPS};
use treadmill_core::LoadTest;
use treadmill_stats::quantile::quantile_of_sorted;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 4",
        "p99 estimate vs sample count across 4 restarts of the same experiment",
        &args,
    );
    // Use the interleaved-NUMA configuration: its allocator-dependent
    // buffer placement is the strongest hysteresis source.
    let test = LoadTest::new(treadmill_bench::memcached(), HIGH_LOAD_RPS)
        .hardware(treadmill_cluster::HardwareConfig::from_index(1))
        .clients(args.clients())
        .duration(args.duration())
        .warmup(args.warmup())
        .seed(args.seed);
    let mut traces: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut finals = Vec::new();
    for run in 0..4u64 {
        let report = test.run(run);
        let mut samples = report.pooled_latencies();
        // Keep delivery order semantics: progressive estimate over the
        // stream, checkpointed every 2.5% of samples.
        let checkpoints = 40usize;
        let step = (samples.len() / checkpoints).max(1);
        let mut trace = Vec::new();
        let mut sorted: Vec<f64> = Vec::with_capacity(samples.len());
        for (i, v) in samples.drain(..).enumerate() {
            let pos = sorted.partition_point(|&x| x <= v);
            sorted.insert(pos, v);
            if (i + 1) % step == 0 {
                trace.push((i + 1, quantile_of_sorted(&sorted, 0.99)));
            }
        }
        finals.push(quantile_of_sorted(&sorted, 0.99));
        traces.push(trace);
    }
    row(["run", "samples", "p99_us"]);
    for (run, trace) in traces.iter().enumerate() {
        for &(n, p99) in trace {
            row([format!("run{run}"), n.to_string(), cell(p99, 1)]);
        }
    }
    let avg: f64 = finals.iter().sum::<f64>() / finals.len() as f64;
    for (run, value) in finals.iter().enumerate() {
        println!(
            "# run{run} converged to {value:.1}us ({:+.1}% vs average {avg:.1}us)",
            (value / avg - 1.0) * 100.0
        );
    }
}
