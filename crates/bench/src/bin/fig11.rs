//! Figure 11: pseudo-R² of the quantile-regression models at various
//! load levels and percentiles (the paper reports ≥0.90 everywhere).

use treadmill_bench::{
    banner, cell, collect_dataset, mcrouter, memcached, row, BenchArgs,
    FIGURE_PERCENTILES, HIGH_LOAD_RPS, LOW_LOAD_RPS,
};
use treadmill_inference::{attribute, model_pseudo_r_squared};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 11",
        "Pseudo-R² (Eq. 2) of the fitted models per workload, load level and percentile",
        &args,
    );
    row(["workload", "load", "percentile", "pseudo_r2"]);
    for (name, workload) in [("memcached", memcached()), ("mcrouter", mcrouter())] {
        for (load, rps) in [("low", LOW_LOAD_RPS), ("high", HIGH_LOAD_RPS)] {
            eprintln!("# collecting {name} {load}-load dataset ...");
            let dataset = collect_dataset(&args, workload.clone(), rps);
            for &tau in &FIGURE_PERCENTILES {
                let model =
                    attribute(&dataset, tau, args.bootstrap_replicates(), args.seed);
                let r2 = model_pseudo_r_squared(&dataset, &model);
                row([
                    name.to_string(),
                    load.to_string(),
                    format!("p{}", (tau * 100.0).round()),
                    cell(r2, 3),
                ]);
            }
        }
    }
}
