//! Extension 9: fault-injection sweep — how injected packet loss and
//! server stalls move the measured tail, and how client-side timeouts /
//! retries / hedging recover (or censor) it.
//!
//! Sweeps uplink-loss and stall-rate levels at a fixed load, once with
//! a passive client and once with a timeout+retry policy, and writes
//! `EXT09_faults.json` with p50/p99, loss fraction and the fault
//! counters for every point.
//!
//! Usage: `ext09_faults [--check] [--out PATH] [--seed N] [--regen-golden]`
//!
//! `--check` runs a reduced matrix and asserts the robustness
//! invariants CI cares about:
//!
//! 1. a zero-probability fault config is bit-identical to the plain
//!    engine (the fault layer must be free when off);
//! 2. a faulty run is reproducible: same seed, same plan ⇒ same bits
//!    and same fault counters;
//! 3. a factorial dataset with missing cells completes attribution via
//!    the IRLS fallback instead of panicking.
//!
//! `--regen-golden` (requires `TREADMILL_REGEN_GOLDEN=1`) re-runs the
//! golden-seed scenario and prints the constant block for
//! `tests/golden_seed.rs`, so an intentional physics change can refresh
//! the fixture in one command.

use std::sync::Arc;

use serde_json::{Map, Value};
use treadmill_cluster::{FaultSpec, RetryPolicy};
use treadmill_core::{LoadTest, LoadTestReport};
use treadmill_sim_core::SimDuration;
use treadmill_workloads::Memcached;

fn base_test(seed: u64, duration_ms: u64) -> LoadTest {
    LoadTest::new(Arc::new(Memcached::default()), 250_000.0)
        .clients(4)
        .duration(SimDuration::from_millis(duration_ms))
        .warmup(SimDuration::from_millis(duration_ms / 4))
        .seed(seed)
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        timeout_us: 2_000.0,
        max_retries: 2,
        hedge_after_us: 1_500.0,
        ..Default::default()
    }
}

fn point(label: &str, loss: f64, stall_hz: f64, report: &LoadTestReport) -> Value {
    let faults = &report.run.fault_summary;
    let mut obj = Map::new();
    obj.insert("policy".to_string(), Value::String(label.to_string()));
    obj.insert("uplink_loss".to_string(), Value::Float(loss));
    obj.insert("stall_rate_hz".to_string(), Value::Float(stall_hz));
    obj.insert("p50_us".to_string(), Value::Float(report.aggregated.p50));
    obj.insert("p99_us".to_string(), Value::Float(report.aggregated.p99));
    obj.insert(
        "loss_fraction".to_string(),
        Value::Float(report.loss_fraction()),
    );
    obj.insert("drops".to_string(), Value::UInt(faults.total_drops()));
    obj.insert("retries".to_string(), Value::UInt(faults.retries));
    obj.insert("hedges".to_string(), Value::UInt(faults.hedges));
    obj.insert("timeouts".to_string(), Value::UInt(faults.timeouts));
    obj.insert(
        "failed_requests".to_string(),
        Value::UInt(faults.failed_requests),
    );
    println!(
        "{label:>7} loss={loss:<5} stall={stall_hz:>5}Hz  p99 {:>8.1}us  lost {:>6.3}%  \
         retries {} hedges {} timeouts {}",
        report.aggregated.p99,
        report.loss_fraction() * 100.0,
        faults.retries,
        faults.hedges,
        faults.timeouts
    );
    Value::Object(obj)
}

fn sweep(seed: u64, duration_ms: u64, losses: &[f64], stalls: &[f64]) -> Vec<Value> {
    let mut points = Vec::new();
    for &loss in losses {
        for &stall_hz in stalls {
            let spec = FaultSpec {
                uplink_loss: loss,
                downlink_loss: loss / 2.0,
                stall_rate_hz: stall_hz,
                stall_us: 500.0,
                ..Default::default()
            };
            let passive = base_test(seed, duration_ms).faults(spec).run(0);
            points.push(point("passive", loss, stall_hz, &passive));
            let robust = base_test(seed, duration_ms)
                .faults(spec)
                .retry_policy(retry_policy())
                .run(0);
            points.push(point("robust", loss, stall_hz, &robust));
        }
    }
    points
}

/// Invariant 1: configuring all-zero fault probabilities and a disabled
/// retry policy must not perturb a single bit of the plain engine.
fn check_zero_fault_identity(seed: u64, duration_ms: u64) {
    let plain = base_test(seed, duration_ms).run(0);
    let gated = base_test(seed, duration_ms)
        .faults(FaultSpec::default())
        .retry_policy(RetryPolicy::default())
        .run(0);
    assert_eq!(
        plain.aggregated.p99.to_bits(),
        gated.aggregated.p99.to_bits(),
        "zero-probability faults changed the p99 bits"
    );
    assert_eq!(
        plain.aggregated.mean.to_bits(),
        gated.aggregated.mean.to_bits()
    );
    assert_eq!(plain.run.total_responses(), gated.run.total_responses());
    assert_eq!(plain.run.events_executed, gated.run.events_executed);
    assert!(gated.run.fault_summary.is_quiet());
    println!("check: zero-fault config is bit-identical to the plain engine");
}

/// Invariant 2: a faulty run is deterministic — same seed, same plan,
/// same bits and the same fault counters.
fn check_faulty_reproducibility(seed: u64, duration_ms: u64) {
    let spec = FaultSpec {
        uplink_loss: 0.03,
        downlink_loss: 0.01,
        stall_rate_hz: 200.0,
        stall_us: 800.0,
        crash_rate_hz: 5.0,
        ..Default::default()
    };
    let make = || {
        base_test(seed, duration_ms)
            .faults(spec)
            .retry_policy(retry_policy())
            .run(0)
    };
    let a = make();
    let b = make();
    assert_eq!(
        a.aggregated.p99.to_bits(),
        b.aggregated.p99.to_bits(),
        "faulty run not reproducible"
    );
    assert_eq!(a.run.fault_summary, b.run.fault_summary);
    assert_eq!(a.run.total_responses(), b.run.total_responses());
    assert!(
        !a.run.fault_summary.is_quiet(),
        "fault config injected nothing"
    );
    println!(
        "check: faulty run reproducible ({} drops, {} retries)",
        a.run.fault_summary.total_drops(),
        a.run.fault_summary.retries
    );
}

/// Invariant 3: attribution with missing factorial cells degrades to
/// the IRLS fallback instead of panicking.
fn check_graceful_attribution() {
    use rand::{Rng, SeedableRng};
    use treadmill_cluster::HardwareConfig;
    use treadmill_inference::{attribute_graceful, Dataset};
    use treadmill_stats::regression::Cell;

    let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
    let cells = (0..16)
        .filter(|&i| i != 5)
        .map(|i| {
            let lv = HardwareConfig::from_index(i).levels();
            let center = 80.0 + 30.0 * lv[0] - 8.0 * lv[1];
            let runs: Vec<Vec<f64>> = (0..6)
                .map(|_| (0..80).map(|_| center + rng.gen_range(-1.0..1.0)).collect())
                .collect();
            Cell::new(lv, runs)
        })
        .collect();
    let dataset = Dataset {
        cells,
        target_rps: 1.0,
        workload_name: "synthetic".into(),
    };
    let outcome = attribute_graceful(&dataset, 0.5, 30, 7);
    assert!(outcome.degraded, "missing cell must flag degradation");
    assert!(
        outcome.warnings.iter().any(|w| w.contains("IRLS")),
        "warnings must name the fallback: {:?}",
        outcome.warnings
    );
    let predictions = outcome.result.predictions_all_configs();
    assert!(predictions.iter().all(|p| p.is_finite()));
    println!(
        "check: 15-cell attribution degraded gracefully ({} warnings)",
        outcome.warnings.len()
    );
}

/// Re-runs the golden-seed scenario and prints the constants block for
/// `tests/golden_seed.rs`. Gated behind `TREADMILL_REGEN_GOLDEN=1` so a
/// stray invocation cannot be mistaken for an intentional refresh.
fn regen_golden() {
    if std::env::var("TREADMILL_REGEN_GOLDEN").as_deref() != Ok("1") {
        eprintln!(
            "refusing to regenerate golden constants: set TREADMILL_REGEN_GOLDEN=1 \
             and update tests/golden_seed.rs in the same commit, saying why"
        );
        std::process::exit(2);
    }
    let report = LoadTest::new(Arc::new(Memcached::default()), 250_000.0)
        .clients(4)
        .duration(SimDuration::from_millis(120))
        .warmup(SimDuration::from_millis(30))
        .seed(42)
        .run(0);
    let agg = &report.aggregated;
    println!("// Paste into tests/golden_seed.rs (seed 42, Memcached, 250k RPS):");
    for (name, value) in [
        ("mean", agg.mean),
        ("p50", agg.p50),
        ("p90", agg.p90),
        ("p95", agg.p95),
        ("p99", agg.p99),
        ("p999", agg.p999),
        ("min", agg.min),
        ("max", agg.max),
    ] {
        println!("        (\"{name}\", agg.{name}, 0x{:016x}),", value.to_bits());
    }
    println!("    assert_eq!(agg.count, {});", agg.count);
    println!(
        "    assert_eq!(report.run.total_responses(), {});",
        report.run.total_responses()
    );
    println!(
        "    assert_eq!(report.run.events_executed, {});",
        report.run.events_executed
    );
}

fn main() {
    let mut check = false;
    let mut regen = false;
    let mut out = "EXT09_faults.json".to_string();
    let mut seed = 2016u64;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--regen-golden" => regen = true,
            "--out" => out = iter.next().expect("--out needs a path"),
            "--seed" => {
                seed = iter
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be a u64");
            }
            other => panic!(
                "unknown argument {other}; expected --check/--regen-golden/--out PATH/--seed N"
            ),
        }
    }
    if regen {
        regen_golden();
        return;
    }

    let duration_ms = if check { 60 } else { 250 };
    check_zero_fault_identity(seed, duration_ms);
    check_faulty_reproducibility(seed, duration_ms);
    check_graceful_attribution();

    let (losses, stalls): (Vec<f64>, Vec<f64>) = if check {
        (vec![0.0, 0.05], vec![0.0, 200.0])
    } else {
        (vec![0.0, 0.01, 0.05, 0.10], vec![0.0, 100.0, 500.0])
    };
    let points = sweep(seed, duration_ms, &losses, &stalls);

    let mut root = Map::new();
    root.insert("schema".to_string(), Value::UInt(1));
    root.insert(
        "mode".to_string(),
        Value::String(if check { "check" } else { "full" }.to_string()),
    );
    root.insert("seed".to_string(), Value::UInt(seed));
    root.insert("points".to_string(), Value::Array(points));
    let json =
        serde_json::to_string_pretty(&Value::Object(root)).expect("serialize fault sweep");
    std::fs::write(&out, &json).expect("write fault sweep");
    let parsed: Value = serde_json::from_str(&json).expect("report must re-parse");
    assert!(
        !parsed["points"].as_array().expect("points array").is_empty(),
        "sweep produced no points"
    );
    println!("wrote {out}");
}
