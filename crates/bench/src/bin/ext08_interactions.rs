//! Extension experiment 8: do the interactions matter? (Finding 5,
//! quantified.)
//!
//! Fits attribution models truncated at each interaction order and
//! reports their pseudo-R²: if interactions carry real effects, the
//! truncated models must explain visibly less of the observed quantile
//! variation than the paper's saturated Eq. 1.

use treadmill_bench::{banner, cell, collect_dataset, memcached, row, BenchArgs, HIGH_LOAD_RPS};
use treadmill_inference::model_comparison;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Extension 8",
        "Pseudo-R² of interaction-truncated models (memcached, high load)",
        &args,
    );
    eprintln!("# collecting dataset ...");
    let dataset = collect_dataset(&args, memcached(), HIGH_LOAD_RPS);
    row(["percentile", "order", "terms", "pseudo_r2"]);
    for &tau in &[0.5, 0.99] {
        for entry in model_comparison(&dataset, tau) {
            row([
                format!("p{}", (tau * 100.0).round()),
                entry.max_order.to_string(),
                entry.terms.to_string(),
                cell(entry.pseudo_r_squared, 3),
            ]);
        }
    }
    println!("# order 1 = main effects only … order 4 = the paper's saturated Eq. 1");
}
