//! Extension experiment 6: how much of the closed-loop bias does
//! post-hoc coordinated-omission correction recover?
//!
//! The wrk2/HdrHistogram school corrects closed-loop measurements by
//! backfilling the sends the stalled workers omitted. This experiment
//! applies that correction to the Mutilate-like tester's samples and
//! compares against the open-loop (Treadmill) measurement of the same
//! system — showing the correction helps but cannot reconstruct the
//! queueing the unsent requests would have caused, which is the paper's
//! argument for open-loop generation in the first place.

use treadmill_baselines::{mutilate, run_profile, treadmill_shape};
use treadmill_bench::{banner, cell, memcached, row, BenchArgs, SATURATING_LOAD_RPS};
use treadmill_cluster::HardwareConfig;
use treadmill_core::omission::correction_report;
use treadmill_stats::quantile::quantile;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Extension 6",
        "Coordinated-omission correction of closed-loop measurements (~85% util)",
        &args,
    );
    let mu = run_profile(
        &mutilate(),
        memcached(),
        SATURATING_LOAD_RPS,
        HardwareConfig::default(),
        args.duration(),
        args.warmup(),
        args.seed,
    );
    let tm = run_profile(
        &treadmill_shape(),
        memcached(),
        SATURATING_LOAD_RPS,
        HardwareConfig::default(),
        args.duration(),
        args.warmup(),
        args.seed,
    );
    // Each Mutilate connection owns rate / (clients × conns) of the
    // schedule: that is the per-connection intended send interval.
    let profile = mutilate();
    let conns = profile.clients as f64 * f64::from(profile.connections_per_client);
    let interval_us = 1e6 / (SATURATING_LOAD_RPS / conns);
    let report = correction_report(&mu.measured_latencies_us, interval_us);

    row(["measurement", "p50_us", "p99_us", "samples"]);
    row([
        "mutilate (raw)".to_string(),
        cell(quantile(&mu.measured_latencies_us, 0.5), 1),
        cell(report.p99_before, 1),
        report.original_samples.to_string(),
    ]);
    row([
        "mutilate (CO-corrected)".to_string(),
        "-".to_string(),
        cell(report.p99_after, 1),
        report.corrected_samples.to_string(),
    ]);
    row([
        "treadmill (open loop)".to_string(),
        cell(quantile(&tm.measured_latencies_us, 0.5), 1),
        cell(quantile(&tm.measured_latencies_us, 0.99), 1),
        tm.measured_latencies_us.len().to_string(),
    ]);
    let open_p99 = quantile(&tm.measured_latencies_us, 0.99);
    let recovered =
        (report.p99_after - report.p99_before) / (open_p99 - report.p99_before) * 100.0;
    println!("# correction moves the p99 by {recovered:.0}% of the gap to the open-loop value");
    println!(
        "# at microsecond scale the backfilled samples are mid-range (stalls are only a"
    );
    println!(
        "# few intervals long), so the correction can even dilute the tail — it cannot"
    );
    println!(
        "# reconstruct the server-side queueing the unsent requests would have caused,"
    );
    println!("# which is the paper's case for open-loop generation");
}
