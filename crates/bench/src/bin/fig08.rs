//! Figure 8: average latency impact of turning each factor to its high
//! level, for Memcached, at low and high load.

use treadmill_bench::{
    banner, cell, collect_dataset, memcached, row, BenchArgs, FIGURE_PERCENTILES,
    HIGH_LOAD_RPS, LOW_LOAD_RPS,
};
use treadmill_inference::{attribute, average_factor_impacts};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 8",
        "Average per-factor latency impact for Memcached (negative = improvement)",
        &args,
    );
    row(["load", "percentile", "factor", "impact_us"]);
    for (load, rps) in [("low", LOW_LOAD_RPS), ("high", HIGH_LOAD_RPS)] {
        eprintln!("# collecting {load}-load dataset ...");
        let dataset = collect_dataset(&args, memcached(), rps);
        for &tau in &FIGURE_PERCENTILES {
            let model = attribute(&dataset, tau, args.bootstrap_replicates(), args.seed);
            for impact in average_factor_impacts(&model) {
                row([
                    load.to_string(),
                    format!("p{}", (tau * 100.0).round()),
                    impact.factor.to_string(),
                    cell(impact.average_impact_us, 1),
                ]);
            }
        }
    }
}
