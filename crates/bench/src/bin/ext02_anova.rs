//! Extension experiment 2: why quantile regression instead of ANOVA.
//!
//! §IV-A argues classic ANOVA "can only attribute the variance of the
//! sample means" and assumes normality (citing Oliveira et al.). This
//! experiment runs both on the same factorial dataset: OLS on the
//! per-experiment means, quantile regression at p99 — and shows the
//! NUMA factor's tail effect is systematically larger than its mean
//! effect, which mean-based attribution undersells.

use treadmill_bench::{banner, cell, collect_dataset, memcached, row, BenchArgs, HIGH_LOAD_RPS};
use treadmill_inference::attribute;
use treadmill_stats::linalg::Matrix;
use treadmill_stats::regression::{anova, ols_fit, FactorialDesign};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Extension 2",
        "OLS/ANOVA (means) vs quantile regression (p99) on the same campaign",
        &args,
    );
    eprintln!("# collecting dataset ...");
    let dataset = collect_dataset(&args, memcached(), HIGH_LOAD_RPS);

    // OLS over per-experiment mean latencies.
    let design = FactorialDesign::full(&["numa", "turbo", "dvfs", "nic"]);
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for cl in &dataset.cells {
        for run in cl.runs() {
            rows.push(cl.levels.clone());
            y.push(run.iter().sum::<f64>() / run.len() as f64);
        }
    }
    let matrix = {
        let mut m = Matrix::zeros(rows.len(), design.num_terms());
        for (r, levels) in rows.iter().enumerate() {
            for (c, v) in design.row(levels).into_iter().enumerate() {
                m[(r, c)] = v;
            }
        }
        m
    };
    let ols = ols_fit(&matrix, &y, &design.term_labels()).expect("well-posed");
    let qr = attribute(&dataset, 0.99, args.bootstrap_replicates(), args.seed);

    row(["term", "mean_effect_us(OLS)", "p99_effect_us(QR)", "ratio"]);
    for (o, q) in ols.coefficients.iter().zip(&qr.coefficients) {
        if o.term == "(Intercept)" {
            continue;
        }
        let ratio = if o.estimate.abs() > 0.2 {
            format!("{:.1}", q.estimate / o.estimate)
        } else {
            "-".to_string()
        };
        row([o.term.clone(), cell(o.estimate, 1), cell(q.estimate, 1), ratio]);
    }
    println!("# OLS R2 = {:.3}; factors act multiplicatively on the tail, so the", ols.r_squared);
    println!("# p99 effect of queue-sensitive factors exceeds their mean effect");

    // Classic ANOVA decomposition of the per-experiment means.
    let observations: Vec<(Vec<f64>, f64)> = rows.iter().cloned().zip(y.iter().copied()).collect();
    let table = anova(&design, &observations);
    println!();
    row(["term", "anova_SS", "F", "p", "variance_share"]);
    for entry in &table.rows {
        row([
            entry.term.clone(),
            cell(entry.sum_of_squares, 1),
            cell(entry.f_statistic, 1),
            format!("{:.2e}", entry.p_value),
            cell(entry.variance_share, 3),
        ]);
    }
    println!("# ANOVA R2 = {:.3} on means; tail structure is invisible to it", table.r_squared());
}
