//! Table II: hardware specification of the (simulated) system under
//! test.

use treadmill_bench::{banner, row, BenchArgs};
use treadmill_cluster::spec::system_under_test;
use treadmill_cluster::{NetworkSpec, ServerSpec};

fn main() {
    let args = BenchArgs::parse();
    banner("Table II", "Hardware specification of the system under test", &args);
    row(["Item", "Specification"]);
    for entry in system_under_test(&ServerSpec::default(), &NetworkSpec::default()) {
        row([entry.item.to_string(), entry.value]);
    }
}
