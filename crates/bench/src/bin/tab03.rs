//! Table III: quantile regression factors.

use treadmill_bench::{banner, row, BenchArgs};
use treadmill_inference::factor_table;

fn main() {
    let args = BenchArgs::parse();
    banner("Table III", "Quantile regression factors", &args);
    row(["Factor", "Low-Level", "High-Level", "Description"]);
    for factor in factor_table() {
        row([
            factor.name,
            factor.low_label,
            factor.high_label,
            factor.description,
        ]);
    }
}
