//! Figure 2: per-client decomposition of the pooled latency
//! distribution — the cross-rack client dominates the high quantiles.

use treadmill_bench::{banner, cell, row, BenchArgs, LOW_LOAD_RPS};
use treadmill_cluster::{ClientSpec, ClusterBuilder};
use treadmill_core::{
    aggregation::latencies_per_client, tail_composition, InterArrival, OpenLoopSource,
};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 2",
        "Share of pooled-tail samples contributed by each client (client 1 is cross-rack)",
        &args,
    );
    let per_client_rate = LOW_LOAD_RPS / 4.0;
    let mut builder = ClusterBuilder::new(treadmill_bench::memcached())
        .seed(args.seed)
        .duration(args.duration());
    for i in 0..4 {
        let rack = if i == 0 { 2 } else { 0 }; // client 1 on a remote rack
        builder = builder.client(
            ClientSpec {
                rack,
                ..Default::default()
            },
            Box::new(OpenLoopSource::new(
                InterArrival::Exponential {
                    rate_rps: per_client_rate,
                },
                16,
            )),
        );
    }
    let result = builder.run();
    let warmup_at = treadmill_sim_core::SimTime::ZERO + args.warmup();
    let per_client = latencies_per_client(&result.client_records, warmup_at);
    let quantiles = [0.50, 0.90, 0.95, 0.99, 0.999];
    let rows = tail_composition(&per_client, &quantiles);
    row(["quantile", "latency_us", "client1", "client2", "client3", "client4"]);
    for entry in &rows {
        let mut fields = vec![cell(entry.quantile, 3), cell(entry.latency_us, 1)];
        fields.extend(entry.shares.iter().map(|&s| cell(s, 3)));
        row(fields);
    }
    let p999 = rows.last().expect("quantiles nonempty");
    println!(
        "# cross-rack client's share of the 99.9th-percentile tail: {:.0}%",
        p999.shares[0] * 100.0
    );
}
