//! Extension experiment 3: quantifying the aggregation pitfall.
//!
//! §II-B's Figure 2 shows *that* a cross-rack client dominates the
//! pooled tail; this experiment quantifies the estimate error of
//! holistic pooling against the paper's per-instance aggregation, as
//! the outlier client's rack distance grows.

use treadmill_bench::{banner, cell, memcached, row, BenchArgs, LOW_LOAD_RPS};
use treadmill_cluster::{ClientSpec, ClusterBuilder};
use treadmill_core::{
    aggregation::latencies_per_client, holistic_summary, InterArrival, OpenLoopSource,
};
use treadmill_stats::summary::aggregate_mean;
use treadmill_stats::LatencySummary;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Extension 3",
        "Holistic vs per-instance aggregation error vs outlier client distance",
        &args,
    );
    row([
        "outlier_rack",
        "per_instance_p99",
        "holistic_p99",
        "bias_us",
        "outlier_share_of_tail",
    ]);
    for rack in [0u8, 1, 2, 4] {
        let mut builder = ClusterBuilder::new(memcached())
            .seed(args.seed)
            .duration(args.duration());
        for i in 0..4 {
            builder = builder.client(
                ClientSpec {
                    rack: if i == 0 { rack } else { 0 },
                    ..Default::default()
                },
                Box::new(OpenLoopSource::new(
                    InterArrival::Exponential {
                        rate_rps: LOW_LOAD_RPS / 4.0,
                    },
                    16,
                )),
            );
        }
        let result = builder.run();
        let warmup_at = treadmill_sim_core::SimTime::ZERO + args.warmup();
        let per_client = latencies_per_client(&result.client_records, warmup_at);
        let summaries: Vec<LatencySummary> = per_client
            .iter()
            .map(|v| LatencySummary::from_samples(v))
            .collect();
        let correct = aggregate_mean(&summaries);
        let holistic = holistic_summary(&per_client);
        let composition = treadmill_core::tail_composition(&per_client, &[0.99]);
        row([
            rack.to_string(),
            cell(correct.p99, 1),
            cell(holistic.p99, 1),
            cell(holistic.p99 - correct.p99, 1),
            cell(composition[0].shares[0], 2),
        ]);
    }
    println!("# the holistic estimate tracks the worst client; the per-instance mean does not");
}
