//! Figure 9: estimated mcrouter latency for all 16 hardware
//! configurations (the mcrouter counterpart of Figure 7).

use treadmill_bench::{
    banner, cell, collect_dataset, mcrouter, row, BenchArgs, FIGURE_PERCENTILES,
    HIGH_LOAD_RPS, LOW_LOAD_RPS,
};
use treadmill_cluster::HardwareConfig;
use treadmill_inference::attribute;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 9",
        "Estimated mcrouter latency per configuration (quantile-regression model)",
        &args,
    );
    row(["load", "percentile", "config", "label", "latency_us"]);
    for (load, rps) in [("low", LOW_LOAD_RPS), ("high", HIGH_LOAD_RPS)] {
        eprintln!("# collecting {load}-load dataset ...");
        let dataset = collect_dataset(&args, mcrouter(), rps);
        for &tau in &FIGURE_PERCENTILES {
            let model = attribute(&dataset, tau, args.bootstrap_replicates(), args.seed);
            for (i, pred) in model.predictions_all_configs().into_iter().enumerate() {
                row([
                    load.to_string(),
                    format!("p{}", (tau * 100.0).round()),
                    i.to_string(),
                    HardwareConfig::from_index(i).to_string(),
                    cell(pred, 1),
                ]);
            }
        }
    }
}
