//! Extension experiment 5: ablating the hysteresis sources.
//!
//! Which per-restart state causes Figure 4's run-to-run spread? This
//! experiment re-runs the same configuration with each hysteresis
//! source disabled in turn and reports the spread of per-run p99s.

use treadmill_bench::{banner, cell, memcached, row, BenchArgs, HIGH_LOAD_RPS};
use treadmill_cluster::{HardwareConfig, HysteresisSpec, ServerSpec};
use treadmill_core::LoadTest;
use treadmill_stats::StreamingStats;

fn spread(args: &BenchArgs, label: &str, hysteresis: HysteresisSpec) -> (String, f64, f64) {
    let test = LoadTest::new(memcached(), HIGH_LOAD_RPS)
        .hardware(HardwareConfig::from_index(1)) // interleave NUMA
        .server_spec(ServerSpec {
            hysteresis,
            ..Default::default()
        })
        .clients(args.clients())
        .duration(args.duration())
        .warmup(args.warmup())
        .seed(args.seed);
    let runs = match args.scale {
        treadmill_bench::Scale::Quick => 4,
        _ => 8,
    };
    let stats: StreamingStats = (0..runs).map(|i| test.run(i).aggregated.p99).collect();
    (label.to_string(), stats.mean(), stats.sample_stddev())
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Extension 5",
        "Run-to-run p99 spread with hysteresis sources ablated (numa-interleave config)",
        &args,
    );
    let full = HysteresisSpec::default();
    let no_service = HysteresisSpec {
        service_jitter: 0.0,
        ..Default::default()
    };
    let no_placement = HysteresisSpec {
        remote_jitter_same_node: 0.0,
        remote_jitter_interleave: 0.0,
        ..Default::default()
    };
    let none = HysteresisSpec::none();

    row(["sources", "mean_p99_us", "stddev_us", "cv_pct"]);
    for (label, spec) in [
        ("all", full),
        ("no-layout-jitter", no_service),
        ("no-placement-jitter", no_placement),
        ("none", none),
    ] {
        let (name, mean, sd) = spread(&args, label, spec);
        row([
            name,
            cell(mean, 1),
            cell(sd, 1),
            cell(sd / mean * 100.0, 2),
        ]);
    }
    println!("# residual spread under 'none' comes from per-run placement draws (worker/RSS shuffles)");
}
