//! Figure 5: latency distributions measured by CloudSuite, Mutilate and
//! Treadmill at 10% server utilisation, against tcpdump ground truth.

use treadmill_baselines::{cloudsuite, mutilate, run_profile, treadmill_shape};
use treadmill_bench::{banner, cell, memcached, row, BenchArgs, LOW_LOAD_RPS};
use treadmill_cluster::HardwareConfig;
use treadmill_stats::quantile::quantile;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 5",
        "Measured latency CDFs vs tcpdump at 10% utilisation (100k RPS)",
        &args,
    );
    row(["series", "latency_us", "cdf"]);
    for profile in [cloudsuite(), mutilate(), treadmill_shape()] {
        let report = run_profile(
            &profile,
            memcached(),
            LOW_LOAD_RPS,
            HardwareConfig::default(),
            args.duration(),
            args.warmup(),
            args.seed,
        );
        let mut measured = report.measured_latencies_us.clone();
        measured.sort_by(f64::total_cmp);
        let stride = (measured.len() / 60).max(1);
        for (i, &v) in measured.iter().enumerate().step_by(stride) {
            row([
                profile.name.to_string(),
                cell(v, 1),
                cell((i + 1) as f64 / measured.len() as f64, 4),
            ]);
        }
        for (i, &(v, f)) in report
            .ground_truth
            .cdf_points(60)
            .iter()
            .enumerate()
        {
            let _ = i;
            row([format!("tcpdump@{}", profile.name), cell(v, 1), cell(f, 4)]);
        }
        let measured_p99 = quantile(&report.measured_latencies_us, 0.99);
        let truth_p99 = report.ground_truth.quantile_us(0.99);
        println!(
            "# {}: measured p99 = {measured_p99:.1}us, tcpdump p99 = {truth_p99:.1}us, error = {:+.1}us",
            profile.name,
            measured_p99 - truth_p99
        );
    }
}
