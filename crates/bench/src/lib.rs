//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper and prints it as aligned TSV to stdout. All binaries accept:
//!
//! * `--seed <u64>` — master seed (default 2016, the paper's year);
//! * `--quick` — a fast, reduced-scale run for smoke testing;
//! * `--paper` — full paper-scale parameters (30 runs per
//!   configuration, 20k samples each, 100-experiment tuning arms).
//!
//! Without a flag, a medium scale is used that preserves every
//! qualitative result while finishing in minutes on a laptop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use treadmill_sim_core::SimDuration;
use treadmill_workloads::Workload;

/// How much work a binary should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (seconds).
    Quick,
    /// Default scale (a couple of minutes).
    Default,
    /// Full paper-scale parameters.
    Paper,
}

/// Parsed command-line arguments.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Master seed.
    pub seed: u64,
    /// Work scale.
    pub scale: Scale,
}

impl BenchArgs {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments.
    pub fn parse() -> Self {
        let mut args = BenchArgs {
            seed: 2016,
            scale: Scale::Default,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => args.scale = Scale::Quick,
                "--paper" => args.scale = Scale::Paper,
                "--seed" => {
                    let value = iter.next().expect("--seed needs a value");
                    args.seed = value.parse().expect("--seed must be a u64");
                }
                other => panic!("unknown argument {other}; expected --quick/--paper/--seed N"),
            }
        }
        args
    }

    /// Independent experiments per factorial cell.
    pub fn runs_per_config(&self) -> usize {
        match self.scale {
            Scale::Quick => 3,
            Scale::Default => 8,
            Scale::Paper => 30,
        }
    }

    /// Latency samples retained per experiment.
    pub fn samples_per_run(&self) -> usize {
        match self.scale {
            Scale::Quick => 2_000,
            Scale::Default => 10_000,
            Scale::Paper => 20_000,
        }
    }

    /// Sending window per experiment.
    pub fn duration(&self) -> SimDuration {
        match self.scale {
            Scale::Quick => SimDuration::from_millis(150),
            Scale::Default => SimDuration::from_millis(400),
            Scale::Paper => SimDuration::from_millis(800),
        }
    }

    /// Warm-up window.
    pub fn warmup(&self) -> SimDuration {
        match self.scale {
            Scale::Quick => SimDuration::from_millis(50),
            Scale::Default => SimDuration::from_millis(100),
            Scale::Paper => SimDuration::from_millis(150),
        }
    }

    /// Treadmill instances per experiment.
    pub fn clients(&self) -> usize {
        match self.scale {
            Scale::Quick => 4,
            _ => 8,
        }
    }

    /// Bootstrap replicates for coefficient standard errors.
    pub fn bootstrap_replicates(&self) -> usize {
        match self.scale {
            Scale::Quick => 50,
            Scale::Default => 200,
            Scale::Paper => 500,
        }
    }

    /// Experiments per arm in the tuning validation (Figure 12).
    pub fn tuning_experiments(&self) -> usize {
        match self.scale {
            Scale::Quick => 10,
            Scale::Default => 40,
            Scale::Paper => 100,
        }
    }
}

/// The two load points used throughout the evaluation, as fractions of
/// the ~1M RPS server capacity: "low" ≈ 10% utilisation, "high" ≈ 70%.
pub const LOW_LOAD_RPS: f64 = 100_000.0;
/// See [`LOW_LOAD_RPS`].
pub const HIGH_LOAD_RPS: f64 = 750_000.0;
/// The 80%-utilisation point of Figure 6.
pub const SATURATING_LOAD_RPS: f64 = 950_000.0;

/// The percentiles reported in Figures 7–10.
pub const FIGURE_PERCENTILES: [f64; 4] = [0.50, 0.90, 0.95, 0.99];

/// Builds the default Memcached workload.
pub fn memcached() -> Arc<dyn Workload> {
    Arc::new(treadmill_workloads::Memcached::default())
}

/// Builds the default mcrouter workload.
pub fn mcrouter() -> Arc<dyn Workload> {
    Arc::new(treadmill_workloads::Mcrouter::default())
}

/// Collects a factorial dataset at the given load using the args'
/// scale parameters.
pub fn collect_dataset(
    args: &BenchArgs,
    workload: Arc<dyn Workload>,
    target_rps: f64,
) -> treadmill_inference::Dataset {
    let mut plan = treadmill_inference::CollectionPlan::new(workload, target_rps);
    plan.runs_per_config = args.runs_per_config();
    plan.samples_per_run = args.samples_per_run();
    plan.clients = args.clients();
    plan.duration = args.duration();
    plan.warmup = args.warmup();
    plan.seed = args.seed;
    treadmill_inference::collect(&plan)
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str, args: &BenchArgs) {
    println!("# {id}: {caption}");
    println!("# seed={} scale={:?}", args.seed, args.scale);
}

/// Formats an f64 with fixed precision for table cells.
pub fn cell(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

/// Prints one TSV row.
pub fn row<S: AsRef<str>>(fields: impl IntoIterator<Item = S>) {
    let joined: Vec<String> = fields.into_iter().map(|f| f.as_ref().to_string()).collect();
    println!("{}", joined.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_order_work() {
        let quick = BenchArgs {
            seed: 1,
            scale: Scale::Quick,
        };
        let paper = BenchArgs {
            seed: 1,
            scale: Scale::Paper,
        };
        assert!(quick.runs_per_config() < paper.runs_per_config());
        assert!(quick.samples_per_run() < paper.samples_per_run());
        assert!(quick.duration() < paper.duration());
        assert!(quick.tuning_experiments() < paper.tuning_experiments());
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(1.23456, 2), "1.23");
        assert_eq!(cell(-1.0, 0), "-1");
    }

    #[test]
    fn workloads_build() {
        assert_eq!(memcached().name(), "memcached");
        assert_eq!(mcrouter().name(), "mcrouter");
    }
}
