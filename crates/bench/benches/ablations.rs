//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * adaptive vs static histograms (accuracy is tested elsewhere; here
//!   we show the adaptive design costs little),
//! * the exact saturated solver vs running the general IRLS solver over
//!   the same factorial data (why the reduction matters),
//! * kernel run-queue balancing on vs off (simulation cost of the
//!   fidelity mechanism).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treadmill_cluster::{ClientSpec, ClusterBuilder, PoissonSource, ServerSpec};
use treadmill_sim_core::SimDuration;
use treadmill_stats::linalg::Matrix;
use treadmill_stats::regression::{
    experiment_quantile_fit, quantile_regression_irls, Cell, FactorialDesign, IrlsOptions,
};
use treadmill_workloads::Memcached;

fn bench_saturated_vs_general(c: &mut Criterion) {
    let design = FactorialDesign::full(&["a", "b", "c", "d"]);
    let mut rng = SmallRng::seed_from_u64(1);
    let runs_per_cell = 5;
    let samples_per_run = 400;
    let cells: Vec<Cell> = design
        .all_configurations()
        .into_iter()
        .map(|levels| {
            let center = 100.0 + 30.0 * levels[0];
            let runs: Vec<Vec<f64>> = (0..runs_per_cell)
                .map(|_| {
                    (0..samples_per_run)
                        .map(|_| center + rng.gen_range(-10.0..10.0))
                        .collect()
                })
                .collect();
            Cell::new(levels, runs)
        })
        .collect();
    // The same data flattened for the general solver.
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for cell in &cells {
        for run in cell.runs() {
            for &v in run {
                rows.push(cell.levels.clone());
                y.push(v);
            }
        }
    }
    let matrix = {
        let p = design.num_terms();
        let mut m = Matrix::zeros(rows.len(), p);
        for (r, levels) in rows.iter().enumerate() {
            for (c_ix, v) in design.row(levels).into_iter().enumerate() {
                m[(r, c_ix)] = v;
            }
        }
        m
    };

    let mut group = c.benchmark_group("ablation-solver");
    group.sample_size(10);
    group.bench_function("saturated-exact", |b| {
        b.iter(|| black_box(experiment_quantile_fit(&design, &cells, 0.95).unwrap()))
    });
    group.bench_function("general-irls-32k-samples", |b| {
        b.iter(|| {
            black_box(
                quantile_regression_irls(&matrix, &y, 0.95, &IrlsOptions::default())
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_balancing_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-balancing");
    group.sample_size(10);
    for (name, threshold) in [("balanced", 3usize), ("pinned", usize::MAX)] {
        group.bench_function(format!("memcached-700k-{name}"), |b| {
            b.iter(|| {
                let result = ClusterBuilder::new(Arc::new(Memcached::default()))
                    .seed(2)
                    .server_spec(ServerSpec {
                        balance_threshold: threshold,
                        ..Default::default()
                    })
                    .client(
                        ClientSpec {
                            connections: 32,
                            ..Default::default()
                        },
                        Box::new(PoissonSource::new(700_000.0, 32)),
                    )
                    .duration(SimDuration::from_millis(25))
                    .run();
                black_box(result.total_responses())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_saturated_vs_general, bench_balancing_ablation);
criterion_main!(benches);
