//! End-to-end simulation throughput: how many simulated requests per
//! wall-clock second the whole stack (load generator + cluster) moves.
//! This is the number that determines how long a 480-experiment
//! attribution campaign takes.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use treadmill_cluster::{ClientSpec, ClusterBuilder, HardwareConfig, PoissonSource};
use treadmill_core::LoadTest;
use treadmill_sim_core::SimDuration;
use treadmill_workloads::{Mcrouter, Memcached};

fn bench_cluster_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster-sim");
    group.sample_size(10);
    // 20ms at 500k RPS = ~10k requests per iteration.
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("memcached-10k-requests", |b| {
        b.iter(|| {
            let result = ClusterBuilder::new(Arc::new(Memcached::default()))
                .seed(1)
                .client(
                    ClientSpec::default(),
                    Box::new(PoissonSource::new(500_000.0, 16)),
                )
                .duration(SimDuration::from_millis(20))
                .run();
            black_box(result.total_responses())
        })
    });
    group.finish();
}

fn bench_load_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("load-test");
    group.sample_size(10);
    for (name, hardware) in [
        ("all-low", HardwareConfig::from_index(0)),
        ("all-high", HardwareConfig::from_index(15)),
    ] {
        group.bench_function(format!("memcached-700k-{name}"), |b| {
            let test = LoadTest::new(Arc::new(Memcached::default()), 700_000.0)
                .clients(4)
                .hardware(hardware)
                .duration(SimDuration::from_millis(50))
                .warmup(SimDuration::from_millis(10));
            b.iter(|| black_box(test.run(0).aggregated.p99))
        });
    }
    group.bench_function("mcrouter-700k", |b| {
        let test = LoadTest::new(Arc::new(Mcrouter::default()), 700_000.0)
            .clients(4)
            .duration(SimDuration::from_millis(50))
            .warmup(SimDuration::from_millis(10));
        b.iter(|| black_box(test.run(0).aggregated.p99))
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_run, bench_load_test);
criterion_main!(benches);
