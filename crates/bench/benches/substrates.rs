//! Microbenchmarks of the performance-critical substrates: the event
//! engine, the adaptive histogram, the analytic queue, and quantile
//! extraction. Treadmill's accuracy depends on the client side staying
//! cheap (§III-A "highly optimize for performance"), so these paths are
//! the reproduction's hot loops.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treadmill_sim_core::{
    Engine, EventQueue, RateQueue, SimDuration, SimTime, World,
};
use treadmill_stats::{AdaptiveHistogram, LogHistogram, P2Quantile, StaticHistogram};

struct ChainWorld {
    remaining: u64,
}

enum ChainEvent {
    Tick,
}

impl World for ChainWorld {
    type Event = ChainEvent;
    fn handle(&mut self, now: SimTime, _ev: ChainEvent, queue: &mut EventQueue<ChainEvent>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.schedule(now + SimDuration::from_nanos(100), ChainEvent::Tick);
        }
    }
}

fn bench_event_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("event-engine");
    let events = 100_000u64;
    group.throughput(Throughput::Elements(events));
    group.bench_function("chain-100k", |b| {
        b.iter(|| {
            let mut engine = Engine::new(ChainWorld { remaining: events });
            engine.schedule(SimTime::ZERO, ChainEvent::Tick);
            engine.run_to_completion();
            black_box(engine.now())
        })
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.gen_range(20.0..500.0)).collect();
    let mut group = c.benchmark_group("histogram");
    group.throughput(Throughput::Elements(samples.len() as u64));
    group.bench_function("adaptive-record-100k", |b| {
        b.iter(|| {
            let mut hist = AdaptiveHistogram::new();
            for &v in &samples {
                hist.record(v);
            }
            black_box(hist.quantile(0.99))
        })
    });
    group.bench_function("static-record-100k", |b| {
        b.iter(|| {
            let mut hist = StaticHistogram::new(0.0, 1_000.0, 1_024);
            for &v in &samples {
                hist.record(v);
            }
            black_box(hist.quantile(0.99))
        })
    });
    group.bench_function("log-record-100k", |b| {
        b.iter(|| {
            let mut hist = LogHistogram::new(1.0, 1e6, 0.01);
            for &v in &samples {
                hist.record(v);
            }
            black_box(hist.quantile(0.99))
        })
    });
    group.bench_function("p2-record-100k", |b| {
        b.iter(|| {
            let mut est = P2Quantile::new(0.99);
            for &v in &samples {
                est.record(v);
            }
            black_box(est.estimate())
        })
    });
    group.finish();
}

fn bench_rate_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("rate-queue");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("offer-100k", |b| {
        b.iter(|| {
            let mut queue = RateQueue::new("bench");
            for i in 0..100_000u64 {
                queue.offer(SimTime::from_nanos(i * 50), SimDuration::from_nanos(40));
            }
            black_box(queue.free_at())
        })
    });
    group.finish();
}

fn bench_quantiles(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>() * 1e3).collect();
    c.bench_function("quantile-sort-100k", |b| {
        b.iter(|| black_box(treadmill_stats::quantile::quantile(&samples, 0.99)))
    });
}

criterion_group!(
    benches,
    bench_event_engine,
    bench_histogram,
    bench_rate_queue,
    bench_quantiles
);
criterion_main!(benches);
