//! Benchmarks of the statistical-inference stack: the saturated solver
//! the attribution pipeline runs per percentile, the run-level
//! bootstrap behind Table IV's standard errors, and the generic
//! IRLS / exact-LP solvers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treadmill_stats::linalg::Matrix;
use treadmill_stats::regression::{
    bootstrap_saturated, experiment_quantile_fit, quantile_regression_exact,
    quantile_regression_irls, BootstrapOptions, Cell, FactorialDesign, IrlsOptions,
};

fn paper_cells(runs: usize, samples: usize) -> (FactorialDesign, Vec<Cell>) {
    let design = FactorialDesign::full(&["numa", "turbo", "dvfs", "nic"]);
    let mut rng = SmallRng::seed_from_u64(3);
    let cells = design
        .all_configurations()
        .into_iter()
        .map(|levels| {
            let center = 100.0 + 50.0 * levels[0] - 10.0 * levels[1];
            let runs: Vec<Vec<f64>> = (0..runs)
                .map(|_| {
                    (0..samples)
                        .map(|_| center + rng.gen_range(-20.0..20.0))
                        .collect()
                })
                .collect();
            Cell::new(levels, runs)
        })
        .collect();
    (design, cells)
}

fn bench_saturated_fit(c: &mut Criterion) {
    let (design, cells) = paper_cells(30, 20_000);
    c.bench_function("saturated-fit-paper-scale", |b| {
        b.iter(|| black_box(experiment_quantile_fit(&design, &cells, 0.99).unwrap()))
    });
}

fn bench_bootstrap(c: &mut Criterion) {
    let (design, cells) = paper_cells(30, 20_000);
    c.bench_function("bootstrap-200-replicates", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(4);
            black_box(
                bootstrap_saturated(
                    &design,
                    &cells,
                    0.99,
                    BootstrapOptions { replicates: 200 },
                    &mut rng,
                )
                .unwrap(),
            )
        })
    });
}

fn solver_problem(n: usize) -> (Matrix, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(5);
    let mut design = Matrix::zeros(n, 3);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let a: f64 = rng.gen_range(0.0..1.0);
        let b: f64 = rng.gen_range(0.0..1.0);
        design[(i, 0)] = 1.0;
        design[(i, 1)] = a;
        design[(i, 2)] = b;
        y.push(10.0 + 5.0 * a - 2.0 * b + rng.gen_range(0.0..4.0));
    }
    (design, y)
}

fn bench_general_solvers(c: &mut Criterion) {
    let (design, y) = solver_problem(500);
    let mut group = c.benchmark_group("general-qr-solvers");
    group.bench_function("irls-n500", |b| {
        b.iter(|| {
            black_box(
                quantile_regression_irls(&design, &y, 0.9, &IrlsOptions::default()).unwrap(),
            )
        })
    });
    group.bench_function("simplex-n500", |b| {
        b.iter(|| black_box(quantile_regression_exact(&design, &y, 0.9).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_saturated_fit, bench_bootstrap, bench_general_solvers);
criterion_main!(benches);
