//! Deterministic edge-case tests for the retry/hedging machinery
//! (PR 3): duplicate-completion suppression, exact retry-exhaustion
//! timing, and crash-window resets racing hedged sends. All runs are
//! seeded, so every assertion is exact and reproducible.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::collections::BTreeSet;
use std::sync::Arc;

use treadmill_cluster::{
    ClientSpec, ClusterBuilder, FailureKind, FaultSpec, PoissonSource, RetryPolicy, RunResult,
};
use treadmill_sim_core::SimDuration;
use treadmill_workloads::Memcached;

fn run(seed: u64, faults: Option<FaultSpec>, policy: RetryPolicy) -> RunResult {
    let mut builder = ClusterBuilder::new(Arc::new(Memcached::default()))
        .seed(seed)
        .client(
            ClientSpec::default(),
            Box::new(PoissonSource::new(80_000.0, 16)),
        )
        .duration(SimDuration::from_millis(30))
        .retry_policy(policy);
    if let Some(spec) = faults {
        builder = builder.faults(spec);
    }
    builder.run()
}

/// Every record and failure settles a distinct logical request: a
/// request id appears at most once across both lists.
fn assert_ids_settle_once(result: &RunResult) {
    let mut seen = BTreeSet::new();
    for rec in result.client_records.iter().flatten() {
        assert!(seen.insert(rec.id), "request {:?} recorded twice", rec.id);
    }
    for f in result.client_failures.iter().flatten() {
        assert!(
            seen.insert(f.id),
            "request {:?} both completed and failed",
            f.id
        );
    }
}

#[test]
fn hedge_where_both_copies_complete_settles_once() {
    // No faults and a hedge delay well below typical end-to-end latency:
    // nearly every request is hedged and BOTH copies come back. The
    // first delivery must settle the logical request; the loser of the
    // race must be swallowed without touching records or counters.
    let policy = RetryPolicy {
        hedge_after_us: 30.0,
        ..RetryPolicy::default()
    };
    let result = run(11, None, policy);

    assert!(
        result.fault_summary.hedges > 100,
        "hedge delay below typical latency should hedge aggressively, got {}",
        result.fault_summary.hedges
    );
    // Both copies complete (no loss anywhere), yet nothing fails and
    // nothing double-counts.
    assert_eq!(result.total_failures(), 0);
    assert_eq!(result.fault_summary.timeouts, 0);
    assert_eq!(result.fault_summary.retries, 0);
    assert_ids_settle_once(&result);
    assert!(
        result.audit_findings.is_empty(),
        "auditor flagged: {:?}",
        result.audit_findings
    );
    // The latency origin of a hedged completion is the FIRST attempt's
    // generation time, so no latency can undercut the pre-hedge floor.
    for rec in result.client_records.iter().flatten() {
        assert!(rec.t_delivered > rec.t_generated);
    }
}

#[test]
fn retry_exhaustion_lands_exactly_on_the_timeout_boundary() {
    // Total uplink loss: no attempt ever reaches the server, so every
    // request walks the full timeout/backoff ladder and is abandoned.
    // With jitter disabled the ladder is exact arithmetic:
    //   3 timeouts of 500us + backoffs of 100us and 200us = 1800us.
    let policy = RetryPolicy {
        timeout_us: 500.0,
        max_retries: 2,
        backoff_base_us: 100.0,
        backoff_factor: 2.0,
        jitter_frac: 0.0,
        hedge_after_us: 0.0,
    };
    let faults = FaultSpec {
        uplink_loss: 1.0,
        ..FaultSpec::default()
    };
    let result = run(12, Some(faults), policy);

    assert_eq!(result.total_responses(), 0, "total loss must answer nothing");
    let failures: Vec<_> = result.client_failures.iter().flatten().collect();
    assert!(!failures.is_empty());
    for f in &failures {
        assert_eq!(f.kind, FailureKind::TimedOut);
        assert_eq!(f.attempts, 3, "initial send + max_retries attempts");
        assert_eq!(
            f.censored_latency_us(),
            1800.0,
            "request {:?} abandoned off the exact boundary",
            f.id
        );
    }
    let n = failures.len() as u64;
    // Exactly one timeout per attempt and one retry per backoff rung —
    // no stray timer fires for superseded attempts.
    assert_eq!(result.fault_summary.timeouts, 3 * n);
    assert_eq!(result.fault_summary.retries, 2 * n);
    assert_eq!(result.fault_summary.uplink_drops, 3 * n);
    assert_ids_settle_once(&result);
    assert!(
        result.audit_findings.is_empty(),
        "auditor flagged: {:?}",
        result.audit_findings
    );
}

#[test]
fn crash_window_reset_racing_a_hedge_stays_conserved() {
    // Crash windows long enough to reset in-flight attempts while the
    // hedge timer is armed: a request's original copy can be RST by a
    // down server while its hedged duplicate is still on the wire (or
    // completes first). Whatever interleaving the seed produces, each
    // logical request must settle exactly once and the conservation
    // auditor must stay quiet.
    let policy = RetryPolicy {
        timeout_us: 2_000.0,
        max_retries: 2,
        backoff_base_us: 100.0,
        backoff_factor: 2.0,
        jitter_frac: 0.25,
        hedge_after_us: 120.0,
    };
    let faults = FaultSpec {
        crash_rate_hz: 400.0,
        crash_downtime_us: 500.0,
        ..FaultSpec::default()
    };
    let result = run(13, Some(faults), policy);

    // The scenario actually has to occur: crashes happened, resets were
    // observed, and hedges were in play at the same time.
    assert!(result.fault_summary.crashes > 0, "no crash window fired");
    assert!(
        result.fault_summary.resets > 0,
        "no RST observed despite {} crashes",
        result.fault_summary.crashes
    );
    assert!(result.fault_summary.hedges > 0, "no hedges sent");
    assert!(
        result.total_responses() > 0,
        "hedges/retries should rescue most requests"
    );
    assert_ids_settle_once(&result);
    for f in result.client_failures.iter().flatten() {
        assert!(
            f.attempts <= 3,
            "request {:?} exceeded the retry budget: {} attempts",
            f.id,
            f.attempts
        );
    }
    assert!(
        result.audit_findings.is_empty(),
        "auditor flagged: {:?}",
        result.audit_findings
    );
}

#[test]
fn edge_case_runs_are_seed_stable() {
    // The three scenarios above are only trustworthy if re-running the
    // same seed reproduces the same interleaving bit-for-bit.
    let policy = RetryPolicy {
        timeout_us: 2_000.0,
        max_retries: 2,
        hedge_after_us: 120.0,
        ..RetryPolicy::default()
    };
    let faults = FaultSpec {
        crash_rate_hz: 400.0,
        crash_downtime_us: 500.0,
        ..FaultSpec::default()
    };
    let a = run(13, Some(faults), policy);
    let b = run(13, Some(faults), policy);
    assert_eq!(a.fault_summary, b.fault_summary);
    assert_eq!(a.total_responses(), b.total_responses());
    assert_eq!(a.events_executed, b.events_executed);
    let la: Vec<u64> = a
        .client_records
        .iter()
        .flatten()
        .map(|r| r.user_latency_us().to_bits())
        .collect();
    let lb: Vec<u64> = b
        .client_records
        .iter()
        .flatten()
        .map(|r| r.user_latency_us().to_bits())
        .collect();
    assert_eq!(la, lb, "latency streams must be bit-identical");
}
