//! Runtime invariant auditing.
//!
//! A long simulation that silently corrupts its bookkeeping produces
//! quantiles that *look* plausible — the worst failure mode for a
//! measurement tool. This module provides cheap conservation and
//! monotonicity checks that a stepped run can execute periodically
//! (e.g. at every checkpoint) and that [`crate::extract_result`] runs
//! once at completion. Findings are returned as human-readable strings
//! and surface through the report layer's health warnings.
//!
//! Invariants checked:
//!
//! 1. **Request conservation** — every injected request is either
//!    delivered, abandoned, or still in flight:
//!    `injected == completed + failed + outstanding`.
//! 2. **In-flight tracking** — with a retry policy active, the
//!    outstanding counter equals the total size of the per-client
//!    tracking maps.
//! 3. **Time monotonicity** — no pending event is scheduled before the
//!    engine clock, and no recorded delivery is in the future.
//! 4. **Queue bound** — the pending-event count stays under a
//!    caller-supplied ceiling (a runaway feedback loop grows the heap
//!    without bound long before it exhausts memory).
//! 5. **Outbox drained** — audits run at synchronization-round
//!    boundaries, where a sharded world's cross-shard outbox must be
//!    empty (see [`crate::ShardedCluster`]).
//!
//! [`audit_sharded`] additionally checks **cross-shard conservation**:
//! every message one shard emitted was injected into another.
//!
//! Checkpoint *integrity* (checksum + version) is verified separately
//! by [`treadmill_sim_core::snapshot::open`] on every restore.

use treadmill_sim_core::Engine;

use crate::shard::ShardedCluster;
use crate::world::ClusterWorld;

/// Runs all invariant checks against a live engine, returning one
/// finding per violated invariant (empty = healthy). `max_pending`
/// bounds the event heap; pass `usize::MAX` to skip the bound check.
pub fn audit_invariants(engine: &Engine<ClusterWorld>, max_pending: usize) -> Vec<String> {
    let mut findings = Vec::new();
    let world = engine.world();
    let now = engine.now();

    // 1. Request conservation.
    let completed: u64 = world.clients.iter().map(|c| c.records.len() as u64).sum();
    let failed: u64 = world.clients.iter().map(|c| c.failures.len() as u64).sum();
    let settled = completed + failed + u64::from(world.outstanding);
    if settled != world.next_id {
        findings.push(format!(
            "request conservation violated: {} injected but {completed} completed + \
             {failed} failed + {} outstanding = {settled}",
            world.next_id, world.outstanding
        ));
    }

    // 2. In-flight tracking agrees with the outstanding counter.
    if world.tracks_in_flight() {
        let tracked: u64 = world.clients.iter().map(|c| c.in_flight.len() as u64).sum();
        if tracked != u64::from(world.outstanding) {
            findings.push(format!(
                "in-flight tracking skewed: maps hold {tracked} requests but the \
                 outstanding counter says {}",
                world.outstanding
            ));
        }
    }

    // 3. Time monotonicity: queue head and recorded deliveries.
    if let Some(head) = engine.queue().peek_time() {
        if head < now {
            findings.push(format!(
                "event heap head at {}ns predates the clock at {}ns",
                head.as_nanos(),
                now.as_nanos()
            ));
        }
    }
    for (i, client) in world.clients.iter().enumerate() {
        if let Some(last) = client.records.last() {
            if last.t_delivered > now {
                findings.push(format!(
                    "client {i} recorded a delivery at {}ns, after the clock at {}ns",
                    last.t_delivered.as_nanos(),
                    now.as_nanos()
                ));
            }
        }
    }

    // 4. Queue bound.
    let pending = engine.pending_events();
    if pending > max_pending {
        findings.push(format!(
            "event heap holds {pending} pending events, over the {max_pending} bound"
        ));
    }

    // 5. Outbox drained: audits happen at round boundaries, where the
    // executor has already moved every cross-shard message.
    if let Some(ctx) = &world.shard {
        if !ctx.outbox.is_empty() {
            findings.push(format!(
                "shard outbox holds {} undrained cross-shard messages at an audit point",
                ctx.outbox.len()
            ));
        }
    }

    findings
}

/// Audits every shard of a [`ShardedCluster`] (findings prefixed with
/// the shard index) plus the cross-shard conservation invariant: the
/// total of messages shards emitted must equal the total injected.
pub fn audit_sharded(cluster: &ShardedCluster, max_pending: usize) -> Vec<String> {
    let mut findings = Vec::new();
    let mut sent_total = 0u64;
    let mut received_total = 0u64;
    for i in 0..cluster.n_shards() {
        let engine = cluster.engine(i);
        for f in audit_invariants(&engine, max_pending) {
            findings.push(format!("shard {i}: {f}"));
        }
        if let Some(ctx) = &engine.world().shard {
            sent_total += ctx.sent;
            received_total += ctx.received;
        }
    }
    if sent_total != received_total {
        findings.push(format!(
            "cross-shard conservation violated: {sent_total} messages emitted but \
             {received_total} injected"
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClientSpec;
    use crate::source::PoissonSource;
    use crate::world::ClusterBuilder;
    use std::sync::Arc;
    use treadmill_sim_core::SimDuration;
    use treadmill_workloads::Memcached;

    fn builder() -> ClusterBuilder {
        ClusterBuilder::new(Arc::new(Memcached::default()))
            .seed(21)
            .client(
                ClientSpec::default(),
                Box::new(PoissonSource::new(150_000.0, 16)),
            )
            .duration(SimDuration::from_millis(30))
    }

    #[test]
    fn healthy_run_audits_clean_at_every_stage() {
        let mut engine = builder().build();
        loop {
            assert_eq!(
                audit_invariants(&engine, usize::MAX),
                Vec::<String>::new(),
                "violation mid-run at {} events",
                engine.events_executed()
            );
            if engine.run_events(2_000) == 0 {
                break;
            }
        }
        assert!(audit_invariants(&engine, usize::MAX).is_empty());
    }

    #[test]
    fn finished_run_result_carries_no_findings() {
        let result = builder().run();
        assert!(result.audit_findings.is_empty(), "{:?}", result.audit_findings);
    }

    #[test]
    fn conservation_violation_is_reported_only_when_audited() {
        // Negative control: skew the counter, finish WITHOUT auditing —
        // the run completes silently and its records look plausible.
        let mut engine = builder().build();
        engine.run_events(5_000);
        engine.world_mut().debug_skew_outstanding(3);
        engine.run_to_completion();
        let silent_responses = {
            let world = engine.world();
            world.clients.iter().map(|c| c.records.len()).sum::<usize>()
        };
        assert!(silent_responses > 1_000, "corrupted run still 'works'");

        // The auditor catches the same corruption.
        let findings = audit_invariants(&engine, usize::MAX);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("conservation"), "{findings:?}");
    }

    #[test]
    fn skewed_run_surfaces_findings_in_result() {
        let mut engine = builder().build();
        engine.run_events(5_000);
        engine.world_mut().debug_skew_outstanding(2);
        engine.run_to_completion();
        let result = crate::world::extract_result(engine);
        assert_eq!(result.audit_findings.len(), 1, "{:?}", result.audit_findings);
    }

    #[test]
    fn queue_bound_violation_reported() {
        let mut engine = builder().build();
        engine.run_events(1_000);
        let pending = engine.pending_events();
        assert!(pending > 1);
        let findings = audit_invariants(&engine, pending - 1);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("pending events"), "{findings:?}");
    }
}
