//! The cluster world: event definitions, the request lifecycle state
//! machine, and the run harness.
//!
//! A request's life (all stamps land on [`crate::Request`]):
//!
//! ```text
//! SendFire ─(client CPU + kernel TX)→ ClientTxNic ─(uplink + prop)→
//! ServerNicArrive ─(NIC ingress)→ CoreEnqueue(Irq) → CoreJobDone(Irq) →
//! CoreEnqueue(Work) → CoreJobDone(Work) ─(egress + prop)→
//! ClientNicArrive ─(downlink + kernel RX)→ ClientRxUser ─(client CPU)→
//! Delivered
//! ```
//!
//! Governor and thermal ticks run alongside and reshape core
//! frequencies, which changes service durations computed at dispatch.

use std::sync::Arc;

use treadmill_sim_core::{Engine, EventQueue, SeedStream, SimDuration, SimTime, World};
use treadmill_workloads::Workload;

use crate::client::{ClientMachine, InFlight};
use crate::config::{ClientSpec, HardwareConfig, NetworkSpec, ServerSpec};
use crate::fault::{FailureKind, FailureRecord, FaultPlan, FaultSpec, FaultSummary, RetryPolicy};
use crate::hysteresis::RunState;
use crate::network::Network;
use crate::request::{Request, RequestId, ResponseRecord};
use crate::server::core::CoreJob;
use crate::server::Server;

/// Per-core diagnostic snapshot taken at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreStats {
    /// Core id.
    pub core: u8,
    /// Socket the core belongs to.
    pub socket: u8,
    /// Utilisation over the sending window.
    pub utilization: f64,
    /// Frequency at the end of the run, GHz.
    pub final_freq_ghz: f64,
    /// Jobs (IRQ + work + stalls) completed.
    pub jobs_done: u64,
    /// DVFS transitions performed.
    pub transitions: u64,
}
use crate::source::{SendOrder, TrafficSource};

/// The event alphabet of the cluster simulation.
///
/// Variants that track a request in flight carry it boxed: every
/// request transits the event heap roughly eight times, and sift swaps
/// move whole events, so a thin pointer beats an inline ~130-byte
/// payload by a wide margin. The request is allocated once at
/// [`Event::SendFire`] and freed when [`Event::Delivered`] lands.
#[derive(Debug)]
pub enum Event {
    /// The load tester on `client` initiates a send on `conn`.
    SendFire {
        /// Client index.
        client: u32,
        /// Connection index within the client.
        conn: u32,
    },
    /// The request has cleared client CPU + kernel TX; enter the uplink.
    ClientTxNic(Box<Request>),
    /// The request packet reached the server NIC.
    ServerNicArrive(Box<Request>),
    /// A job lands on a core's run queue.
    CoreEnqueue {
        /// Target core.
        core: usize,
        /// The job.
        job: CoreJob,
    },
    /// A core finished its in-flight job.
    CoreJobDone {
        /// The core.
        core: usize,
        /// When the job started executing.
        start: SimTime,
        /// The completed job.
        job: CoreJob,
    },
    /// The response packet reached the client NIC.
    ClientNicArrive(Box<Request>),
    /// The response cleared kernel RX; enter the client CPU for the
    /// user-space callback.
    ClientRxUser(Box<Request>),
    /// The load tester observed the response.
    Delivered(Box<Request>),
    /// DVFS governor sampling tick.
    GovernorTick,
    /// Package thermal-model tick.
    ThermalTick,
    /// A per-attempt timeout armed by the retry policy. Stale if the
    /// request already completed or moved to a later attempt.
    RequestTimeout {
        /// Client index.
        client: u32,
        /// The logical request.
        id: RequestId,
        /// The attempt this timer was armed for.
        attempt: u32,
    },
    /// The backoff expired: resend the request.
    RetryFire {
        /// Client index.
        client: u32,
        /// The logical request.
        id: RequestId,
    },
    /// The hedge delay expired: send a duplicate if still unanswered.
    HedgeFire {
        /// Client index.
        client: u32,
        /// The logical request.
        id: RequestId,
    },
    /// An injected transient stall (GC pause) lands on a random core.
    FaultStall,
    /// A pre-drawn whole-server crash window begins.
    ServerCrash,
    /// The server reset a connection (it was down); the client observes
    /// the reset after propagation.
    ConnReset(Box<Request>),
}

/// A message crossing a shard boundary, carried through the owning
/// shard's outbox until the executor injects it into the destination
/// shard's heap (see [`crate::shard`]).
#[derive(Debug)]
pub(crate) enum ShardMsg {
    /// A request packet bound for a foreign server's NIC.
    Request(Box<Request>),
    /// A response packet returning to the request's home client.
    Response(Box<Request>),
    /// A connection reset from a crashed foreign server.
    Reset(Box<Request>),
}

impl ShardMsg {
    /// The event the destination shard executes on arrival.
    pub(crate) fn into_event(self) -> Event {
        match self {
            ShardMsg::Request(req) => Event::ServerNicArrive(req),
            ShardMsg::Response(req) => Event::ClientNicArrive(req),
            ShardMsg::Reset(req) => Event::ConnReset(req),
        }
    }
}

/// Sharding context attached to a world that participates in a
/// [`crate::ShardedCluster`]. `None` on the classic single-world path,
/// which then executes the exact event/RNG sequence it always has.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    /// This shard's index.
    pub(crate) index: u32,
    /// Total shards in the cluster.
    pub(crate) n_shards: u32,
    /// Every `remote_every`-th connection targets a foreign server
    /// (0 disables cross-shard traffic).
    pub(crate) remote_every: u32,
    /// Inter-shard propagation delay — the conservative lookahead.
    pub(crate) prop: SimDuration,
    /// Departed cross-shard messages awaiting the executor:
    /// `(arrival instant, destination shard, message)`.
    pub(crate) outbox: Vec<(SimTime, u32, ShardMsg)>,
    /// Cross-shard messages this shard has emitted (conservation).
    pub(crate) sent: u64,
    /// Cross-shard messages injected into this shard (conservation).
    pub(crate) received: u64,
}

impl ShardCtx {
    pub(crate) fn new(index: u32, n_shards: u32, remote_every: u32, prop: SimDuration) -> Self {
        assert!(index < n_shards, "shard index out of range");
        ShardCtx {
            index,
            n_shards,
            remote_every,
            prop,
            outbox: Vec::new(),
            sent: 0,
            received: 0,
        }
    }
}

/// The complete simulated cluster (implements [`World`]).
#[derive(Debug)]
pub struct ClusterWorld {
    workload: Arc<dyn Workload>,
    /// The server under test.
    pub server: Server,
    /// The network fabric.
    pub network: Network,
    /// Client machines, in builder order.
    pub clients: Vec<ClientMachine>,
    run_state: RunState,
    stop_sending_at: SimTime,
    pub(crate) next_id: u64,
    pub(crate) outstanding: u32,
    pub(crate) outstanding_samples: Vec<(SimTime, u32)>,
    sample_outstanding: bool,
    /// `None` when no faults are configured — the fault-free hot path
    /// then executes the exact event/RNG sequence of the plain engine.
    pub(crate) faults: Option<FaultPlan>,
    /// `None` when the retry policy is disabled.
    policy: Option<RetryPolicy>,
    /// `None` outside sharded execution — the classic path then runs
    /// bit-identically to every build before sharding existed.
    pub(crate) shard: Option<ShardCtx>,
}

impl ClusterWorld {
    /// The per-run placement state (diagnostics).
    pub fn run_state(&self) -> &RunState {
        &self.run_state
    }

    /// Requests currently in flight.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// True if a retry policy is active, in which case every in-flight
    /// logical request has an entry in its client's tracking map.
    pub(crate) fn tracks_in_flight(&self) -> bool {
        self.policy.is_some()
    }

    /// Corrupts the in-flight counter by `delta` — a deliberate
    /// conservation violation for exercising the invariant auditor in
    /// negative tests. Never call this outside tests.
    #[doc(hidden)]
    pub fn debug_skew_outstanding(&mut self, delta: u32) {
        self.outstanding += delta;
    }

    /// This world's shard index (0 when unsharded).
    fn home_shard(&self) -> u32 {
        self.shard.as_ref().map_or(0, |ctx| ctx.index)
    }

    /// The inter-shard propagation delay (zero when unsharded; only
    /// read on paths where a shard context is guaranteed present).
    fn shard_prop(&self) -> SimDuration {
        self.shard.as_ref().map_or(SimDuration::ZERO, |ctx| ctx.prop)
    }

    /// True if `req` originated on another shard's client.
    fn is_foreign(&self, req: &Request) -> bool {
        req.home_shard != self.home_shard()
    }

    /// The foreign shard this connection's requests target, or `None`
    /// for a plain local connection. Pure function of the connection
    /// identity: every attempt of every request on the connection
    /// reaches the same server, and the designation is identical at
    /// every thread count.
    #[allow(clippy::cast_possible_truncation)]
    fn remote_dst(&self, client: u32, conn: u32) -> Option<u32> {
        let ctx = self.shard.as_ref()?;
        if ctx.n_shards < 2 || ctx.remote_every == 0 || !conn.is_multiple_of(ctx.remote_every) {
            return None;
        }
        // Spread destinations over the other shards, never selecting
        // the home shard itself.
        let spread = ((u64::from(client) + u64::from(conn / ctx.remote_every))
            % u64::from(ctx.n_shards - 1)) as u32;
        Some((ctx.index + 1 + spread) % ctx.n_shards)
    }

    /// Placement state for a request's connection. Foreign connections
    /// have no hysteresis entry on this server, so their placement is
    /// hashed deterministically from the connection identity.
    fn conn_state(&self, req: &Request) -> crate::hysteresis::ConnectionState {
        if self.is_foreign(req) {
            remote_conn_state(req.home_shard, req.client, req.conn, self.server.spec())
        } else {
            self.run_state.connection(req.client, req.conn)
        }
    }

    /// Queues a cross-shard message for the executor to inject at
    /// `arrival`. Only called on paths where a shard context exists
    /// (a `remote_dst` hit or a foreign request in hand).
    fn send_cross_shard(&mut self, arrival: SimTime, dst: u32, msg: ShardMsg) {
        if let Some(ctx) = self.shard.as_mut() {
            ctx.sent += 1;
            ctx.outbox.push((arrival, dst, msg));
        }
    }

    // Client indices fit u32: cluster configs top out at a handful of
    // load-generator clients.
    #[allow(clippy::cast_possible_truncation)]
    fn collect_start_orders(&mut self, now: SimTime) -> Vec<(u32, SendOrder)> {
        let mut orders = Vec::new();
        for (i, client) in self.clients.iter_mut().enumerate() {
            for order in client.source.start(now, &mut client.rng) {
                orders.push((i as u32, order));
            }
        }
        orders
    }

    fn maybe_schedule_send(
        &self,
        client: u32,
        order: SendOrder,
        queue: &mut EventQueue<Event>,
    ) {
        if order.at <= self.stop_sending_at {
            queue.schedule(
                order.at,
                Event::SendFire {
                    client,
                    conn: order.conn,
                },
            );
        }
    }

    fn dispatch_core(&mut self, core: usize, now: SimTime, queue: &mut EventQueue<Event>) {
        let Some(job) = self.server.cores[core].try_dispatch() else {
            return;
        };
        let duration = match &job {
            CoreJob::Irq(_) => self.server.irq_duration(core),
            CoreJob::Work(req) => {
                let state = self.conn_state(req);
                let irq_core = self.server.rss_core(state.rss_queue);
                let handoff =
                    self.server.cores[irq_core].socket != self.server.cores[core].socket;
                self.server
                    .service_duration(core, &req.profile, state.buffer_remote, handoff)
                    .mul_f64(self.run_state.service_factor())
            }
            CoreJob::Stall(d) => *d,
        };
        queue.schedule(now + duration, Event::CoreJobDone { core, start: now, job });
    }

    /// A tracked request's current attempt failed (timeout or reset):
    /// schedule a retry if the budget allows, otherwise abandon it and
    /// record a right-censored failure. Only called in robust mode.
    fn fail_or_retry(
        &mut self,
        client: u32,
        id: RequestId,
        kind: FailureKind,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) {
        let policy = self.policy.expect("fail_or_retry without a retry policy");
        let ci = client as usize;
        let Some(entry) = self.clients[ci].in_flight.get(&id).copied() else {
            return;
        };
        if entry.attempt < policy.max_retries {
            let e = self.clients[ci]
                .in_flight
                .get_mut(&id)
                .expect("entry present");
            e.attempt += 1;
            let attempt = e.attempt;
            queue.schedule(now + policy.backoff(id, attempt), Event::RetryFire { client, id });
        } else {
            self.clients[ci].in_flight.remove(&id);
            self.outstanding -= 1;
            self.clients[ci].failures.push(FailureRecord {
                id,
                client,
                conn: entry.conn,
                t_generated: entry.t_first,
                t_failed: now,
                attempts: entry.attempt + 1,
                kind,
            });
            // Tell the source the slot freed up so closed-loop testers
            // don't deadlock on a request that will never return.
            let next = {
                let c = &mut self.clients[ci];
                c.source.on_response(entry.conn, now, &mut c.rng)
            };
            if let Some(order) = next {
                self.maybe_schedule_send(client, order, queue);
            }
        }
    }

    /// Builds the resend packet for a retry or hedge: same id, same
    /// profile, latency origin pinned to the first attempt.
    fn resend_packet(&mut self, client: u32, id: RequestId, entry: InFlight) -> Box<Request> {
        let mut req = Box::new(Request::new(id, client, entry.conn, entry.profile, entry.t_first));
        req.attempt = entry.attempt;
        req.home_shard = self.home_shard();
        req
    }
}

impl World for ClusterWorld {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::SendFire { client, conn } => {
                let ci = client as usize;
                assert!(
                    conn < self.clients[ci].spec.connections,
                    "traffic source on client {client} emitted connection {conn}, but the \
                     client declares only {} connections",
                    self.clients[ci].spec.connections
                );
                let profile = self.workload.sample_request(&mut self.clients[ci].rng);
                let id = RequestId(self.next_id);
                self.next_id += 1;
                let mut req = Box::new(Request::new(id, client, conn, profile, now));
                req.home_shard = self.home_shard();
                self.outstanding += 1;
                if self.sample_outstanding {
                    self.outstanding_samples.push((now, self.outstanding));
                }
                if let Some(policy) = self.policy {
                    self.clients[ci].in_flight.insert(
                        id,
                        InFlight {
                            conn,
                            profile,
                            t_first: now,
                            attempt: 0,
                            hedged: false,
                        },
                    );
                    if policy.timeout_us > 0.0 {
                        queue.schedule(
                            now + policy.timeout(),
                            Event::RequestTimeout { client, id, attempt: 0 },
                        );
                    }
                    if policy.hedge_after_us > 0.0 {
                        queue.schedule(now + policy.hedge_delay(), Event::HedgeFire { client, id });
                    }
                }
                let tx_at = self.clients[ci].tx_ready_at(now);
                queue.schedule(tx_at, Event::ClientTxNic(req));
                let next = {
                    let c = &mut self.clients[ci];
                    c.source.on_sent(now, &mut c.rng)
                };
                if let Some(order) = next {
                    self.maybe_schedule_send(client, order, queue);
                }
            }
            Event::ClientTxNic(mut req) => {
                let ci = req.client as usize;
                let out = self
                    .network
                    .uplink_departure(ci, now, req.profile.request_bytes);
                if let Some(plan) = &mut self.faults {
                    // The packet serialised onto the wire, then died.
                    if plan.drop_uplink() {
                        return;
                    }
                }
                req.t_client_nic_out = out;
                match self.remote_dst(req.client, req.conn) {
                    Some(dst) => {
                        // The packet leaves for a foreign server; it
                        // arrives there after the inter-shard delay,
                        // which is also the conservative lookahead.
                        let arrive = out + self.shard_prop();
                        self.send_cross_shard(arrive, dst, ShardMsg::Request(req));
                    }
                    None => {
                        let arrive = out + self.network.propagation(ci);
                        queue.schedule(arrive, Event::ServerNicArrive(req));
                    }
                }
            }
            Event::ServerNicArrive(mut req) => {
                let down = self
                    .faults
                    .as_mut()
                    .is_some_and(|plan| plan.server_down_at(now));
                if down {
                    // A down server answers with a RST; the client
                    // sees it one propagation delay later — routed
                    // back across the shard boundary if the request
                    // came from a foreign client.
                    if self.is_foreign(&req) {
                        let back = now + self.shard_prop();
                        let home = req.home_shard;
                        self.send_cross_shard(back, home, ShardMsg::Reset(req));
                    } else {
                        let ci = req.client as usize;
                        let back = now + self.network.propagation(ci);
                        queue.schedule(back, Event::ConnReset(req));
                    }
                    return;
                }
                if let Some(plan) = &mut self.faults {
                    let backlog = self.network.ingress_backlog_bytes(now);
                    if plan.nic_overflow(backlog, req.profile.request_bytes) {
                        return;
                    }
                }
                let done = self
                    .network
                    .ingress_departure(now, req.profile.request_bytes);
                req.t_server_nic_in = done;
                let state = self.conn_state(&req);
                let core = self.server.rss_core(state.rss_queue);
                queue.schedule(
                    done,
                    Event::CoreEnqueue {
                        core,
                        job: CoreJob::Irq(req),
                    },
                );
            }
            Event::CoreEnqueue { core, job } => {
                if let Some(plan) = &mut self.faults {
                    if plan.server_down_at(now) {
                        // The crash hit between NIC and core handoff.
                        plan.add_crash_drops(1);
                        return;
                    }
                }
                self.server.cores[core].enqueue(job);
                if !self.server.cores[core].is_busy() {
                    self.dispatch_core(core, now, queue);
                }
            }
            Event::CoreJobDone { core, start, job } => {
                self.server.cores[core].finish_job(start, now.duration_since(start));
                // A job that started before the latest crash was wiped
                // with the server's memory; its result is lost even
                // though the core's busy window is accounted.
                let crashed = self
                    .faults
                    .as_ref()
                    .is_some_and(|plan| start < plan.last_crash_at());
                if crashed {
                    if matches!(job, CoreJob::Irq(_) | CoreJob::Work(_)) {
                        self.faults
                            .as_mut()
                            .expect("crash flag implies plan")
                            .add_crash_drops(1);
                    }
                    self.dispatch_core(core, now, queue);
                    return;
                }
                match job {
                    CoreJob::Irq(mut req) => {
                        req.t_irq_done = now;
                        let state = self.conn_state(&req);
                        let core = self
                            .server
                            .balanced_worker_core(usize::from(state.worker_core));
                        queue.schedule(
                            now,
                            Event::CoreEnqueue {
                                core,
                                job: CoreJob::Work(req),
                            },
                        );
                    }
                    CoreJob::Work(mut req) => {
                        req.t_service_start = start;
                        let out = self
                            .network
                            .egress_departure(now, req.profile.response_bytes);
                        req.t_server_nic_out = out;
                        let lost = self
                            .faults
                            .as_mut()
                            .is_some_and(FaultPlan::drop_downlink);
                        if !lost {
                            if self.is_foreign(&req) {
                                let arrive = out + self.shard_prop();
                                let home = req.home_shard;
                                self.send_cross_shard(arrive, home, ShardMsg::Response(req));
                            } else {
                                let ci = req.client as usize;
                                let arrive = out + self.network.propagation(ci);
                                queue.schedule(arrive, Event::ClientNicArrive(req));
                            }
                        }
                    }
                    CoreJob::Stall(_) => {}
                }
                self.dispatch_core(core, now, queue);
            }
            Event::ClientNicArrive(mut req) => {
                let ci = req.client as usize;
                let done = self
                    .network
                    .downlink_departure(ci, now, req.profile.response_bytes);
                req.t_client_nic_in = done;
                let user_at = done + self.clients[ci].spec.kernel_rx;
                queue.schedule(user_at, Event::ClientRxUser(req));
            }
            Event::ClientRxUser(req) => {
                let ci = req.client as usize;
                let delivered = self.clients[ci].rx_delivered_at(now);
                queue.schedule(delivered, Event::Delivered(req));
            }
            Event::Delivered(mut req) => {
                req.t_delivered = now;
                let ci = req.client as usize;
                if self.policy.is_some() && self.clients[ci].in_flight.remove(&req.id).is_none() {
                    // A hedge lost the race, or the response arrived
                    // after the tester gave up — either way the logical
                    // request is already settled.
                    return;
                }
                self.outstanding -= 1;
                self.clients[ci]
                    .records
                    .push(ResponseRecord::from_request(&req));
                let next = {
                    let c = &mut self.clients[ci];
                    c.source.on_response(req.conn, now, &mut c.rng)
                };
                if let Some(order) = next {
                    self.maybe_schedule_send(req.client, order, queue);
                }
            }
            Event::GovernorTick => {
                let stalled = self.server.governor_tick(now);
                for core in stalled {
                    if !self.server.cores[core].is_busy() {
                        self.dispatch_core(core, now, queue);
                    }
                }
                let next = now + self.server.spec().governor_period;
                if next <= self.stop_sending_at {
                    queue.schedule(next, Event::GovernorTick);
                }
            }
            Event::ThermalTick => {
                self.server.thermal_tick(now);
                let next = now + self.server.spec().thermal_period;
                if next <= self.stop_sending_at {
                    queue.schedule(next, Event::ThermalTick);
                }
            }
            Event::RequestTimeout { client, id, attempt } => {
                let ci = client as usize;
                let Some(entry) = self.clients[ci].in_flight.get(&id) else {
                    return; // completed before the timer fired
                };
                if entry.attempt != attempt {
                    return; // a later attempt re-armed the timer
                }
                self.clients[ci].timeouts += 1;
                self.fail_or_retry(client, id, FailureKind::TimedOut, now, queue);
            }
            Event::RetryFire { client, id } => {
                let ci = client as usize;
                let Some(entry) = self.clients[ci].in_flight.get(&id).copied() else {
                    return; // a late response settled it during backoff
                };
                let policy = self.policy.expect("retry without a policy");
                let req = self.resend_packet(client, id, entry);
                self.clients[ci].retries_sent += 1;
                let tx_at = self.clients[ci].tx_ready_at(now);
                queue.schedule(tx_at, Event::ClientTxNic(req));
                if policy.timeout_us > 0.0 {
                    queue.schedule(
                        now + policy.timeout(),
                        Event::RequestTimeout { client, id, attempt: entry.attempt },
                    );
                }
            }
            Event::HedgeFire { client, id } => {
                let ci = client as usize;
                let Some(entry) = self.clients[ci].in_flight.get_mut(&id) else {
                    return; // already answered
                };
                if entry.hedged {
                    return;
                }
                entry.hedged = true;
                let entry = *entry;
                let req = self.resend_packet(client, id, entry);
                self.clients[ci].hedges_sent += 1;
                let tx_at = self.clients[ci].tx_ready_at(now);
                queue.schedule(tx_at, Event::ClientTxNic(req));
            }
            Event::FaultStall => {
                let cores = self.server.cores.len();
                let plan = self.faults.as_mut().expect("stall without a plan");
                let (core, stall) = plan.draw_stall(cores);
                let gap = plan.draw_stall_gap();
                self.server.cores[core].enqueue_front(CoreJob::Stall(stall));
                if !self.server.cores[core].is_busy() {
                    self.dispatch_core(core, now, queue);
                }
                let next = now + gap;
                if next <= self.stop_sending_at {
                    queue.schedule(next, Event::FaultStall);
                }
            }
            Event::ServerCrash => {
                let mut dropped = 0u64;
                for core in &mut self.server.cores {
                    dropped += core.clear_queue() as u64;
                }
                let plan = self.faults.as_mut().expect("crash without a plan");
                plan.note_crash(now);
                plan.add_crash_drops(dropped);
            }
            Event::ConnReset(req) => {
                let client = req.client;
                let ci = client as usize;
                if self.policy.is_some() {
                    let Some(entry) = self.clients[ci].in_flight.get(&req.id) else {
                        return; // a hedge already succeeded
                    };
                    if entry.attempt != req.attempt {
                        return; // reset of a superseded attempt
                    }
                    self.clients[ci].resets += 1;
                    self.fail_or_retry(client, req.id, FailureKind::ConnectionReset, now, queue);
                } else {
                    // No retry policy: surface the failure immediately
                    // so closed-loop sources keep flowing.
                    self.clients[ci].resets += 1;
                    self.outstanding -= 1;
                    self.clients[ci].failures.push(FailureRecord {
                        id: req.id,
                        client,
                        conn: req.conn,
                        t_generated: req.t_generated,
                        t_failed: now,
                        attempts: req.attempt + 1,
                        kind: FailureKind::ConnectionReset,
                    });
                    let next = {
                        let c = &mut self.clients[ci];
                        c.source.on_response(req.conn, now, &mut c.rng)
                    };
                    if let Some(order) = next {
                        self.maybe_schedule_send(client, order, queue);
                    }
                }
            }
        }
    }
}

/// Builds and runs cluster simulations.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use treadmill_cluster::{ClusterBuilder, ClientSpec, PoissonSource};
/// use treadmill_sim_core::SimDuration;
/// use treadmill_workloads::Memcached;
///
/// let result = ClusterBuilder::new(Arc::new(Memcached::default()))
///     .seed(42)
///     .client(ClientSpec::default(), Box::new(PoissonSource::new(50_000.0, 16)))
///     .duration(SimDuration::from_millis(50))
///     .run();
/// assert!(result.total_responses() > 1_000);
/// ```
#[derive(Debug)]
pub struct ClusterBuilder {
    workload: Arc<dyn Workload>,
    hardware: HardwareConfig,
    server_spec: ServerSpec,
    network_spec: NetworkSpec,
    clients: Vec<(ClientSpec, Box<dyn TrafficSource>)>,
    seed: u64,
    duration: SimDuration,
    sample_outstanding: bool,
    trace_frequencies: bool,
    fault_spec: FaultSpec,
    retry_policy: RetryPolicy,
    shard: Option<(u32, u32, u32)>,
}

impl ClusterBuilder {
    /// Starts a builder for the given workload with default hardware
    /// (all factors low), specs, a 100 ms sending window, and seed 0.
    pub fn new(workload: Arc<dyn Workload>) -> Self {
        ClusterBuilder {
            workload,
            hardware: HardwareConfig::default(),
            server_spec: ServerSpec::default(),
            network_spec: NetworkSpec::default(),
            clients: Vec::new(),
            seed: 0,
            duration: SimDuration::from_millis(100),
            sample_outstanding: false,
            trace_frequencies: false,
            fault_spec: FaultSpec::default(),
            retry_policy: RetryPolicy::default(),
            shard: None,
        }
    }

    /// Sets the hardware factor configuration (Table III).
    pub fn hardware(mut self, hardware: HardwareConfig) -> Self {
        self.hardware = hardware;
        self
    }

    /// Overrides the server specification.
    pub fn server_spec(mut self, spec: ServerSpec) -> Self {
        self.server_spec = spec;
        self
    }

    /// Overrides the network specification.
    pub fn network_spec(mut self, spec: NetworkSpec) -> Self {
        self.network_spec = spec;
        self
    }

    /// Adds a client machine hosting the given traffic source.
    pub fn client(mut self, spec: ClientSpec, source: Box<dyn TrafficSource>) -> Self {
        self.clients.push((spec, source));
        self
    }

    /// Sets the master seed. Every stochastic component derives its own
    /// stream from this.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how long clients keep sending (the run then drains).
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Enables sampling of the in-flight request count at every send
    /// (Figure 1's probe).
    pub fn sample_outstanding(mut self, on: bool) -> Self {
        self.sample_outstanding = on;
        self
    }

    /// Enables recording of every DVFS frequency transition.
    pub fn trace_frequencies(mut self, on: bool) -> Self {
        self.trace_frequencies = on;
        self
    }

    /// Configures fault injection. The default (all-zero) spec leaves
    /// the run bit-identical to a fault-free build.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.fault_spec = spec;
        self
    }

    /// Configures client-side timeouts / retries / hedging. The default
    /// policy is disabled and changes nothing.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = policy;
        self
    }

    /// Marks this world as shard `index` of `n_shards` in a
    /// [`crate::ShardedCluster`], with every `remote_every`-th
    /// connection targeting a foreign server (0 keeps all traffic
    /// local). A `(0, 1, _)` context changes nothing observable: with
    /// one shard no connection is ever remote, so the event and RNG
    /// sequences match the unsharded build bit for bit.
    pub fn shard(mut self, index: u32, n_shards: u32, remote_every: u32) -> Self {
        self.shard = Some((index, n_shards, remote_every));
        self
    }

    /// Builds the engine with all initial events scheduled.
    ///
    /// # Panics
    ///
    /// Panics if no clients were added.
    pub fn build(self) -> Engine<ClusterWorld> {
        assert!(!self.clients.is_empty(), "cluster needs at least one client");
        let seeds = SeedStream::new(self.seed);
        let conn_counts: Vec<u32> =
            self.clients.iter().map(|(spec, _)| spec.connections).collect();
        let mut hysteresis_rng = seeds.stream("hysteresis", 0);
        let run_state = RunState::generate(
            &self.server_spec,
            self.hardware,
            &conn_counts,
            &mut hysteresis_rng,
        );
        let clients: Vec<ClientMachine> = self
            .clients
            .into_iter()
            .enumerate()
            .map(|(i, (spec, source))| {
                ClientMachine::new(spec, source, seeds.stream("client", i as u64))
            })
            .collect();
        let racks: Vec<u8> = clients.iter().map(|c| c.spec.rack).collect();
        let stop_sending_at = SimTime::ZERO + self.duration;
        let mut server = Server::new(self.server_spec, self.hardware);
        if self.trace_frequencies {
            server.enable_frequency_trace();
        }
        let governor_period = server.spec().governor_period;
        let thermal_period = server.spec().thermal_period;
        let faults = self.fault_spec.is_active().then(|| {
            FaultPlan::generate(self.fault_spec, self.duration, seeds.stream("faults", 0))
        });
        let policy = self.retry_policy.enabled().then_some(self.retry_policy);
        let crash_starts = faults.as_ref().map(FaultPlan::crash_starts).unwrap_or_default();
        let first_stall = faults.as_ref().and_then(FaultPlan::first_stall);
        let world = ClusterWorld {
            workload: self.workload,
            server,
            network: Network::new(self.network_spec, &racks),
            clients,
            run_state,
            stop_sending_at,
            next_id: 0,
            outstanding: 0,
            outstanding_samples: Vec::new(),
            sample_outstanding: self.sample_outstanding,
            faults,
            policy,
            shard: self.shard.map(|(index, n_shards, remote_every)| {
                ShardCtx::new(index, n_shards, remote_every, crate::shard::INTER_SHARD_PROPAGATION)
            }),
        };
        // Steady state keeps roughly one in-flight event per open
        // connection plus per-core completions and the periodic ticks;
        // 4x covers bursts so the hot schedule path never reallocates.
        let total_connections: usize = conn_counts.iter().map(|&c| c as usize).sum();
        let queue_capacity = total_connections * 4 + 64;
        let mut engine = Engine::with_queue_capacity(world, queue_capacity);
        let starts = engine.world_mut().collect_start_orders(SimTime::ZERO);
        for (client, order) in starts {
            if order.at <= stop_sending_at {
                engine.schedule(
                    order.at,
                    Event::SendFire {
                        client,
                        conn: order.conn,
                    },
                );
            }
        }
        engine.schedule(SimTime::ZERO + governor_period, Event::GovernorTick);
        engine.schedule(SimTime::ZERO + thermal_period, Event::ThermalTick);
        for at in crash_starts {
            engine.schedule(at, Event::ServerCrash);
        }
        if let Some(at) = first_stall {
            engine.schedule(at, Event::FaultStall);
        }
        engine
    }

    /// Builds, runs to completion (sending window + drain), and extracts
    /// the results.
    pub fn run(self) -> RunResult {
        let mut engine = self.build();
        engine.run_to_completion();
        extract_result(engine)
    }
}

/// Deterministic placement for a foreign request: the destination
/// server holds hysteresis state only for its own shard's connections,
/// so a remote connection's worker core and RSS queue are hashed from
/// its `(shard, client, conn)` identity. Pure function of the
/// connection — identical at every thread count, every round, every
/// resume.
fn remote_conn_state(
    home: u32,
    client: u32,
    conn: u32,
    spec: &ServerSpec,
) -> crate::hysteresis::ConnectionState {
    let h = treadmill_sim_core::splitmix64(
        (u64::from(home) << 40) ^ (u64::from(client) << 20) ^ u64::from(conn),
    );
    let total_cores = u64::from(spec.sockets) * u64::from(spec.cores_per_socket);
    let rss = u64::from(spec.rss_queues);
    // Both moduli are bounded by u8 hardware spec fields.
    #[allow(clippy::cast_possible_truncation)]
    let worker = (h % total_cores) as u8;
    #[allow(clippy::cast_possible_truncation)]
    let hashed_rss = ((h >> 24) % rss) as u8;
    crate::hysteresis::ConnectionState {
        worker_core: worker,
        rss_queue: hashed_rss,
        buffer_remote: false,
    }
}

/// Extracts a [`RunResult`] from a finished (or checkpoint-resumed and
/// then finished) engine. [`ClusterBuilder::run`] is exactly
/// `build()` + `run_to_completion()` + this, so a stepped run that
/// drains the queue and calls this produces a bit-identical result.
///
/// A final invariant audit runs before extraction; any findings land in
/// [`RunResult::audit_findings`].
pub fn extract_result(engine: Engine<ClusterWorld>) -> RunResult {
    let audit_findings = crate::audit::audit_invariants(&engine, usize::MAX);
    let completed_at = engine.now();
    let events_executed = engine.events_executed();
    let world = engine.into_world();
    let sending_stopped_at = world.stop_sending_at;
    let per_core = world
        .server
        .cores
        .iter()
        .map(|c| CoreStats {
            core: c.id,
            socket: c.socket,
            utilization: c.util.utilization(sending_stopped_at),
            final_freq_ghz: c.freq_ghz(),
            jobs_done: c.jobs_done(),
            transitions: c.transitions(),
        })
        .collect();
    let server_utilization = world.server.mean_utilization(sending_stopped_at);
    let frequency_transitions = world.server.total_transitions();
    let final_heat = world.server.thermal().heat();
    let run_remote_fraction = world.run_state.remote_fraction();
    let client_cpu_utilization = world
        .clients
        .iter()
        .map(|c| c.cpu_utilization(sending_stopped_at))
        .collect();
    let frequency_trace = world
        .server
        .frequency_trace()
        .map(<[crate::server::FrequencyEvent]>::to_vec)
        .unwrap_or_default();
    let mut fault_summary = world
        .faults
        .as_ref()
        .map(FaultPlan::summary_base)
        .unwrap_or_default();
    let mut client_records: Vec<Vec<ResponseRecord>> =
        Vec::with_capacity(world.clients.len());
    let mut client_failures = Vec::with_capacity(world.clients.len());
    for c in world.clients {
        fault_summary.retries += c.retries_sent;
        fault_summary.hedges += c.hedges_sent;
        fault_summary.timeouts += c.timeouts;
        fault_summary.resets += c.resets;
        fault_summary.failed_requests += c.failures.len() as u64;
        client_records.push(c.records);
        client_failures.push(c.failures);
    }
    let delivered_in_window = client_records
        .iter()
        .flatten()
        .filter(|r| r.t_delivered <= sending_stopped_at)
        .count();
    RunResult {
        per_core,
        server_utilization,
        frequency_transitions,
        final_heat,
        run_remote_fraction,
        client_cpu_utilization,
        frequency_trace,
        client_records,
        client_failures,
        fault_summary,
        delivered_in_window,
        outstanding: world.outstanding_samples,
        sending_stopped_at,
        completed_at,
        events_executed,
        audit_findings,
    }
}

/// Everything a finished run produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completed-request records, per client, in delivery order.
    pub client_records: Vec<Vec<ResponseRecord>>,
    /// Abandoned-request records (timeouts / resets), per client.
    /// Empty when no faults were configured.
    pub client_failures: Vec<Vec<FailureRecord>>,
    /// Fault-injection and robustness counters (all zero for a
    /// fault-free run).
    pub fault_summary: FaultSummary,
    /// Responses delivered no later than `sending_stopped_at` —
    /// precomputed so completion-ratio checks don't re-walk every record.
    pub delivered_in_window: usize,
    /// `(time, in-flight count)` samples taken at each send, if enabled.
    pub outstanding: Vec<(SimTime, u32)>,
    /// When clients stopped sending.
    pub sending_stopped_at: SimTime,
    /// When the last event executed (the drain finished).
    pub completed_at: SimTime,
    /// Mean core utilisation over the sending window.
    pub server_utilization: f64,
    /// Per-client CPU utilisation over the sending window.
    pub client_cpu_utilization: Vec<f64>,
    /// Per-core diagnostics (utilisation, frequency, job counts).
    pub per_core: Vec<CoreStats>,
    /// Recorded frequency transitions (empty unless
    /// [`ClusterBuilder::trace_frequencies`] was enabled).
    pub frequency_trace: Vec<crate::server::FrequencyEvent>,
    /// Total DVFS frequency transitions.
    pub frequency_transitions: u64,
    /// Package heat at the end of the run (diagnostics).
    pub final_heat: f64,
    /// The run's realised remote-buffer fraction (hysteresis state).
    pub run_remote_fraction: f64,
    /// Total events executed.
    pub events_executed: u64,
    /// Invariant-auditor findings from the end-of-run audit (empty for
    /// a healthy run). See [`crate::audit::audit_invariants`].
    pub audit_findings: Vec<String>,
}

impl RunResult {
    /// Iterates over all clients' records.
    pub fn all_records(&self) -> impl Iterator<Item = &ResponseRecord> {
        self.client_records.iter().flatten()
    }

    /// Total responses delivered.
    pub fn total_responses(&self) -> usize {
        self.client_records.iter().map(Vec::len).sum()
    }

    /// Total logical requests the testers abandoned.
    pub fn total_failures(&self) -> usize {
        self.client_failures.iter().map(Vec::len).sum()
    }

    /// Fraction of settled logical requests that ended in failure
    /// (0.0 for a clean run).
    pub fn loss_fraction(&self) -> f64 {
        let failed = self.total_failures();
        let settled = failed + self.total_responses();
        if settled == 0 {
            return 0.0;
        }
        failed as f64 / settled as f64
    }

    /// Right-censored latencies (µs) of requests abandoned at or after
    /// `warmup` — lower bounds for the omission-correction estimator.
    pub fn censored_latencies_us(&self, warmup: SimTime) -> Vec<f64> {
        self.client_failures
            .iter()
            .flatten()
            .filter(|f| f.t_generated >= warmup)
            .map(FailureRecord::censored_latency_us)
            .collect()
    }

    /// User-space latencies (µs) of records generated at or after
    /// `warmup` — the load tester's view with warm-up discarded.
    pub fn user_latencies_us(&self, warmup: SimTime) -> Vec<f64> {
        self.all_records()
            .filter(|r| r.t_generated >= warmup)
            .map(ResponseRecord::user_latency_us)
            .collect()
    }

    /// Fraction of measurement-window requests whose user-space latency
    /// met `deadline` — the operator-facing SLA attainment view of the
    /// same tail the paper studies.
    ///
    /// # Panics
    ///
    /// Panics if no requests were generated at or after `warmup`.
    pub fn sla_attainment(&self, warmup: SimTime, deadline: SimDuration) -> f64 {
        let deadline_us = deadline.as_micros_f64();
        let mut total = 0usize;
        let mut within = 0usize;
        for record in self.all_records() {
            if record.t_generated < warmup {
                continue;
            }
            total += 1;
            if record.user_latency_us() <= deadline_us {
                within += 1;
            }
        }
        assert!(total > 0, "no measurement-window requests");
        within as f64 / total as f64
    }

    /// tcpdump ground-truth latencies (µs) after `warmup`.
    pub fn nic_latencies_us(&self, warmup: SimTime) -> Vec<f64> {
        self.all_records()
            .filter(|r| r.t_generated >= warmup)
            .map(ResponseRecord::nic_latency_us)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PoissonSource;
    use rand::RngCore;
    use treadmill_stats::quantile::quantile;
    use treadmill_workloads::Memcached;

    fn quick_run(rate: f64, seed: u64) -> RunResult {
        ClusterBuilder::new(Arc::new(Memcached::default()))
            .seed(seed)
            .client(
                ClientSpec::default(),
                Box::new(PoissonSource::new(rate, 16)),
            )
            .duration(SimDuration::from_millis(60))
            .run()
    }

    #[test]
    fn requests_complete_and_latency_is_sane() {
        let result = quick_run(100_000.0, 1);
        // ~6000 requests in 60ms at 100k RPS.
        assert!(result.total_responses() > 5_000, "{}", result.total_responses());
        assert!(result.total_responses() < 7_000);
        let latencies = result.user_latencies_us(SimTime::from_millis(10));
        let p50 = quantile(&latencies, 0.5);
        // Floor: ~29us client + ~10us network + ~16us+ server.
        assert!(p50 > 40.0, "p50 {p50}us implausibly low");
        assert!(p50 < 300.0, "p50 {p50}us implausibly high at 10% util");
    }

    #[test]
    fn user_latency_exceeds_nic_latency_by_fixed_kernel_cost() {
        let result = quick_run(50_000.0, 2);
        let warmup = SimTime::from_millis(10);
        let user = result.user_latencies_us(warmup);
        let nic = result.nic_latencies_us(warmup);
        let gap = quantile(&user, 0.5) - quantile(&nic, 0.5);
        // kernel_tx 12us + kernel_rx 16us + 2 cpu ops ~1.6us ≈ 29.6us.
        assert!(gap > 20.0 && gap < 40.0, "gap {gap}us");
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let low = quick_run(100_000.0, 3);
        let high = quick_run(700_000.0, 3);
        assert!(
            low.server_utilization < 0.25,
            "low-load util {}",
            low.server_utilization
        );
        assert!(
            high.server_utilization > 0.5,
            "high-load util {}",
            high.server_utilization
        );
        assert!(high.server_utilization < 0.98);
    }

    #[test]
    fn tail_grows_with_load() {
        let warmup = SimTime::from_millis(10);
        let low = quick_run(100_000.0, 4);
        let high = quick_run(700_000.0, 4);
        let p99_low = quantile(&low.user_latencies_us(warmup), 0.99);
        let p99_high = quantile(&high.user_latencies_us(warmup), 0.99);
        assert!(
            p99_high > p99_low * 1.5,
            "queueing should inflate the tail: {p99_low} → {p99_high}"
        );
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let a = quick_run(200_000.0, 7);
        let b = quick_run(200_000.0, 7);
        assert_eq!(a.total_responses(), b.total_responses());
        assert_eq!(a.events_executed, b.events_executed);
        let la = a.user_latencies_us(SimTime::ZERO);
        let lb = b.user_latencies_us(SimTime::ZERO);
        assert_eq!(la, lb);
    }

    #[test]
    fn different_seeds_exhibit_hysteresis() {
        let warmup = SimTime::from_millis(10);
        let p99s: Vec<f64> = (0..4)
            .map(|s| quantile(&quick_run(600_000.0, 100 + s).user_latencies_us(warmup), 0.99))
            .collect();
        let min = p99s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = p99s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max / min > 1.02,
            "expected run-to-run variation, got {p99s:?}"
        );
    }

    #[test]
    fn frequency_trace_records_governor_activity() {
        let result = ClusterBuilder::new(Arc::new(Memcached::default()))
            .seed(13)
            .client(
                ClientSpec::default(),
                Box::new(PoissonSource::new(100_000.0, 16)),
            )
            .duration(SimDuration::from_millis(60))
            .trace_frequencies(true)
            .run();
        // Ondemand at low load: idle-ish cores get down-clocked at the
        // first ticks; transitions must be recorded in time order.
        assert!(!result.frequency_trace.is_empty());
        for pair in result.frequency_trace.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert!(result
            .frequency_trace
            .iter()
            .all(|e| e.ghz >= 1.2 && e.ghz <= 3.0));
    }

    #[test]
    fn sla_attainment_brackets_the_quantiles() {
        let result = quick_run(400_000.0, 11);
        let warmup = SimTime::from_millis(10);
        let lat = result.user_latencies_us(warmup);
        let p99 = quantile(&lat, 0.99);
        let at_p99 = result.sla_attainment(warmup, SimDuration::from_micros(p99 as u64 + 1));
        assert!((at_p99 - 0.99).abs() < 0.01, "attainment at p99 = {at_p99}");
        assert_eq!(
            result.sla_attainment(warmup, SimDuration::from_secs(10)),
            1.0,
            "everything meets a 10s deadline"
        );
    }

    #[test]
    fn per_core_stats_reflect_nic_policy() {
        // With same-node affinity all interrupts land on socket 0, so
        // socket-0 cores do measurably more jobs.
        let result = quick_run(400_000.0, 9);
        assert_eq!(result.per_core.len(), 16);
        let socket_jobs = |socket: u8| -> u64 {
            result
                .per_core
                .iter()
                .filter(|c| c.socket == socket)
                .map(|c| c.jobs_done)
                .sum()
        };
        assert!(
            socket_jobs(0) > socket_jobs(1),
            "socket 0 handles all IRQs under same-node affinity"
        );
        assert!(result.per_core.iter().all(|c| c.final_freq_ghz >= 1.2));
    }

    #[test]
    fn outstanding_samples_collected_when_enabled() {
        let result = ClusterBuilder::new(Arc::new(Memcached::default()))
            .seed(5)
            .client(
                ClientSpec::default(),
                Box::new(PoissonSource::new(100_000.0, 16)),
            )
            .duration(SimDuration::from_millis(20))
            .sample_outstanding(true)
            .run();
        assert!(!result.outstanding.is_empty());
        assert!(result.outstanding.iter().all(|&(_, n)| n >= 1));
    }

    #[test]
    fn multi_client_records_split_per_client() {
        let result = ClusterBuilder::new(Arc::new(Memcached::default()))
            .seed(6)
            .client(
                ClientSpec::default(),
                Box::new(PoissonSource::new(50_000.0, 8)),
            )
            .client(
                ClientSpec {
                    rack: 1,
                    ..Default::default()
                },
                Box::new(PoissonSource::new(50_000.0, 8)),
            )
            .duration(SimDuration::from_millis(40))
            .run();
        assert_eq!(result.client_records.len(), 2);
        assert!(result.client_records[0].len() > 1_000);
        assert!(result.client_records[1].len() > 1_000);
        // The cross-rack client sees strictly higher median latency.
        let m0 = quantile(
            &result.client_records[0]
                .iter()
                .map(ResponseRecord::user_latency_us)
                .collect::<Vec<_>>(),
            0.5,
        );
        let m1 = quantile(
            &result.client_records[1]
                .iter()
                .map(ResponseRecord::user_latency_us)
                .collect::<Vec<_>>(),
            0.5,
        );
        assert!(m1 > m0 + 30.0, "cross-rack median {m1} vs same-rack {m0}");
    }

    /// A minimal closed-loop source for capping tests: each connection
    /// resends immediately upon response.
    #[derive(Debug)]
    struct TestClosedSource {
        connections: u32,
    }

    impl TrafficSource for TestClosedSource {
        fn start(&mut self, now: SimTime, _rng: &mut dyn RngCore) -> Vec<SendOrder> {
            (0..self.connections)
                .map(|conn| SendOrder { at: now, conn })
                .collect()
        }
        fn on_sent(&mut self, _now: SimTime, _rng: &mut dyn RngCore) -> Option<SendOrder> {
            None
        }
        fn on_response(
            &mut self,
            conn: u32,
            now: SimTime,
            _rng: &mut dyn RngCore,
        ) -> Option<SendOrder> {
            Some(SendOrder { at: now, conn })
        }
    }

    #[test]
    fn closed_loop_caps_outstanding_requests() {
        let result = ClusterBuilder::new(Arc::new(Memcached::default()))
            .seed(8)
            .client(
                ClientSpec {
                    connections: 8,
                    ..Default::default()
                },
                Box::new(TestClosedSource { connections: 8 }),
            )
            .duration(SimDuration::from_millis(30))
            .sample_outstanding(true)
            .run();
        let max_outstanding = result.outstanding.iter().map(|&(_, n)| n).max().unwrap();
        assert!(max_outstanding <= 8, "closed loop exceeded cap: {max_outstanding}");
        assert!(result.total_responses() > 100);
    }

    #[test]
    #[should_panic(expected = "declares only")]
    fn source_with_too_many_connections_rejected() {
        let _ = ClusterBuilder::new(Arc::new(Memcached::default()))
            .seed(1)
            .client(
                ClientSpec {
                    connections: 4,
                    ..Default::default()
                },
                Box::new(PoissonSource::new(50_000.0, 8)),
            )
            .duration(SimDuration::from_millis(5))
            .run();
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_cluster_rejected() {
        let _ = ClusterBuilder::new(Arc::new(Memcached::default())).build();
    }
}
