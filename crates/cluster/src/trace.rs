//! Trace-replay traffic source.
//!
//! The precisely-timed open-loop controller can replay a *recorded*
//! send schedule instead of synthesising one — useful for feeding
//! production inter-arrival traces (the paper calibrates its
//! exponential model against Google production measurements) and for
//! replaying the exact same arrival sequence against two system
//! configurations, which removes arrival-process noise from A/B
//! comparisons.

use rand::RngCore;
use treadmill_sim_core::{SimDuration, SimTime};

use crate::source::{SendOrder, TrafficSource};

/// Replays a fixed schedule of send instants, optionally looping.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treadmill_cluster::{TraceSource, TrafficSource};
/// use treadmill_sim_core::{SimDuration, SimTime};
///
/// let gaps = vec![SimDuration::from_micros(10), SimDuration::from_micros(20)];
/// let mut source = TraceSource::new(gaps, 4, false);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let first = source.start(SimTime::ZERO, &mut rng);
/// assert_eq!(first[0].at, SimTime::from_micros(10));
/// ```
#[derive(Debug, Clone)]
pub struct TraceSource {
    gaps: Vec<SimDuration>,
    connections: u32,
    looped: bool,
    next_index: usize,
    next_conn: u32,
}

impl TraceSource {
    /// Creates a source replaying `gaps` (inter-arrival times). With
    /// `looped`, the trace repeats indefinitely; otherwise the source
    /// stops after the last gap.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `connections` is zero.
    pub fn new(gaps: Vec<SimDuration>, connections: u32, looped: bool) -> Self {
        assert!(!gaps.is_empty(), "empty trace");
        assert!(connections > 0, "need at least one connection");
        TraceSource {
            gaps,
            connections,
            looped,
            next_index: 0,
            next_conn: 0,
        }
    }

    /// Builds a trace from a target schedule of absolute send times.
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty or not strictly increasing.
    pub fn from_schedule(times: &[SimTime], connections: u32, looped: bool) -> Self {
        assert!(!times.is_empty(), "empty trace");
        let mut gaps = Vec::with_capacity(times.len());
        let mut prev = SimTime::ZERO;
        for &t in times {
            assert!(t > prev, "schedule must be strictly increasing");
            gaps.push(t.duration_since(prev));
            prev = t;
        }
        Self::new(gaps, connections, looped)
    }

    /// Trace length in sends.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// True if the trace has no gaps (cannot happen after construction).
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    fn next_order(&mut self, now: SimTime) -> Option<SendOrder> {
        if self.next_index >= self.gaps.len() {
            if !self.looped {
                return None;
            }
            self.next_index = 0;
        }
        let gap = self.gaps[self.next_index];
        self.next_index += 1;
        let conn = self.next_conn;
        self.next_conn = (self.next_conn + 1) % self.connections;
        Some(SendOrder {
            at: now + gap,
            conn,
        })
    }
}

impl TrafficSource for TraceSource {
    fn start(&mut self, now: SimTime, _rng: &mut dyn RngCore) -> Vec<SendOrder> {
        self.next_order(now).into_iter().collect()
    }

    fn on_sent(&mut self, now: SimTime, _rng: &mut dyn RngCore) -> Option<SendOrder> {
        self.next_order(now)
    }

    fn on_response(
        &mut self,
        _conn: u32,
        _now: SimTime,
        _rng: &mut dyn RngCore,
    ) -> Option<SendOrder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    #[test]
    fn replays_gaps_in_order() {
        let gaps = vec![
            SimDuration::from_micros(5),
            SimDuration::from_micros(10),
            SimDuration::from_micros(1),
        ];
        let mut src = TraceSource::new(gaps, 2, false);
        let mut r = rng();
        let a = src.start(SimTime::ZERO, &mut r)[0];
        assert_eq!(a.at, SimTime::from_micros(5));
        assert_eq!(a.conn, 0);
        let b = src.on_sent(a.at, &mut r).unwrap();
        assert_eq!(b.at, SimTime::from_micros(15));
        assert_eq!(b.conn, 1);
        let c = src.on_sent(b.at, &mut r).unwrap();
        assert_eq!(c.at, SimTime::from_micros(16));
        assert!(src.on_sent(c.at, &mut r).is_none(), "trace exhausted");
    }

    #[test]
    fn looping_replays_forever() {
        let mut src = TraceSource::new(vec![SimDuration::from_micros(2)], 1, true);
        let mut r = rng();
        let mut now = src.start(SimTime::ZERO, &mut r)[0].at;
        for i in 2..100u64 {
            let next = src.on_sent(now, &mut r).unwrap();
            assert_eq!(next.at, SimTime::from_micros(2 * i));
            now = next.at;
        }
    }

    #[test]
    fn from_schedule_computes_gaps() {
        let times = [
            SimTime::from_micros(3),
            SimTime::from_micros(7),
            SimTime::from_micros(20),
        ];
        let src = TraceSource::from_schedule(&times, 1, false);
        assert_eq!(src.len(), 3);
        assert!(!src.is_empty());
    }

    #[test]
    fn replay_is_deterministic_across_hardware_configs() {
        use crate::{ClientSpec, ClusterBuilder, HardwareConfig};
        use std::sync::Arc;
        use treadmill_workloads::Memcached;

        let gaps: Vec<SimDuration> =
            (0..2_000).map(|i| SimDuration::from_nanos(5_000 + (i % 7) * 911)).collect();
        let run = |hw: HardwareConfig| {
            ClusterBuilder::new(Arc::new(Memcached::default()))
                .seed(3)
                .hardware(hw)
                .client(
                    ClientSpec::default(),
                    Box::new(TraceSource::new(gaps.clone(), 8, false)),
                )
                .duration(SimDuration::from_millis(100))
                .run()
        };
        let a = run(HardwareConfig::from_index(0));
        let b = run(HardwareConfig::from_index(1));
        // Same arrivals on both sides ...
        assert_eq!(a.total_responses(), b.total_responses());
        // Records arrive in delivery order, which differs between
        // configurations; the *send schedule* must match as a set.
        let mut gen_a: Vec<_> = a.all_records().map(|r| r.t_generated).collect();
        let mut gen_b: Vec<_> = b.all_records().map(|r| r.t_generated).collect();
        gen_a.sort();
        gen_b.sort();
        assert_eq!(gen_a, gen_b, "identical send schedules");
        // ... but different service behaviour.
        let p99 = |r: &crate::RunResult| {
            treadmill_stats::quantile::quantile(
                &r.user_latencies_us(SimTime::ZERO),
                0.99,
            )
        };
        assert_ne!(p99(&a), p99(&b));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_schedule_rejected() {
        let times = [SimTime::from_micros(5), SimTime::from_micros(5)];
        TraceSource::from_schedule(&times, 1, false);
    }
}
