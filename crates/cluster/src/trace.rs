//! Trace-replay traffic source.
//!
//! The precisely-timed open-loop controller can replay a *recorded*
//! send schedule instead of synthesising one — useful for feeding
//! production inter-arrival traces (the paper calibrates its
//! exponential model against Google production measurements) and for
//! replaying the exact same arrival sequence against two system
//! configurations, which removes arrival-process noise from A/B
//! comparisons.

use std::fmt;

use rand::RngCore;
use serde::Deserialize;
use treadmill_sim_core::{SimDuration, SimTime};

use crate::source::{SendOrder, TrafficSource};

/// Typed errors from trace construction and parsing — malformed input
/// surfaces as a readable message instead of a panic.
#[derive(Debug)]
pub enum TraceError {
    /// The trace contains no send instants.
    Empty,
    /// `connections` was zero.
    ZeroConnections,
    /// An absolute schedule was not strictly increasing at this index.
    NotIncreasing {
        /// Index of the first offending entry.
        index: usize,
    },
    /// A gap was negative or not finite.
    InvalidGap {
        /// Index of the offending gap.
        index: usize,
        /// The value found, microseconds.
        value_us: f64,
    },
    /// The trace JSON did not parse.
    Json(serde_json::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "empty trace: need at least one send"),
            TraceError::ZeroConnections => write!(f, "need at least one connection"),
            TraceError::NotIncreasing { index } => {
                write!(f, "schedule must be strictly increasing (entry {index})")
            }
            TraceError::InvalidGap { index, value_us } => {
                write!(f, "gap {index} must be finite and non-negative, got {value_us} us")
            }
            TraceError::Json(e) => write!(f, "invalid trace JSON: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

/// The on-disk trace format: inter-arrival gaps in microseconds plus
/// replay options.
#[derive(Debug, Deserialize)]
struct TraceFile {
    gaps_us: Vec<f64>,
    #[serde(default = "default_trace_connections")]
    connections: u32,
    #[serde(default)]
    looped: bool,
}

fn default_trace_connections() -> u32 {
    1
}

/// Replays a fixed schedule of send instants, optionally looping.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treadmill_cluster::{TraceSource, TrafficSource};
/// use treadmill_sim_core::{SimDuration, SimTime};
///
/// let gaps = vec![SimDuration::from_micros(10), SimDuration::from_micros(20)];
/// let mut source = TraceSource::new(gaps, 4, false);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let first = source.start(SimTime::ZERO, &mut rng);
/// assert_eq!(first[0].at, SimTime::from_micros(10));
/// ```
#[derive(Debug, Clone)]
pub struct TraceSource {
    gaps: Vec<SimDuration>,
    connections: u32,
    looped: bool,
    next_index: usize,
    next_conn: u32,
}

impl TraceSource {
    /// Creates a source replaying `gaps` (inter-arrival times). With
    /// `looped`, the trace repeats indefinitely; otherwise the source
    /// stops after the last gap.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `connections` is zero.
    pub fn new(gaps: Vec<SimDuration>, connections: u32, looped: bool) -> Self {
        match Self::try_new(gaps, connections, looped) {
            Ok(source) => source,
            Err(TraceError::Empty) => panic!("empty trace"),
            Err(TraceError::ZeroConnections) => panic!("need at least one connection"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`TraceSource::new`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] or [`TraceError::ZeroConnections`].
    pub fn try_new(
        gaps: Vec<SimDuration>,
        connections: u32,
        looped: bool,
    ) -> Result<Self, TraceError> {
        if gaps.is_empty() {
            return Err(TraceError::Empty);
        }
        if connections == 0 {
            return Err(TraceError::ZeroConnections);
        }
        Ok(TraceSource {
            gaps,
            connections,
            looped,
            next_index: 0,
            next_conn: 0,
        })
    }

    /// Builds a trace from a target schedule of absolute send times.
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty or not strictly increasing.
    pub fn from_schedule(times: &[SimTime], connections: u32, looped: bool) -> Self {
        match Self::try_from_schedule(times, connections, looped) {
            Ok(source) => source,
            Err(TraceError::Empty) => panic!("empty trace"),
            Err(TraceError::NotIncreasing { .. }) => {
                panic!("schedule must be strictly increasing")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`TraceSource::from_schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`], [`TraceError::NotIncreasing`], or
    /// [`TraceError::ZeroConnections`].
    pub fn try_from_schedule(
        times: &[SimTime],
        connections: u32,
        looped: bool,
    ) -> Result<Self, TraceError> {
        if times.is_empty() {
            return Err(TraceError::Empty);
        }
        let mut gaps = Vec::with_capacity(times.len());
        let mut prev = SimTime::ZERO;
        for (index, &t) in times.iter().enumerate() {
            if t <= prev {
                return Err(TraceError::NotIncreasing { index });
            }
            gaps.push(t.duration_since(prev));
            prev = t;
        }
        Self::try_new(gaps, connections, looped)
    }

    /// Parses a trace from JSON:
    /// `{"gaps_us": [10.0, 20.0, ...], "connections": 4, "looped": false}`
    /// (`connections` defaults to 1, `looped` to false).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Json`] on malformed JSON,
    /// [`TraceError::InvalidGap`] on negative or non-finite gaps, and
    /// the construction errors of [`TraceSource::try_new`].
    pub fn from_json(json: &str) -> Result<Self, TraceError> {
        let file: TraceFile = serde_json::from_str(json)?;
        let mut gaps = Vec::with_capacity(file.gaps_us.len());
        for (index, &value_us) in file.gaps_us.iter().enumerate() {
            if !value_us.is_finite() || value_us < 0.0 {
                return Err(TraceError::InvalidGap { index, value_us });
            }
            gaps.push(SimDuration::from_micros_f64(value_us));
        }
        Self::try_new(gaps, file.connections, file.looped)
    }

    /// Trace length in sends.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// True if the trace has no gaps (cannot happen after construction).
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    fn next_order(&mut self, now: SimTime) -> Option<SendOrder> {
        if self.next_index >= self.gaps.len() {
            if !self.looped {
                return None;
            }
            self.next_index = 0;
        }
        let gap = self.gaps[self.next_index];
        self.next_index += 1;
        let conn = self.next_conn;
        self.next_conn = (self.next_conn + 1) % self.connections;
        Some(SendOrder {
            at: now + gap,
            conn,
        })
    }
}

impl TrafficSource for TraceSource {
    fn start(&mut self, now: SimTime, _rng: &mut dyn RngCore) -> Vec<SendOrder> {
        self.next_order(now).into_iter().collect()
    }

    fn on_sent(&mut self, now: SimTime, _rng: &mut dyn RngCore) -> Option<SendOrder> {
        self.next_order(now)
    }

    fn on_response(
        &mut self,
        _conn: u32,
        _now: SimTime,
        _rng: &mut dyn RngCore,
    ) -> Option<SendOrder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    #[test]
    fn replays_gaps_in_order() {
        let gaps = vec![
            SimDuration::from_micros(5),
            SimDuration::from_micros(10),
            SimDuration::from_micros(1),
        ];
        let mut src = TraceSource::new(gaps, 2, false);
        let mut r = rng();
        let a = src.start(SimTime::ZERO, &mut r)[0];
        assert_eq!(a.at, SimTime::from_micros(5));
        assert_eq!(a.conn, 0);
        let b = src.on_sent(a.at, &mut r).unwrap();
        assert_eq!(b.at, SimTime::from_micros(15));
        assert_eq!(b.conn, 1);
        let c = src.on_sent(b.at, &mut r).unwrap();
        assert_eq!(c.at, SimTime::from_micros(16));
        assert!(src.on_sent(c.at, &mut r).is_none(), "trace exhausted");
    }

    #[test]
    fn looping_replays_forever() {
        let mut src = TraceSource::new(vec![SimDuration::from_micros(2)], 1, true);
        let mut r = rng();
        let mut now = src.start(SimTime::ZERO, &mut r)[0].at;
        for i in 2..100u64 {
            let next = src.on_sent(now, &mut r).unwrap();
            assert_eq!(next.at, SimTime::from_micros(2 * i));
            now = next.at;
        }
    }

    #[test]
    fn from_schedule_computes_gaps() {
        let times = [
            SimTime::from_micros(3),
            SimTime::from_micros(7),
            SimTime::from_micros(20),
        ];
        let src = TraceSource::from_schedule(&times, 1, false);
        assert_eq!(src.len(), 3);
        assert!(!src.is_empty());
    }

    #[test]
    fn replay_is_deterministic_across_hardware_configs() {
        use crate::{ClientSpec, ClusterBuilder, HardwareConfig};
        use std::sync::Arc;
        use treadmill_workloads::Memcached;

        let gaps: Vec<SimDuration> =
            (0..2_000).map(|i| SimDuration::from_nanos(5_000 + (i % 7) * 911)).collect();
        let run = |hw: HardwareConfig| {
            ClusterBuilder::new(Arc::new(Memcached::default()))
                .seed(3)
                .hardware(hw)
                .client(
                    ClientSpec::default(),
                    Box::new(TraceSource::new(gaps.clone(), 8, false)),
                )
                .duration(SimDuration::from_millis(100))
                .run()
        };
        let a = run(HardwareConfig::from_index(0));
        let b = run(HardwareConfig::from_index(1));
        // Same arrivals on both sides ...
        assert_eq!(a.total_responses(), b.total_responses());
        // Records arrive in delivery order, which differs between
        // configurations; the *send schedule* must match as a set.
        let mut gen_a: Vec<_> = a.all_records().map(|r| r.t_generated).collect();
        let mut gen_b: Vec<_> = b.all_records().map(|r| r.t_generated).collect();
        gen_a.sort();
        gen_b.sort();
        assert_eq!(gen_a, gen_b, "identical send schedules");
        // ... but different service behaviour.
        let p99 = |r: &crate::RunResult| {
            treadmill_stats::quantile::quantile(
                &r.user_latencies_us(SimTime::ZERO),
                0.99,
            )
        };
        assert_ne!(p99(&a), p99(&b));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_schedule_rejected() {
        let times = [SimTime::from_micros(5), SimTime::from_micros(5)];
        TraceSource::from_schedule(&times, 1, false);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert!(matches!(
            TraceSource::try_new(vec![], 1, false),
            Err(TraceError::Empty)
        ));
        assert!(matches!(
            TraceSource::try_new(vec![SimDuration::from_micros(1)], 0, false),
            Err(TraceError::ZeroConnections)
        ));
        let times = [SimTime::from_micros(5), SimTime::from_micros(5)];
        let err = TraceSource::try_from_schedule(&times, 1, false).unwrap_err();
        assert!(matches!(err, TraceError::NotIncreasing { index: 1 }));
        assert!(err.to_string().contains("strictly increasing"));
    }

    #[test]
    fn json_trace_round_trips() {
        let src = TraceSource::from_json(
            r#"{"gaps_us": [10.0, 20.0], "connections": 4, "looped": true}"#,
        )
        .unwrap();
        assert_eq!(src.len(), 2);
        let mut r = rng();
        let mut src = src;
        assert_eq!(src.start(SimTime::ZERO, &mut r)[0].at, SimTime::from_micros(10));
    }

    #[test]
    fn json_trace_defaults_and_errors() {
        let src = TraceSource::from_json(r#"{"gaps_us": [5.0]}"#).unwrap();
        assert_eq!(src.len(), 1);
        assert!(matches!(
            TraceSource::from_json("{"),
            Err(TraceError::Json(_))
        ));
        let err = TraceSource::from_json(r#"{"gaps_us": [5.0, -1.0]}"#).unwrap_err();
        assert!(matches!(err, TraceError::InvalidGap { index: 1, .. }));
        assert!(err.to_string().contains("non-negative"));
        assert!(matches!(
            TraceSource::from_json(r#"{"gaps_us": []}"#),
            Err(TraceError::Empty)
        ));
    }
}
