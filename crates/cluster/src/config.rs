//! Cluster configuration: the paper's four hardware factors (Table III)
//! plus server, network and client machine specifications.

use serde::{Deserialize, Serialize};
use std::fmt;
use treadmill_sim_core::SimDuration;

/// A 2-level factor setting, coded exactly like the paper (§V-A): low
/// level is 0, high level is 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Level {
    /// The factor's low level (coded 0).
    #[default]
    Low,
    /// The factor's high level (coded 1).
    High,
}

impl Level {
    /// Numeric coding for regression design matrices.
    pub fn code(self) -> f64 {
        match self {
            Level::Low => 0.0,
            Level::High => 1.0,
        }
    }

    /// True at the high level.
    pub fn is_high(self) -> bool {
        self == Level::High
    }

    /// Builds a level from a bit.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Level::High
        } else {
            Level::Low
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Low => write!(f, "low"),
            Level::High => write!(f, "high"),
        }
    }
}

/// The hardware feature configuration under test — Table III.
///
/// | Factor | Low level | High level |
/// |---|---|---|
/// | NUMA control (`numa`) | same-node | interleave |
/// | Turbo Boost (`turbo`) | off | on |
/// | DVFS governor (`dvfs`) | ondemand | performance |
/// | NIC affinity (`nic`) | same-node | all-nodes |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// NUMA memory allocation policy.
    pub numa: Level,
    /// Turbo Boost frequency up-scaling.
    pub turbo: Level,
    /// DVFS governor.
    pub dvfs: Level,
    /// NIC interrupt-queue affinity.
    pub nic: Level,
}

impl HardwareConfig {
    /// The all-low baseline configuration.
    pub fn all_low() -> Self {
        Self::default()
    }

    /// Builds the configuration whose factor bits are the binary digits
    /// of `index` (numa is bit 0, turbo bit 1, dvfs bit 2, nic bit 3),
    /// matching `FactorialDesign::all_configurations` ordering.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < 16, "configuration index {index} out of range");
        HardwareConfig {
            numa: Level::from_bit(index & 1 != 0),
            turbo: Level::from_bit(index & 2 != 0),
            dvfs: Level::from_bit(index & 4 != 0),
            nic: Level::from_bit(index & 8 != 0),
        }
    }

    /// The inverse of [`Self::from_index`].
    pub fn index(&self) -> usize {
        (self.numa.is_high() as usize)
            | (self.turbo.is_high() as usize) << 1
            | (self.dvfs.is_high() as usize) << 2
            | (self.nic.is_high() as usize) << 3
    }

    /// Factor levels as a regression row `[numa, turbo, dvfs, nic]`.
    pub fn levels(&self) -> Vec<f64> {
        vec![
            self.numa.code(),
            self.turbo.code(),
            self.dvfs.code(),
            self.nic.code(),
        ]
    }

    /// The paper's factor names, in the order used by [`Self::levels`].
    pub fn factor_names() -> [&'static str; 4] {
        ["numa", "turbo", "dvfs", "nic"]
    }

    /// All 16 configurations in index order.
    pub fn all() -> Vec<HardwareConfig> {
        (0..16).map(HardwareConfig::from_index).collect()
    }
}

impl fmt::Display for HardwareConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "numa-{},turbo-{},dvfs-{},nic-{}",
            self.numa, self.turbo, self.dvfs, self.nic
        )
    }
}

/// Magnitudes of the per-run hysteresis sources (§II-D). Defaults match
/// the calibrated reproduction; zeroing fields ablates a source (see the
/// `ext05_hysteresis` experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HysteresisSpec {
    /// Mean remote-buffer fraction under the `same-node` NUMA policy.
    pub remote_fraction_same_node: f64,
    /// Mean remote-buffer fraction under `interleave`.
    pub remote_fraction_interleave: f64,
    /// Per-run jitter half-width of the remote fraction, `same-node`.
    pub remote_jitter_same_node: f64,
    /// Per-run jitter half-width of the remote fraction, `interleave`.
    pub remote_jitter_interleave: f64,
    /// Half-width of the run-wide service-time factor (the layout /
    /// STABILIZER effect).
    pub service_jitter: f64,
}

impl Default for HysteresisSpec {
    fn default() -> Self {
        HysteresisSpec {
            remote_fraction_same_node: 0.10,
            remote_fraction_interleave: 0.65,
            remote_jitter_same_node: 0.05,
            remote_jitter_interleave: 0.15,
            service_jitter: 0.03,
        }
    }
}

impl HysteresisSpec {
    /// A spec with every per-run variation source zeroed: restarts
    /// become statistically identical (useful for ablations).
    pub fn none() -> Self {
        HysteresisSpec {
            remote_jitter_same_node: 0.0,
            remote_jitter_interleave: 0.0,
            service_jitter: 0.0,
            ..Default::default()
        }
    }
}

/// Static description of the simulated server (Table II stand-in).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// CPU sockets (NUMA nodes).
    pub sockets: u8,
    /// Cores per socket.
    pub cores_per_socket: u8,
    /// Base (non-turbo) frequency in GHz.
    pub base_ghz: f64,
    /// Maximum single-core turbo frequency in GHz.
    pub turbo_ghz: f64,
    /// Lowest DVFS step in GHz.
    pub min_ghz: f64,
    /// NIC hardware RSS queues (the paper's NIC hashes into 2⁴ = 16).
    pub rss_queues: u8,
    /// Kernel interrupt-handling cost per packet, at base frequency.
    pub irq_ns: f64,
    /// Extra interrupt cost when the handling core is on the remote
    /// socket relative to the NIC's PCIe attachment (socket 0).
    pub irq_cross_socket_ns: f64,
    /// Handoff cost when the interrupt core and the worker core are on
    /// different sockets (cache-line transfer of the request).
    pub handoff_cross_socket_ns: f64,
    /// Multiplier on a request's memory-bound work when its connection
    /// buffer is on the remote NUMA node.
    pub numa_remote_penalty: f64,
    /// DVFS governor sampling period.
    pub governor_period: SimDuration,
    /// Stall inserted on a core when the governor changes its frequency.
    pub frequency_transition: SimDuration,
    /// Governor window-utilisation threshold above which it jumps to the
    /// maximum frequency.
    pub ondemand_up_threshold: f64,
    /// Minimum frequency change (GHz) the governor acts on — real
    /// governors have a deadband so thermal jitter does not cause a
    /// transition storm.
    pub governor_deadband_ghz: f64,
    /// Kernel run-queue balancing: when a worker core's queue reaches
    /// this depth, new work is placed on the shallowest queue of the
    /// same socket instead (models CFS load balancing / memcached's
    /// shared worker pools). `usize::MAX` disables balancing.
    pub balance_threshold: usize,
    /// Thermal model update period.
    pub thermal_period: SimDuration,
    /// Exponential cooling time-constant of the package, in seconds.
    pub thermal_tau_s: f64,
    /// Normalised heat above which turbo headroom starts shrinking.
    pub thermal_throttle_start: f64,
    /// Per-run hysteresis source magnitudes.
    pub hysteresis: HysteresisSpec,
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec {
            sockets: 2,
            cores_per_socket: 8,
            base_ghz: 2.2,
            turbo_ghz: 3.0,
            min_ghz: 1.2,
            rss_queues: 16,
            irq_ns: 1_800.0,
            irq_cross_socket_ns: 1_200.0,
            handoff_cross_socket_ns: 2_000.0,
            numa_remote_penalty: 1.8,
            governor_period: SimDuration::from_millis(10),
            frequency_transition: SimDuration::from_micros(40),
            ondemand_up_threshold: 0.60,
            governor_deadband_ghz: 0.15,
            balance_threshold: 3,
            thermal_period: SimDuration::from_millis(1),
            thermal_tau_s: 0.05,
            thermal_throttle_start: 0.55,
            hysteresis: HysteresisSpec::default(),
        }
    }
}

impl ServerSpec {
    /// Total core count.
    pub fn total_cores(&self) -> usize {
        usize::from(self.sockets) * usize::from(self.cores_per_socket)
    }

    /// The socket a core belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    // Socket index fits u8: sockets is itself a u8.
    #[allow(clippy::cast_possible_truncation)]
    pub fn socket_of(&self, core: usize) -> u8 {
        assert!(core < self.total_cores(), "core {core} out of range");
        (core / usize::from(self.cores_per_socket)) as u8
    }
}

/// Network parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Link bandwidth in bytes per nanosecond (10 GbE = 1.25 B/ns).
    pub bytes_per_ns: f64,
    /// One-way propagation within a rack.
    pub same_rack_propagation: SimDuration,
    /// Extra one-way propagation per rack hop.
    pub cross_rack_extra: SimDuration,
}

impl Default for NetworkSpec {
    fn default() -> Self {
        NetworkSpec {
            bytes_per_ns: 1.25,
            same_rack_propagation: SimDuration::from_micros(5),
            cross_rack_extra: SimDuration::from_micros(18),
        }
    }
}

impl NetworkSpec {
    /// Serialisation (transmission) time of a packet of `bytes`.
    pub fn transmission(&self, bytes: u32) -> SimDuration {
        SimDuration::from_nanos_f64(f64::from(bytes) / self.bytes_per_ns)
    }

    /// One-way propagation between the server rack and a client rack.
    pub fn propagation(&self, client_rack: u8) -> SimDuration {
        if client_rack == 0 {
            self.same_rack_propagation
        } else {
            self.same_rack_propagation + self.cross_rack_extra * u64::from(client_rack)
        }
    }
}

/// A client (load-tester) machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Rack distance from the server: 0 = same rack.
    pub rack: u8,
    /// Connections this client keeps open to the server.
    pub connections: u32,
    /// User-space CPU cost to prepare and send one request, ns. This is
    /// where load-tester implementation efficiency shows up (Treadmill's
    /// "lock-free implementation" vs heavier testers).
    pub send_cpu_ns: f64,
    /// User-space CPU cost to run one response callback, ns.
    pub recv_cpu_ns: f64,
    /// Fixed kernel cost from `send()` to the packet reaching the NIC.
    pub kernel_tx: SimDuration,
    /// Fixed kernel cost from NIC interrupt to the user callback.
    pub kernel_rx: SimDuration,
}

impl Default for ClientSpec {
    fn default() -> Self {
        ClientSpec {
            rack: 0,
            connections: 16,
            send_cpu_ns: 800.0,
            recv_cpu_ns: 800.0,
            kernel_tx: SimDuration::from_micros(12),
            kernel_rx: SimDuration::from_micros(16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_coding() {
        assert_eq!(Level::Low.code(), 0.0);
        assert_eq!(Level::High.code(), 1.0);
        assert!(Level::from_bit(true).is_high());
        assert_eq!(Level::Low.to_string(), "low");
    }

    #[test]
    fn config_index_round_trips() {
        for i in 0..16 {
            let cfg = HardwareConfig::from_index(i);
            assert_eq!(cfg.index(), i);
        }
        assert_eq!(HardwareConfig::all().len(), 16);
    }

    #[test]
    fn levels_match_bits() {
        let cfg = HardwareConfig::from_index(0b1010);
        assert_eq!(cfg.levels(), vec![0.0, 1.0, 0.0, 1.0]);
        assert!(cfg.turbo.is_high());
        assert!(cfg.nic.is_high());
        assert!(!cfg.numa.is_high());
    }

    #[test]
    fn display_matches_paper_legend_style() {
        let cfg = HardwareConfig::from_index(0b0101);
        assert_eq!(cfg.to_string(), "numa-high,turbo-low,dvfs-high,nic-low");
    }

    #[test]
    fn server_spec_geometry() {
        let spec = ServerSpec::default();
        assert_eq!(spec.total_cores(), 16);
        assert_eq!(spec.socket_of(0), 0);
        assert_eq!(spec.socket_of(7), 0);
        assert_eq!(spec.socket_of(8), 1);
        assert_eq!(spec.socket_of(15), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_of_bounds() {
        ServerSpec::default().socket_of(16);
    }

    #[test]
    fn network_transmission_scales_with_size() {
        let net = NetworkSpec::default();
        let small = net.transmission(125);
        let big = net.transmission(1_250);
        assert_eq!(small.as_nanos(), 100);
        assert_eq!(big.as_nanos(), 1_000);
    }

    #[test]
    fn cross_rack_propagation_is_longer() {
        let net = NetworkSpec::default();
        assert!(net.propagation(1) > net.propagation(0));
        assert!(net.propagation(2) > net.propagation(1));
    }

    #[test]
    fn serde_round_trip() {
        let cfg = HardwareConfig::from_index(9);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: HardwareConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
