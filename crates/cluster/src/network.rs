//! The network fabric: per-client uplinks/downlinks, the server's shared
//! NIC ingress/egress, and rack-distance propagation.
//!
//! Links are analytic FIFO queues ([`RateQueue`]): a packet's
//! serialisation time is `bytes / bandwidth` and queueing arises
//! naturally when offered load approaches link capacity. Propagation is
//! a fixed one-way delay that grows with rack distance — the mechanism
//! behind Figure 2's cross-rack outlier client.
//!
//! Each hop is offered at the simulation instant the packet reaches it
//! (the world schedules an event per hop), which keeps every queue's
//! arrival sequence monotone.

use treadmill_sim_core::{RateQueue, SimDuration, SimTime};

use crate::config::NetworkSpec;

/// All network links of one simulated cluster.
#[derive(Debug)]
pub struct Network {
    spec: NetworkSpec,
    client_uplinks: Vec<RateQueue>,
    client_downlinks: Vec<RateQueue>,
    server_ingress: RateQueue,
    server_egress: RateQueue,
    racks: Vec<u8>,
}

impl Network {
    /// Creates the fabric for clients at the given rack distances.
    pub fn new(spec: NetworkSpec, client_racks: &[u8]) -> Self {
        Network {
            spec,
            client_uplinks: client_racks
                .iter()
                .enumerate()
                .map(|(i, _)| RateQueue::new(format!("client{i}-uplink")))
                .collect(),
            client_downlinks: client_racks
                .iter()
                .enumerate()
                .map(|(i, _)| RateQueue::new(format!("client{i}-downlink")))
                .collect(),
            server_ingress: RateQueue::new("server-ingress"),
            server_egress: RateQueue::new("server-egress"),
            racks: client_racks.to_vec(),
        }
    }

    /// The network specification.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// One-way propagation delay for a client.
    pub fn propagation(&self, client: usize) -> SimDuration {
        self.spec.propagation(self.racks[client])
    }

    /// Offers a request packet to `client`'s uplink at `now`; returns
    /// when it has fully left the client NIC (the tcpdump TX stamp).
    pub fn uplink_departure(&mut self, client: usize, now: SimTime, bytes: u32) -> SimTime {
        let tx = self.spec.transmission(bytes);
        self.client_uplinks[client].offer(now, tx).departure
    }

    /// Offers an arriving packet to the server NIC ingress at `now`;
    /// returns when it is in server memory.
    pub fn ingress_departure(&mut self, now: SimTime, bytes: u32) -> SimTime {
        let tx = self.spec.transmission(bytes);
        self.server_ingress.offer(now, tx).departure
    }

    /// Offers a response packet to the server NIC egress at `now`;
    /// returns when it has fully left the server NIC.
    pub fn egress_departure(&mut self, now: SimTime, bytes: u32) -> SimTime {
        let tx = self.spec.transmission(bytes);
        self.server_egress.offer(now, tx).departure
    }

    /// Offers an arriving response to `client`'s downlink at `now`;
    /// returns when it has fully arrived at the client NIC (the tcpdump
    /// RX stamp).
    pub fn downlink_departure(&mut self, client: usize, now: SimTime, bytes: u32) -> SimTime {
        let tx = self.spec.transmission(bytes);
        self.client_downlinks[client].offer(now, tx).departure
    }

    /// Bytes still queued (unserialised) at the server-NIC ingress at
    /// `now` — the backlog a bounded NIC buffer would hold. Computed
    /// in O(1) from the analytic queue's free instant.
    pub fn ingress_backlog_bytes(&self, now: SimTime) -> f64 {
        let backlog = self.server_ingress.free_at().saturating_duration_since(now);
        backlog.as_nanos() as f64 * self.spec.bytes_per_ns
    }

    /// Server-ingress utilisation over `[0, now]` (diagnostics).
    pub fn ingress_utilization(&self, now: SimTime) -> f64 {
        self.server_ingress.utilization(now)
    }

    /// Server-egress utilisation over `[0, now]` (diagnostics).
    pub fn egress_utilization(&self, now: SimTime) -> f64 {
        self.server_egress.utilization(now)
    }

    /// A client uplink's utilisation over `[0, now]` (diagnostics).
    pub fn uplink_utilization(&self, client: usize, now: SimTime) -> f64 {
        self.client_uplinks[client].utilization(now)
    }

    /// All link-queue states in a fixed order (uplinks, downlinks,
    /// server ingress, server egress), captured for checkpointing.
    pub(crate) fn checkpoint_state(&self) -> Vec<treadmill_sim_core::RateQueueState> {
        self.client_uplinks
            .iter()
            .chain(&self.client_downlinks)
            .chain(std::iter::once(&self.server_ingress))
            .chain(std::iter::once(&self.server_egress))
            .map(RateQueue::state)
            .collect()
    }

    /// Restores the link-queue states captured by
    /// [`Network::checkpoint_state`]. The fabric must have been rebuilt
    /// with the same client set.
    ///
    /// # Panics
    ///
    /// Panics if the state count does not match this fabric's link
    /// count.
    pub(crate) fn restore_checkpoint_state(
        &mut self,
        states: &[treadmill_sim_core::RateQueueState],
    ) {
        let n = self.client_uplinks.len();
        assert_eq!(states.len(), 2 * n + 2, "link-state count mismatch");
        for (queue, state) in self
            .client_uplinks
            .iter_mut()
            .chain(&mut self.client_downlinks)
            .chain(std::iter::once(&mut self.server_ingress))
            .chain(std::iter::once(&mut self.server_egress))
            .zip(states)
        {
            queue.restore_state(*state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(racks: &[u8]) -> Network {
        Network::new(NetworkSpec::default(), racks)
    }

    #[test]
    fn uplink_serialisation_time() {
        let mut net = network(&[0]);
        let out = net.uplink_departure(0, SimTime::from_micros(10), 125);
        // 125 B at 1.25 B/ns = 100 ns.
        assert_eq!(out, SimTime::from_nanos(10_100));
    }

    #[test]
    fn cross_rack_propagation_is_longer() {
        let net = network(&[0, 2]);
        assert!(net.propagation(1) > net.propagation(0) + SimDuration::from_micros(30));
    }

    #[test]
    fn saturated_uplink_queues() {
        let mut net = network(&[0]);
        let mut last = SimTime::ZERO;
        for _ in 0..1_000 {
            let out = net.uplink_departure(0, SimTime::from_micros(1), 1_250);
            assert!(out >= last);
            last = out;
        }
        // 1000 × 1us of serialisation.
        assert!(last >= SimTime::from_micros(1_000));
        assert!(net.uplink_utilization(0, last) > 0.95);
    }

    #[test]
    fn shared_ingress_multiplexes() {
        let mut net = network(&[0, 0]);
        let a = net.ingress_departure(SimTime::ZERO, 1_250);
        let b = net.ingress_departure(SimTime::ZERO, 1_250);
        assert!(b > a, "second packet serialises behind the first");
    }

    #[test]
    fn egress_and_downlink() {
        let mut net = network(&[1]);
        let out = net.egress_departure(SimTime::from_micros(5), 250);
        assert!(out > SimTime::from_micros(5));
        let arrival = out + net.propagation(0);
        let done = net.downlink_departure(0, arrival, 250);
        assert!(done > arrival);
        assert!(net.egress_utilization(done) > 0.0);
        assert!(net.ingress_utilization(done) == 0.0);
    }
}
