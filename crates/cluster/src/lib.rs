//! A deterministic discrete-event datacenter simulator: the substrate
//! that stands in for the Treadmill paper's production testbed.
//!
//! The paper evaluates load testers and attributes tail latency on real
//! Facebook hardware — dual-socket Xeon servers with Turbo Boost, DVFS
//! governors, NUMA memory policies and RSS NIC steering, driven by
//! racks of client machines over 10 GbE, with tcpdump as ground truth.
//! This crate simulates that entire environment:
//!
//! * [`Server`](server::Server) — 16 cores on 2 sockets with per-core
//!   run queues, a DVFS governor, a turbo/thermal model, NUMA-sensitive
//!   service times, and RSS interrupt steering;
//! * [`Network`] — rate-limited links with rack-distance propagation;
//! * [`ClientMachine`] — load-tester hosts whose own CPU queueing is
//!   part of the model (pitfall §II-C);
//! * [`RunState`] — per-run placement state, the cause of performance
//!   hysteresis (pitfall §II-D);
//! * [`PacketCapture`] — the tcpdump-equivalent NIC-level ground truth;
//! * [`ClusterBuilder`] / [`RunResult`] — the run harness.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use treadmill_cluster::{ClusterBuilder, ClientSpec, PoissonSource};
//! use treadmill_sim_core::SimDuration;
//! use treadmill_workloads::Memcached;
//!
//! let result = ClusterBuilder::new(Arc::new(Memcached::default()))
//!     .seed(1)
//!     .client(ClientSpec::default(), Box::new(PoissonSource::new(100_000.0, 16)))
//!     .duration(SimDuration::from_millis(20))
//!     .run();
//! assert!(result.total_responses() > 0);
//! ```

#![forbid(unsafe_code)]
// Unit tests unwrap freely and assert exact float equality: bit-exact
// reproducibility is the property under test. Library code is held to
// the workspace lint table (see DESIGN.md, "Static analysis").
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)
)]
#![warn(missing_docs)]

mod audit;
mod capture;
pub mod checkpoint;
mod client;
mod config;
mod fault;
mod hysteresis;
mod network;
mod request;
pub mod server;
mod shard;
mod source;
pub mod spec;
mod trace;
mod world;

pub use audit::{audit_invariants, audit_sharded};
pub use capture::{CapturedPair, PacketCapture};
pub use client::ClientMachine;
pub use config::{ClientSpec, HardwareConfig, HysteresisSpec, Level, NetworkSpec, ServerSpec};
pub use fault::{FailureKind, FailureRecord, FaultPlan, FaultSpec, FaultSummary, RetryPolicy};
pub use hysteresis::{ConnectionState, RunState};
pub use network::Network;
pub use request::{Request, RequestId, ResponseRecord};
pub use shard::{merge_results, ShardedCluster, INTER_SHARD_PROPAGATION};
pub use source::{PoissonSource, SendOrder, TrafficSource};
pub use trace::{TraceError, TraceSource};
pub use world::{extract_result, ClusterBuilder, ClusterWorld, CoreStats, Event, RunResult};
