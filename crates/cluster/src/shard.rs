//! Conservative parallel execution of sharded cluster worlds.
//!
//! A [`ShardedCluster`] owns `n` complete [`ClusterWorld`]s — one
//! server each, with its own clients, links and event heap — and
//! advances them on scoped worker threads. Synchronization is
//! *conservative* (Chandy–Misra style with a global window): the
//! inter-shard propagation delay is the lookahead `L`, so with `T` the
//! earliest pending event across all shards, every shard can safely
//! execute events strictly before `H = T + L` — any message generated
//! at `t ≥ T` arrives at `t + L ≥ H` and cannot affect the window.
//!
//! Determinism is the headline guarantee: a seeded run is bit-identical
//! at any thread count, because
//!
//! - the round boundaries (`T`, `H`) are pure functions of global event
//!   times, never of thread scheduling;
//! - each shard's heap is mutated only by its owner within a round;
//! - cross-shard messages are drained and injected by a single
//!   coordinator in the canonical `(arrival, source shard, emission
//!   order)` order, landing in per-source heap lanes (see
//!   [`treadmill_sim_core::EventQueue::schedule_in_lane`]) so
//!   same-instant ties break identically everywhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};

use treadmill_sim_core::{Engine, SimDuration, SimTime};

use crate::fault::FaultSummary;
use crate::world::{ClusterWorld, RunResult};

/// Propagation delay between shards — the conservative lookahead. It
/// exceeds the worst intra-shard propagation (cross-rack 23 µs) so
/// cross-shard hops are never optimistically fast.
pub const INTER_SHARD_PROPAGATION: SimDuration = SimDuration::from_micros(25);

/// Horizon sentinel: the run is finished or the event budget is spent.
const DONE: u64 = u64::MAX;

fn lock(shard: &Mutex<Engine<ClusterWorld>>) -> MutexGuard<'_, Engine<ClusterWorld>> {
    // Worlds are lock-private to one thread per round; a poisoned lock
    // can only mean a panicking sibling, and the panic itself already
    // aborts the run.
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A partitioned cluster advancing `n` single-server worlds in
/// parallel under conservative time synchronization.
#[derive(Debug)]
pub struct ShardedCluster {
    shards: Vec<Mutex<Engine<ClusterWorld>>>,
    threads: usize,
    lookahead: SimDuration,
    /// False when no connection can cross shards — the shards are then
    /// independent simulations and run without windowing.
    windowed: bool,
    rounds: u64,
    injected: u64,
}

impl ShardedCluster {
    /// Wraps pre-built shard engines for parallel execution on
    /// `threads` workers (clamped to `[1, n_shards]`).
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty, any world lacks a shard context,
    /// or a context's `(index, n_shards)` disagrees with its position.
    pub fn new(engines: Vec<Engine<ClusterWorld>>, threads: usize) -> Self {
        assert!(!engines.is_empty(), "sharded cluster needs at least one shard");
        assert!(engines.len() < usize::from(u16::MAX), "shard count exceeds heap lane space");
        let mut windowed = false;
        for (i, engine) in engines.iter().enumerate() {
            let ctx = engine.world().shard.as_ref();
            assert!(ctx.is_some(), "shard {i} world was built without a shard context");
            if let Some(ctx) = ctx {
                assert_eq!(ctx.index as usize, i, "shard context index mismatch");
                assert_eq!(ctx.n_shards as usize, engines.len(), "shard count mismatch");
                if ctx.n_shards > 1 && ctx.remote_every > 0 {
                    windowed = true;
                }
            }
        }
        let n = engines.len();
        ShardedCluster {
            shards: engines.into_iter().map(Mutex::new).collect(),
            threads: threads.clamp(1, n),
            lookahead: INTER_SHARD_PROPAGATION,
            windowed,
            rounds: 0,
            injected: 0,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads used per call.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Synchronization rounds executed so far (windowed mode only).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Cross-shard messages injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Exclusive access to one shard's engine (restores, fault
    /// injection in tests).
    pub fn engine_mut(&mut self, shard: usize) -> &mut Engine<ClusterWorld> {
        self.shards[shard].get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Shared access to one shard's engine (checkpointing, audits).
    /// No worker thread runs outside [`ShardedCluster::run`], so the
    /// lock is always uncontended here.
    pub fn engine(&self, shard: usize) -> MutexGuard<'_, Engine<ClusterWorld>> {
        lock(&self.shards[shard])
    }

    /// Total events executed across all shards.
    pub fn events_executed(&self) -> u64 {
        self.shards.iter().map(|s| lock(s).events_executed()).sum()
    }

    /// True when every shard's heap is drained and no cross-shard
    /// message is awaiting injection.
    pub fn is_finished(&self) -> bool {
        self.shards.iter().all(|s| {
            let engine = lock(s);
            engine.pending_events() == 0
                && engine
                    .world()
                    .shard
                    .as_ref()
                    .is_none_or(|ctx| ctx.outbox.is_empty())
        })
    }

    /// Advances the cluster by roughly `budget` events (the windowed
    /// protocol stops at the first round boundary past the budget, so
    /// outboxes are always drained when this returns). Returns the
    /// number of events executed by this call.
    pub fn run(&mut self, budget: u64) -> u64 {
        if self.windowed {
            self.run_windowed(budget)
        } else {
            self.run_independent(budget)
        }
    }

    /// Runs every shard to completion.
    pub fn run_to_completion(&mut self) {
        self.run(u64::MAX);
        debug_assert!(self.is_finished(), "run(u64::MAX) must drain the cluster");
    }

    /// Consumes the cluster, extracting one [`RunResult`] per shard in
    /// shard order.
    pub fn into_results(self) -> Vec<RunResult> {
        self.shards
            .into_iter()
            .map(|m| {
                let engine = m.into_inner().unwrap_or_else(PoisonError::into_inner);
                crate::world::extract_result(engine)
            })
            .collect()
    }

    /// No cross-shard traffic is possible: the shards are independent
    /// simulations, each executed with an equal slice of the budget.
    fn run_independent(&mut self, budget: u64) -> u64 {
        let n = self.shards.len();
        let threads = self.threads;
        let per_shard = (budget / n as u64).saturating_add(1).min(budget);
        let executed = AtomicU64::new(0);
        let shards = &self.shards;
        let worker = |w: usize| {
            for i in (w..n).step_by(threads) {
                let mut engine = lock(&shards[i]);
                let c = engine.run_events(per_shard);
                executed.fetch_add(c, Ordering::Relaxed);
            }
        };
        let worker = &worker;
        std::thread::scope(|s| {
            for w in 1..threads {
                s.spawn(move || worker(w));
            }
            worker(0);
        });
        executed.into_inner()
    }

    /// The conservative global-window protocol. Per round, worker 0
    /// (the coordinator) drains every outbox, injects the messages in
    /// canonical order, and publishes the next horizon `H = T + L`;
    /// then all workers execute their shards' events strictly before
    /// `H` in parallel. Two barriers per round keep the phases honest.
    fn run_windowed(&mut self, budget: u64) -> u64 {
        let n = self.shards.len();
        let threads = self.threads;
        let lookahead = self.lookahead;
        let shards = &self.shards;
        let barrier = Barrier::new(threads);
        let horizon = AtomicU64::new(0);
        let executed = AtomicU64::new(0);
        let injected = AtomicU64::new(0);
        let rounds = AtomicU64::new(0);
        let barrier = &barrier;
        let horizon = &horizon;
        let executed_ref = &executed;
        let injected_ref = &injected;
        let rounds_ref = &rounds;
        let worker = move |w: usize| loop {
            if w == 0 {
                let h = coordinate(shards, lookahead, budget, executed_ref, injected_ref, rounds_ref);
                horizon.store(h, Ordering::SeqCst);
            }
            barrier.wait();
            let h = horizon.load(Ordering::SeqCst);
            if h == DONE {
                break;
            }
            // `run_until` is inclusive; the window is events < H.
            let window_end = SimTime::from_nanos(h - 1);
            for i in (w..n).step_by(threads) {
                let mut engine = lock(&shards[i]);
                let c = engine.run_until(window_end);
                executed_ref.fetch_add(c, Ordering::Relaxed);
            }
            barrier.wait();
        };
        let worker = &worker;
        std::thread::scope(|s| {
            for w in 1..threads {
                s.spawn(move || worker(w));
            }
            worker(0);
        });
        self.rounds += rounds.into_inner();
        self.injected += injected.into_inner();
        executed.into_inner()
    }
}

/// One coordination step: drain outboxes, inject in canonical order,
/// and compute the next horizon (or [`DONE`]). Runs single-threaded
/// between the barriers, so every lock below is uncontended.
fn coordinate(
    shards: &[Mutex<Engine<ClusterWorld>>],
    lookahead: SimDuration,
    budget: u64,
    executed: &AtomicU64,
    injected: &AtomicU64,
    rounds: &AtomicU64,
) -> u64 {
    // Canonical message order: arrival instant, then source shard,
    // then emission order within the source. Everything is already
    // deterministic per shard; the sort only serializes across shards.
    let mut pending: Vec<(u64, u32, u64, u32, crate::world::ShardMsg)> = Vec::new();
    for (src, shard) in shards.iter().enumerate() {
        let mut engine = lock(shard);
        if let Some(ctx) = engine.world_mut().shard.as_mut() {
            for (pos, (at, dst, msg)) in ctx.outbox.drain(..).enumerate() {
                #[allow(clippy::cast_possible_truncation)]
                let src_id = src as u32;
                pending.push((at.as_nanos(), src_id, pos as u64, dst, msg));
            }
        }
    }
    pending.sort_by_key(|e| (e.0, e.1, e.2));
    for (at, src, _pos, dst, msg) in pending {
        let mut engine = lock(&shards[dst as usize]);
        // Lane = source shard + 1: same-instant injections from
        // different sources order by source id, and all sort after
        // lane-0 events the destination scheduled for itself.
        #[allow(clippy::cast_possible_truncation)]
        let lane = (src + 1) as u16;
        engine.schedule_in_lane(SimTime::from_nanos(at), lane, msg.into_event());
        if let Some(ctx) = engine.world_mut().shard.as_mut() {
            ctx.received += 1;
        }
        injected.fetch_add(1, Ordering::Relaxed);
    }
    // The budget check sits after injection so a paused cluster always
    // has empty outboxes — checkpoints only see round boundaries.
    if executed.load(Ordering::Relaxed) >= budget {
        return DONE;
    }
    let mut earliest: Option<u64> = None;
    for shard in shards {
        let engine = lock(shard);
        if let Some(at) = engine.queue().peek_time() {
            let t = at.as_nanos();
            earliest = Some(earliest.map_or(t, |e| e.min(t)));
        }
    }
    match earliest {
        Some(t) => {
            rounds.fetch_add(1, Ordering::Relaxed);
            t.saturating_add(lookahead.as_nanos()).min(DONE - 1)
        }
        None => DONE,
    }
}

/// Merges per-shard [`RunResult`]s into one cluster-wide result, in
/// shard order — the deterministic reduction the measurement pipeline
/// consumes. Per-client vectors concatenate shard-major; counters sum;
/// utilisation-style gauges average over shards with a fixed
/// left-to-right fold.
///
/// # Panics
///
/// Panics if `results` is empty.
pub fn merge_results(mut results: Vec<RunResult>) -> RunResult {
    assert!(!results.is_empty(), "merge_results needs at least one shard result");
    let n = results.len();
    let mut merged = results.remove(0);
    if n == 1 {
        return merged;
    }
    let mut util_sum = merged.server_utilization;
    let mut heat_sum = merged.final_heat;
    let mut remote_sum = merged.run_remote_fraction;
    merged.audit_findings = merged
        .audit_findings
        .drain(..)
        .map(|f| format!("shard 0: {f}"))
        .collect();
    for (i, r) in results.into_iter().enumerate() {
        let shard = i + 1;
        merged.client_records.extend(r.client_records);
        merged.client_failures.extend(r.client_failures);
        merged.client_cpu_utilization.extend(r.client_cpu_utilization);
        merged.per_core.extend(r.per_core);
        merged.frequency_trace.extend(r.frequency_trace);
        merged.outstanding.extend(r.outstanding);
        merged.delivered_in_window += r.delivered_in_window;
        merged.events_executed += r.events_executed;
        merged.frequency_transitions += r.frequency_transitions;
        add_fault_summaries(&mut merged.fault_summary, &r.fault_summary);
        merged.sending_stopped_at = merged.sending_stopped_at.max(r.sending_stopped_at);
        merged.completed_at = merged.completed_at.max(r.completed_at);
        util_sum += r.server_utilization;
        heat_sum += r.final_heat;
        remote_sum += r.run_remote_fraction;
        merged
            .audit_findings
            .extend(r.audit_findings.into_iter().map(|f| format!("shard {shard}: {f}")));
    }
    // Stable sort: same-instant samples keep shard order.
    merged.outstanding.sort_by_key(|&(t, _)| t);
    let count = n as f64;
    merged.server_utilization = util_sum / count;
    merged.final_heat = heat_sum / count;
    merged.run_remote_fraction = remote_sum / count;
    merged
}

fn add_fault_summaries(into: &mut FaultSummary, from: &FaultSummary) {
    into.uplink_drops += from.uplink_drops;
    into.downlink_drops += from.downlink_drops;
    into.nic_drops += from.nic_drops;
    into.crash_drops += from.crash_drops;
    into.crashes += from.crashes;
    into.stalls += from.stalls;
    into.retries += from.retries;
    into.hedges += from.hedges;
    into.timeouts += from.timeouts;
    into.resets += from.resets;
    into.failed_requests += from.failed_requests;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClientSpec;
    use crate::source::PoissonSource;
    use crate::world::ClusterBuilder;
    use std::sync::Arc;
    use treadmill_sim_core::{SeedStream, SimDuration};
    use treadmill_workloads::Memcached;

    fn shard_engines(n: u32, remote_every: u32, seed: u64) -> Vec<Engine<ClusterWorld>> {
        (0..n)
            .map(|i| {
                // Shard 0 keeps the run seed so a 1-shard cluster is
                // bit-identical to the legacy unsharded world.
                let shard_seed = if i == 0 {
                    seed
                } else {
                    SeedStream::new(seed).derive("shard", u64::from(i))
                };
                ClusterBuilder::new(Arc::new(Memcached::default()))
                    .seed(shard_seed)
                    .client(
                        ClientSpec::default(),
                        Box::new(PoissonSource::new(150_000.0, 16)),
                    )
                    .duration(SimDuration::from_millis(25))
                    .shard(i, n, remote_every)
                    .build()
            })
            .collect()
    }

    fn run_merged(n: u32, remote_every: u32, seed: u64, threads: usize) -> (RunResult, u64) {
        let mut cluster = ShardedCluster::new(shard_engines(n, remote_every, seed), threads);
        cluster.run_to_completion();
        let injected = cluster.injected();
        (merge_results(cluster.into_results()), injected)
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (base, injected) = run_merged(3, 4, 99, 1);
        assert!(injected > 0, "no cross-shard traffic flowed");
        for threads in [2usize, 8] {
            let (r, inj) = run_merged(3, 4, 99, threads);
            assert_eq!(inj, injected);
            assert_eq!(r.events_executed, base.events_executed);
            assert_eq!(r.total_responses(), base.total_responses());
            assert_eq!(
                r.user_latencies_us(SimTime::ZERO),
                base.user_latencies_us(SimTime::ZERO),
                "latency stream differs at {threads} threads"
            );
        }
    }

    #[test]
    fn single_shard_matches_legacy_unsharded() {
        let legacy = ClusterBuilder::new(Arc::new(Memcached::default()))
            .seed(7)
            .client(
                ClientSpec::default(),
                Box::new(PoissonSource::new(150_000.0, 16)),
            )
            .duration(SimDuration::from_millis(25))
            .run();
        let (sharded, injected) = run_merged(1, 8, 7, 1);
        assert_eq!(injected, 0, "one shard can never cross");
        assert_eq!(sharded.events_executed, legacy.events_executed);
        assert_eq!(
            sharded.user_latencies_us(SimTime::ZERO),
            legacy.user_latencies_us(SimTime::ZERO)
        );
    }

    #[test]
    fn stepped_run_matches_one_shot() {
        let (oneshot, _) = run_merged(2, 4, 11, 2);
        let mut cluster = ShardedCluster::new(shard_engines(2, 4, 11), 2);
        while !cluster.is_finished() {
            cluster.run(3_000);
        }
        let stepped = merge_results(cluster.into_results());
        assert_eq!(stepped.events_executed, oneshot.events_executed);
        assert_eq!(
            stepped.user_latencies_us(SimTime::ZERO),
            oneshot.user_latencies_us(SimTime::ZERO)
        );
    }

    #[test]
    fn remote_latency_reflects_inter_shard_hops() {
        // Remote connections pay 2 × 25 µs propagation instead of the
        // same-rack 2 × 5 µs: the remote population's floor is visibly
        // higher. conn % 4 == 0 designates the remote connections.
        let (r, injected) = run_merged(2, 4, 5, 1);
        assert!(injected > 0);
        let (mut remote, mut local) = (Vec::new(), Vec::new());
        for rec in r.all_records() {
            if rec.conn % 4 == 0 {
                remote.push(rec.user_latency_us());
            } else {
                local.push(rec.user_latency_us());
            }
        }
        assert!(!remote.is_empty() && !local.is_empty());
        let min_remote = remote.iter().cloned().fold(f64::INFINITY, f64::min);
        let min_local = local.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            min_remote > min_local + 30.0,
            "remote floor {min_remote}µs vs local floor {min_local}µs"
        );
    }

    #[test]
    fn audit_sharded_passes_on_healthy_cluster() {
        let mut cluster = ShardedCluster::new(shard_engines(3, 4, 17), 2);
        cluster.run(10_000);
        let findings = crate::audit::audit_sharded(&cluster, usize::MAX);
        assert_eq!(findings, Vec::<String>::new());
        cluster.run_to_completion();
        let findings = crate::audit::audit_sharded(&cluster, usize::MAX);
        assert_eq!(findings, Vec::<String>::new());
    }

    #[test]
    fn audit_sharded_catches_conservation_skew() {
        let mut cluster = ShardedCluster::new(shard_engines(2, 4, 17), 1);
        cluster.run(5_000);
        if let Some(ctx) = cluster.engine_mut(0).world_mut().shard.as_mut() {
            ctx.sent += 1;
        }
        let findings = crate::audit::audit_sharded(&cluster, usize::MAX);
        assert!(
            findings.iter().any(|f| f.contains("cross-shard conservation")),
            "{findings:?}"
        );
    }

    #[test]
    fn checkpoint_mid_run_resumes_bit_identically() {
        // Run a windowed cluster partway, snapshot every shard at the
        // round boundary, restore onto fresh engines, and finish both:
        // the resumed cluster must match the uninterrupted one exactly.
        let mut reference = ShardedCluster::new(shard_engines(2, 4, 23), 2);
        reference.run_to_completion();
        let reference = merge_results(reference.into_results());

        let mut original = ShardedCluster::new(shard_engines(2, 4, 23), 2);
        original.run(8_000);
        let blobs: Vec<Vec<u8>> = (0..original.n_shards())
            .map(|i| crate::checkpoint::snapshot(original.engine_mut(i)))
            .collect();
        let mut resumed_engines = shard_engines(2, 4, 23);
        for (engine, blob) in resumed_engines.iter_mut().zip(&blobs) {
            crate::checkpoint::restore(engine, blob).unwrap();
        }
        let mut resumed = ShardedCluster::new(resumed_engines, 1);
        resumed.run_to_completion();
        let resumed = merge_results(resumed.into_results());
        assert_eq!(resumed.events_executed, reference.events_executed);
        assert_eq!(
            resumed.user_latencies_us(SimTime::ZERO),
            reference.user_latencies_us(SimTime::ZERO)
        );
    }
}
