//! The printable system-under-test description (Table II).

use crate::config::{NetworkSpec, ServerSpec};

/// A row of the hardware-specification table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecRow {
    /// What is being described.
    pub item: &'static str,
    /// The description.
    pub value: String,
}

/// Produces the Table II equivalent for the simulated system under
/// test. The paper's table lists the physical testbed (Xeon E5-2660 v2,
/// 144 GB DRAM, 10 GbE ConnectX-3, kernel 3.10); ours lists the
/// simulator's stand-in parameters so every number in the reproduction
/// is traceable.
pub fn system_under_test(server: &ServerSpec, network: &NetworkSpec) -> Vec<SpecRow> {
    vec![
        SpecRow {
            item: "Processor",
            value: format!(
                "simulated {}-socket x {}-core, {:.1} GHz base / {:.1} GHz turbo / {:.1} GHz min",
                server.sockets, server.cores_per_socket, server.base_ghz,
                server.turbo_ghz, server.min_ghz,
            ),
        },
        SpecRow {
            item: "Memory",
            value: format!(
                "2 NUMA nodes, remote-access penalty {:.2}x on memory-bound work",
                server.numa_remote_penalty
            ),
        },
        SpecRow {
            item: "Ethernet",
            value: format!(
                "{:.0} Gb/s, {} RSS interrupt queues",
                network.bytes_per_ns * 8.0,
                server.rss_queues
            ),
        },
        SpecRow {
            item: "Kernel",
            value: format!(
                "interrupt path {:.1} us/packet, DVFS sampling {} , transition stall {}",
                server.irq_ns / 1_000.0,
                server.governor_period,
                server.frequency_transition,
            ),
        },
        SpecRow {
            item: "Topology",
            value: format!(
                "same-rack propagation {}, cross-rack extra {} per hop",
                network.same_rack_propagation, network.cross_rack_extra,
            ),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_the_testbed() {
        let rows = system_under_test(&ServerSpec::default(), &NetworkSpec::default());
        assert_eq!(rows.len(), 5);
        assert!(rows[0].value.contains("2-socket x 8-core"));
        assert!(rows[2].value.contains("10 Gb/s"));
        assert!(rows.iter().all(|r| !r.value.is_empty()));
    }
}
