//! In-flight request state and completed-request records.

use treadmill_sim_core::{SimDuration, SimTime};
use treadmill_workloads::RequestProfile;

/// Globally unique request identifier within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// A request travelling through the simulated cluster. Timestamps fill
/// in as it progresses; they are the raw material for both the load
/// tester's view and the tcpdump ground truth.
#[derive(Debug, Clone)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Originating client index.
    pub client: u32,
    /// Connection index within the client.
    pub conn: u32,
    /// Resource demands.
    pub profile: RequestProfile,
    /// Which attempt this packet carries (0 = first try; retries and
    /// hedges reuse the id with a higher attempt).
    pub attempt: u32,
    /// The shard whose client originated this request (0 in unsharded
    /// worlds). A foreign server routes the response back here.
    pub home_shard: u32,
    /// When the load tester initiated the send (user space).
    pub t_generated: SimTime,
    /// When the request packet left the client NIC (tcpdump TX stamp).
    pub t_client_nic_out: SimTime,
    /// When the request packet arrived at the server NIC.
    pub t_server_nic_in: SimTime,
    /// When kernel interrupt processing finished on the server.
    pub t_irq_done: SimTime,
    /// When the worker began servicing the request.
    pub t_service_start: SimTime,
    /// When the response left the server NIC.
    pub t_server_nic_out: SimTime,
    /// When the response arrived at the client NIC (tcpdump RX stamp).
    pub t_client_nic_in: SimTime,
    /// When the response callback ran in the load tester (user space).
    pub t_delivered: SimTime,
}

impl Request {
    /// Creates a request at generation time; later stamps default to the
    /// generation instant until filled in.
    pub fn new(
        id: RequestId,
        client: u32,
        conn: u32,
        profile: RequestProfile,
        t_generated: SimTime,
    ) -> Self {
        Request {
            id,
            client,
            conn,
            profile,
            attempt: 0,
            home_shard: 0,
            t_generated,
            t_client_nic_out: t_generated,
            t_server_nic_in: t_generated,
            t_irq_done: t_generated,
            t_service_start: t_generated,
            t_server_nic_out: t_generated,
            t_client_nic_in: t_generated,
            t_delivered: t_generated,
        }
    }
}

/// The completed-request record a client machine emits; one per request.
///
/// Two latency views matter (§III-C): the **load tester's** user-space
/// view and the **tcpdump** NIC-level ground truth, which excludes
/// client-side queueing and kernel interrupt handling. The paper's
/// Figures 5–6 compare exactly these two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseRecord {
    /// Request id.
    pub id: RequestId,
    /// Originating client.
    pub client: u32,
    /// Connection within the client.
    pub conn: u32,
    /// Attempts used to obtain this response (1 = first try succeeded).
    pub attempts: u32,
    /// When the load tester initiated the send.
    pub t_generated: SimTime,
    /// When the user-space callback observed the response.
    pub t_delivered: SimTime,
    /// tcpdump TX stamp (client NIC out).
    pub t_nic_out: SimTime,
    /// tcpdump RX stamp (client NIC in).
    pub t_nic_in: SimTime,
    /// Time spent inside the server (NIC in → NIC out).
    pub server_time: SimDuration,
    /// Time on the wire + in link queues, both directions.
    pub network_time: SimDuration,
}

impl ResponseRecord {
    /// Builds the record from a fully stamped request.
    pub fn from_request(req: &Request) -> Self {
        let server_time = req
            .t_server_nic_out
            .duration_since(req.t_server_nic_in);
        let network_time = req
            .t_server_nic_in
            .duration_since(req.t_client_nic_out)
            + req.t_client_nic_in.duration_since(req.t_server_nic_out);
        ResponseRecord {
            id: req.id,
            client: req.client,
            conn: req.conn,
            attempts: req.attempt + 1,
            t_generated: req.t_generated,
            t_delivered: req.t_delivered,
            t_nic_out: req.t_client_nic_out,
            t_nic_in: req.t_client_nic_in,
            server_time,
            network_time,
        }
    }

    /// The latency the load tester observes (user space → user space),
    /// in microseconds.
    pub fn user_latency_us(&self) -> f64 {
        self.t_delivered.duration_since(self.t_generated).as_micros_f64()
    }

    /// The tcpdump ground-truth latency (NIC → NIC), in microseconds.
    pub fn nic_latency_us(&self) -> f64 {
        self.t_nic_in.duration_since(self.t_nic_out).as_micros_f64()
    }

    /// Server-side time in microseconds (Fig. 3 decomposition).
    pub fn server_time_us(&self) -> f64 {
        self.server_time.as_micros_f64()
    }

    /// Network time in microseconds (Fig. 3 decomposition).
    pub fn network_time_us(&self) -> f64 {
        self.network_time.as_micros_f64()
    }

    /// Client-side time in microseconds: everything the user-space view
    /// adds over the NIC view (Fig. 3 decomposition).
    pub fn client_time_us(&self) -> f64 {
        (self.user_latency_us() - self.server_time_us() - self.network_time_us()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treadmill_workloads::{OpClass, RequestProfile};

    fn profile() -> RequestProfile {
        RequestProfile {
            class: OpClass::Read,
            request_bytes: 100,
            response_bytes: 200,
            cpu_ns: 10_000.0,
            mem_ns: 4_000.0,
        }
    }

    fn stamped_request() -> Request {
        let mut req = Request::new(
            RequestId(1),
            0,
            3,
            profile(),
            SimTime::from_micros(100),
        );
        req.t_client_nic_out = SimTime::from_micros(110);
        req.t_server_nic_in = SimTime::from_micros(116);
        req.t_irq_done = SimTime::from_micros(118);
        req.t_service_start = SimTime::from_micros(120);
        req.t_server_nic_out = SimTime::from_micros(134);
        req.t_client_nic_in = SimTime::from_micros(140);
        req.t_delivered = SimTime::from_micros(155);
        req
    }

    #[test]
    fn record_latency_views() {
        let rec = ResponseRecord::from_request(&stamped_request());
        assert_eq!(rec.user_latency_us(), 55.0);
        assert_eq!(rec.nic_latency_us(), 30.0);
        assert!(rec.user_latency_us() > rec.nic_latency_us());
    }

    #[test]
    fn decomposition_sums_to_user_latency() {
        let rec = ResponseRecord::from_request(&stamped_request());
        let total = rec.server_time_us() + rec.network_time_us() + rec.client_time_us();
        assert!((total - rec.user_latency_us()).abs() < 1e-9);
        assert_eq!(rec.server_time_us(), 18.0);
        assert_eq!(rec.network_time_us(), 12.0);
        assert_eq!(rec.client_time_us(), 25.0);
    }

    #[test]
    fn fresh_request_has_zero_latency() {
        let req = Request::new(RequestId(0), 0, 0, profile(), SimTime::from_micros(5));
        let rec = ResponseRecord::from_request(&req);
        assert_eq!(rec.user_latency_us(), 0.0);
        assert_eq!(rec.nic_latency_us(), 0.0);
    }
}
