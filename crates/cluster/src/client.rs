//! The simulated client (load-tester) machine.
//!
//! A client machine is where load-tester *implementation quality* shows
//! up in measurements (§II-C): every send and every response callback
//! consumes client CPU, modelled as an analytic FIFO queue. An efficient
//! tester (Treadmill's lock-free design) keeps per-op cost low; a heavy
//! single-client tester saturates its own CPU long before the server
//! does, and the resulting client-side queueing contaminates the
//! latency it reports.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;

use treadmill_sim_core::{RateQueue, SimDuration, SimTime};
use treadmill_workloads::RequestProfile;

use crate::config::ClientSpec;
use crate::fault::FailureRecord;
use crate::request::{RequestId, ResponseRecord};
use crate::source::TrafficSource;

/// Robust-mode bookkeeping for one logical request awaiting a response.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InFlight {
    /// Connection the request uses (retries stay on it).
    pub conn: u32,
    /// The sampled resource profile (retries resend the same work).
    pub profile: RequestProfile,
    /// When the first attempt was generated — the latency origin for
    /// whichever attempt eventually completes.
    pub t_first: SimTime,
    /// Current attempt number (0 = first try).
    pub attempt: u32,
    /// Whether a hedged duplicate has already been issued.
    pub hedged: bool,
}

/// One client machine hosting a load-tester instance.
#[derive(Debug)]
pub struct ClientMachine {
    /// Machine parameters.
    pub spec: ClientSpec,
    /// The load tester's send-timing logic.
    pub source: Box<dyn TrafficSource>,
    /// Deterministic per-client RNG stream.
    pub rng: SmallRng,
    cpu: RateQueue,
    /// Completed-request records, in delivery order.
    pub records: Vec<ResponseRecord>,
    /// Abandoned-request records (timeouts / resets), in failure order.
    pub failures: Vec<FailureRecord>,
    sent: u64,
    /// Keyed by request id. A `BTreeMap` (not `HashMap`) so that any
    /// future iteration over pending requests is seed-stable; robust
    /// mode touches it per request, where the log-depth walk on a
    /// handful of in-flight entries is noise next to the queue model.
    pub(crate) in_flight: BTreeMap<RequestId, InFlight>,
    pub(crate) retries_sent: u64,
    pub(crate) hedges_sent: u64,
    pub(crate) timeouts: u64,
    pub(crate) resets: u64,
}

impl ClientMachine {
    /// Creates an idle client machine.
    pub fn new(spec: ClientSpec, source: Box<dyn TrafficSource>, rng: SmallRng) -> Self {
        ClientMachine {
            spec,
            source,
            rng,
            cpu: RateQueue::new("client-cpu"),
            records: Vec::new(),
            failures: Vec::new(),
            sent: 0,
            in_flight: BTreeMap::new(),
            retries_sent: 0,
            hedges_sent: 0,
            timeouts: 0,
            resets: 0,
        }
    }

    /// Runs the user-space send path at `now`: queues on the client CPU
    /// and returns when the packet reaches the NIC (after the fixed
    /// kernel TX cost).
    pub fn tx_ready_at(&mut self, now: SimTime) -> SimTime {
        self.sent += 1;
        let cpu_done = self
            .cpu
            .offer(now, SimDuration::from_nanos_f64(self.spec.send_cpu_ns))
            .departure;
        cpu_done + self.spec.kernel_tx
    }

    /// Runs the user-space receive path for a packet that finished
    /// kernel RX processing at `now`: queues the response callback on
    /// the client CPU and returns when the load tester observes it.
    pub fn rx_delivered_at(&mut self, now: SimTime) -> SimTime {
        self.cpu
            .offer(now, SimDuration::from_nanos_f64(self.spec.recv_cpu_ns))
            .departure
    }

    /// Requests sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Client CPU utilisation over `[0, now]`.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    /// Mean client-CPU queueing delay per operation, µs (diagnostics —
    /// this is the §II-C bias in the flesh).
    pub fn mean_cpu_queueing_us(&self) -> f64 {
        self.cpu.mean_queueing_micros()
    }

    /// The client-CPU queue state, captured for checkpointing.
    pub(crate) fn cpu_state(&self) -> treadmill_sim_core::RateQueueState {
        self.cpu.state()
    }

    /// Restores CPU-queue state and the sent counter from a checkpoint.
    pub(crate) fn restore_cpu_state(
        &mut self,
        cpu: treadmill_sim_core::RateQueueState,
        sent: u64,
    ) {
        self.cpu.restore_state(cpu);
        self.sent = sent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PoissonSource;
    use rand::SeedableRng;

    fn machine(send_ns: f64, recv_ns: f64) -> ClientMachine {
        ClientMachine::new(
            ClientSpec {
                send_cpu_ns: send_ns,
                recv_cpu_ns: recv_ns,
                ..Default::default()
            },
            Box::new(PoissonSource::new(1000.0, 1)),
            SmallRng::seed_from_u64(1),
        )
    }

    #[test]
    fn tx_includes_kernel_cost() {
        let mut m = machine(800.0, 800.0);
        let ready = m.tx_ready_at(SimTime::from_micros(10));
        // 0.8us cpu + 12us kernel tx.
        assert_eq!(ready, SimTime::from_nanos(10_000 + 800 + 12_000));
        assert_eq!(m.sent(), 1);
    }

    #[test]
    fn heavy_client_queues_on_its_own_cpu() {
        let mut m = machine(4_000.0, 4_000.0);
        // 10 sends in the same microsecond: each queues behind the last.
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let ready = m.tx_ready_at(SimTime::from_micros(1));
            assert!(ready > last);
            last = ready;
        }
        // 10 × 4us = 40us of CPU; the last send waited ~36us.
        assert!(last >= SimTime::from_nanos(1_000 + 40_000 + 12_000));
        assert!(m.mean_cpu_queueing_us() > 10.0);
    }

    #[test]
    fn rx_and_tx_share_the_cpu() {
        let mut m = machine(4_000.0, 4_000.0);
        let tx = m.tx_ready_at(SimTime::from_micros(1));
        // An RX callback entering right after the send queues behind it.
        let rx = m.rx_delivered_at(SimTime::from_micros(2));
        assert!(rx > SimTime::from_micros(2) + SimDuration::from_nanos(4_000));
        let _ = tx;
    }

    #[test]
    fn light_client_has_negligible_queueing() {
        let mut m = machine(800.0, 800.0);
        for i in 0..100 {
            let _ = m.tx_ready_at(SimTime::from_micros(i * 100));
        }
        assert!(m.mean_cpu_queueing_us() < 0.01);
        assert!(m.cpu_utilization(SimTime::from_millis(10)) < 0.05);
    }
}
