//! The traffic-source abstraction: how a load tester decides *when* to
//! send requests.
//!
//! The paper's first pitfall (§II-A) is exactly this interface: a
//! **closed-loop** source only sends after the previous response on the
//! same connection returns, capping the number of outstanding requests;
//! an **open-loop** source fires at scheduled times regardless of
//! responses. The concrete open/closed controllers live in
//! `treadmill-core` (they are part of the load tester's contribution);
//! this module defines the trait the simulated client machine drives,
//! plus a minimal Poisson source for the simulator's own tests.

use rand::RngCore;
use std::fmt;
use treadmill_sim_core::{SimDuration, SimTime};
use treadmill_stats::distribution::sample_exponential;

/// An instruction to send one request on a connection at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOrder {
    /// When to initiate the send (user space).
    pub at: SimTime,
    /// Which connection to send on.
    pub conn: u32,
}

/// Decides when requests are sent. Driven by the simulated client
/// machine: [`TrafficSource::start`] seeds the initial sends, then
/// [`TrafficSource::on_sent`] and [`TrafficSource::on_response`] are
/// called as the simulation progresses and may yield follow-up orders.
pub trait TrafficSource: fmt::Debug + Send {
    /// Initial send orders at simulation start.
    fn start(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Vec<SendOrder>;

    /// Called when a send fires. Open-loop sources schedule their next
    /// send here; closed-loop sources return `None`.
    fn on_sent(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Option<SendOrder>;

    /// Called when the response on `conn` is delivered. Closed-loop
    /// sources issue the connection's next request here.
    fn on_response(&mut self, conn: u32, now: SimTime, rng: &mut dyn RngCore)
        -> Option<SendOrder>;

    /// The source's mutable state packed into one word, for
    /// checkpointing. Sources whose send decisions depend on mutable
    /// fields beyond the RNG (a round-robin cursor, a schedule head)
    /// must override this together with
    /// [`TrafficSource::restore_checkpoint_word`]; stateless sources
    /// keep the default.
    fn checkpoint_word(&self) -> u64 {
        0
    }

    /// Restores state captured by [`TrafficSource::checkpoint_word`].
    fn restore_checkpoint_word(&mut self, _word: u64) {}
}

/// A minimal open-loop Poisson source: exponential inter-arrivals at a
/// fixed rate, connections chosen round-robin.
///
/// `treadmill-core` provides the fully featured controllers; this one
/// exists so the simulator can be tested stand-alone.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use treadmill_cluster::{PoissonSource, TrafficSource};
/// use treadmill_sim_core::SimTime;
///
/// let mut source = PoissonSource::new(100_000.0, 8);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let first = source.start(SimTime::ZERO, &mut rng);
/// assert_eq!(first.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonSource {
    mean_gap_ns: f64,
    connections: u32,
    next_conn: u32,
}

impl PoissonSource {
    /// Creates a source emitting `rate_rps` requests per second across
    /// `connections` connections.
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` is not positive or `connections` is zero.
    pub fn new(rate_rps: f64, connections: u32) -> Self {
        assert!(rate_rps > 0.0, "rate must be positive");
        assert!(connections > 0, "need at least one connection");
        PoissonSource {
            mean_gap_ns: 1e9 / rate_rps,
            connections,
            next_conn: 0,
        }
    }

    fn next_order(&mut self, now: SimTime, rng: &mut dyn RngCore) -> SendOrder {
        // At least 1 ns between sends: the controller timestamps at
        // nanosecond resolution and never issues two sends at once.
        let gap = sample_exponential(rng, self.mean_gap_ns).max(1.0);
        let conn = self.next_conn;
        self.next_conn = (self.next_conn + 1) % self.connections;
        SendOrder {
            at: now + SimDuration::from_nanos_f64(gap),
            conn,
        }
    }
}

impl TrafficSource for PoissonSource {
    fn start(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Vec<SendOrder> {
        vec![self.next_order(now, rng)]
    }

    fn on_sent(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Option<SendOrder> {
        Some(self.next_order(now, rng))
    }

    fn on_response(
        &mut self,
        _conn: u32,
        _now: SimTime,
        _rng: &mut dyn RngCore,
    ) -> Option<SendOrder> {
        None
    }

    fn checkpoint_word(&self) -> u64 {
        u64::from(self.next_conn)
    }

    fn restore_checkpoint_word(&mut self, word: u64) {
        self.next_conn = u32::try_from(word % u64::from(self.connections))
            .unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_rate_converges() {
        let mut source = PoissonSource::new(1_000_000.0, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut now = SimTime::ZERO;
        let n = 50_000;
        let orders = source.start(now, &mut rng);
        now = orders[0].at;
        for _ in 0..n {
            let next = source.on_sent(now, &mut rng).unwrap();
            assert!(next.at > now);
            now = next.at;
        }
        let elapsed_s = now.as_secs_f64();
        let rate = n as f64 / elapsed_s;
        assert!((rate / 1_000_000.0 - 1.0).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn connections_round_robin() {
        let mut source = PoissonSource::new(1000.0, 3);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut conns = Vec::new();
        let mut now = SimTime::ZERO;
        conns.push(source.start(now, &mut rng)[0].conn);
        for _ in 0..5 {
            let o = source.on_sent(now, &mut rng).unwrap();
            conns.push(o.conn);
            now = o.at;
        }
        assert_eq!(conns, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn open_loop_ignores_responses() {
        let mut source = PoissonSource::new(1000.0, 1);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(source
            .on_response(0, SimTime::from_micros(1), &mut rng)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        PoissonSource::new(0.0, 1);
    }
}
